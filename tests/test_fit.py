"""Tests for miss-curve model fitting."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.fit import FAR_BLOCKS, model_from_miss_curve, model_from_trace
from repro.workloads.model import BenchmarkModel, RingComponent


class TestFromCurve:
    def test_single_point_all_hits(self):
        model = model_from_miss_curve({1000: 0.0})
        # one hot ring covering the capacity; negligible floor
        assert model.components[0].blocks == 1000
        assert model.expected_miss_rate(1000) < 0.01

    def test_floor_becomes_far_ring(self):
        model = model_from_miss_curve({1000: 0.2})
        far = model.components[-1]
        assert far.blocks == FAR_BLOCKS
        assert far.weight == pytest.approx(0.2, rel=0.01)

    def test_steps_become_rings(self):
        curve = {1000: 0.5, 4000: 0.3, 16000: 0.05}
        model = model_from_miss_curve(curve)
        # rings nest: sizes are the capacity increments
        sizes = [c.blocks for c in model.components]
        assert sizes[:3] == [1000, 3000, 12000]
        # reproduces the curve analytically
        for capacity, rate in curve.items():
            assert model.expected_miss_rate(capacity) == pytest.approx(rate, abs=0.03)

    def test_rejects_increasing_curve(self):
        with pytest.raises(ConfigError):
            model_from_miss_curve({1000: 0.1, 2000: 0.5})

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            model_from_miss_curve({})

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigError):
            model_from_miss_curve({1000: 1.5})

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigError):
            model_from_miss_curve({0: 0.5})


class TestRoundTrip:
    def test_fit_of_generated_trace_matches_measured_curve(self):
        """model -> trace -> fitted model reproduces the *measured* curve.

        (The measured curve includes the trace's cold misses, which the
        fit folds into the capacity-insensitive floor — so the comparison
        target is the measurement, not the original model's analytic
        steady-state curve.)"""
        from repro.trace.analyze import profile_trace

        original = BenchmarkModel(
            name="orig",
            components=(
                RingComponent(weight=0.70, blocks=800, run_length=4),
                RingComponent(weight=0.25, blocks=10_000, run_length=2),
                RingComponent(weight=0.05, blocks=FAR_BLOCKS),
            ),
        )
        trace = original.generate(60_000, seed=9)
        capacities = (1024, 4096, 16384)
        measured = profile_trace(trace, curve_capacities=capacities).miss_curve
        fitted = model_from_trace(trace, capacities=capacities, name="refit")
        assert fitted.name == "refit"
        for capacity in capacities:
            assert fitted.expected_miss_rate(capacity) == pytest.approx(
                measured[capacity], abs=0.05
            )

    def test_fitted_model_generates_similar_trace(self):
        """The fitted model's own trace has a similar measured miss curve."""
        from repro.analysis.reuse import miss_curve

        original = BenchmarkModel(
            name="orig",
            components=(
                RingComponent(weight=0.8, blocks=500, run_length=8),
                RingComponent(weight=0.2, blocks=8_000, run_length=8),
            ),
        )
        trace = original.generate(40_000, seed=4)
        fitted = model_from_trace(trace, capacities=(1024, 4096, 16384))
        refit_trace = fitted.generate(40_000, seed=5)
        original_curve = miss_curve(trace.blocks().tolist(), (4096,))
        refit_curve = miss_curve(refit_trace.blocks().tolist(), (4096,))
        assert refit_curve[4096] == pytest.approx(original_curve[4096], abs=0.08)

    def test_run_length_carried_over(self):
        original = BenchmarkModel(
            name="stream",
            components=(RingComponent(weight=1.0, blocks=6_000, run_length=16),),
        )
        trace = original.generate(30_000, seed=2)
        fitted = model_from_trace(trace)
        assert all(c.run_length >= 8 for c in fitted.components[:1])
