"""Unit tests for the Dinero din-format IO."""

import pytest

from repro.common.errors import ConfigError
from repro.trace.container import Trace
from repro.trace.dinero import read_dinero, write_dinero


class TestRoundTrip:
    def test_roundtrip_preserves_addresses_and_writes(self, tmp_path):
        trace = Trace([0x1000, 0x2040, 0x3080], writes=[False, True, False])
        path = tmp_path / "t.din"
        write_dinero(trace, path)
        loaded = read_dinero(path, asid=7)
        assert loaded.addresses.tolist() == trace.addresses.tolist()
        assert loaded.writes.tolist() == trace.writes.tolist()
        assert set(loaded.asids.tolist()) == {7}

    def test_file_format(self, tmp_path):
        trace = Trace([0x10], writes=[True])
        path = tmp_path / "t.din"
        write_dinero(trace, path)
        assert path.read_text() == "1 10\n"


class TestReader:
    def test_reads_ifetch_as_read(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("2 400\n0 800\n")
        trace = read_dinero(path)
        assert trace.addresses.tolist() == [0x400, 0x800]
        assert trace.writes.tolist() == [False, False]

    def test_skips_blank_and_comment_lines(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("# header\n\n0 40\n")
        assert len(read_dinero(path)) == 1

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0\n")
        with pytest.raises(ConfigError):
            read_dinero(path)

    def test_rejects_bad_label(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("7 40\n")
        with pytest.raises(ConfigError):
            read_dinero(path)

    def test_rejects_non_hex_address(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 zz\n")
        with pytest.raises(ConfigError):
            read_dinero(path)
