"""CLI surface of the multi-tenant subsystem.

``repro workloads`` (family listing), the three modes of ``repro
tenants`` (serial sweep, campaign, recorded showcase cell) and the
``repro inspect`` rendering of a recorded tenancy stream. Runs at tiny
scale like the campaign tests — the 10k-reference floor keeps cells
real but fast.
"""

from __future__ import annotations

import pytest

from repro.cli import main

TINY_SCALE = "0.02"

#: One hostile grid point, three policies: a 3-cell sweep.
SWEEP_ARGS = ["--tenants", "10", "--churn", "0.3", "--skew", "1.0"]


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", TINY_SCALE)


class TestWorkloadsCommand:
    def test_lists_all_families_and_members(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for family in ("spec (", "mixed (", "tenants ("):
            assert family in out
        # Tenant presets appear as indented members.
        assert "  tenants-churn" in out
        assert "  tenants-diurnal" in out


class TestTenantsSerial:
    def test_sweep_prints_table_and_verdict(self, capsys):
        assert main(["tenants", *SWEEP_ARGS]) == 0
        out = capsys.readouterr().out
        assert "Tenancy sweep" in out
        for policy in ("static", "need", "alg1"):
            assert policy in out
        assert "verdict: need-driven" in out

    def test_policy_filter(self, capsys):
        assert main(["tenants", *SWEEP_ARGS, "--policies", "static"]) == 0
        out = capsys.readouterr().out
        assert "static" in out
        assert "alg1" not in out

    def test_bad_policy_errors(self, capsys):
        assert main(["tenants", "--policies", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_axis_errors(self, capsys):
        assert main(["tenants", "--tenants", ","]) == 2
        assert "error" in capsys.readouterr().err


class TestTenantsCampaign:
    def test_campaign_matches_serial(self, tmp_path, capsys):
        assert main(["tenants", *SWEEP_ARGS]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(
                [
                    "tenants", *SWEEP_ARGS,
                    "--jobs", "2",
                    "--out", str(tmp_path / "store"),
                ]
            )
            == 0
        )
        campaign = capsys.readouterr()
        assert campaign.out == serial_out
        assert str(tmp_path / "store") in campaign.err

    def test_resume_uses_cached_jobs(self, tmp_path, capsys):
        args = [
            "tenants", *SWEEP_ARGS,
            "--jobs", "1",
            "--out", str(tmp_path / "store"),
            "--resume",
        ]
        assert main(args) == 0
        first = capsys.readouterr()
        assert main(args) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "cached" in second.err


class TestTenantsRecord:
    def test_record_then_inspect(self, tmp_path, capsys):
        events = tmp_path / "tenancy.jsonl"
        assert (
            main(["tenants", *SWEEP_ARGS, "--record", str(events)]) == 0
        )
        recorded = capsys.readouterr()
        assert "recorded tenancy cell: 10 tenants" in recorded.out
        assert "aggregate hit rate" in recorded.out
        assert str(events) in recorded.err
        assert events.exists()

        assert main(["inspect", str(events)]) == 0
        inspected = capsys.readouterr().out
        assert "Tenancy epochs" in inspected
        assert "Tenancy run" in inspected
        assert "Worst-served tenants" in inspected
        assert "hit-rate curves" in inspected

    def test_record_respects_policy_choice(self, tmp_path, capsys):
        events = tmp_path / "tenancy.jsonl"
        assert (
            main(
                [
                    "tenants", *SWEEP_ARGS,
                    "--policies", "alg1",
                    "--record", str(events),
                ]
            )
            == 0
        )
        assert "policy alg1" in capsys.readouterr().out
