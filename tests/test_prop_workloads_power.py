"""Property-based tests for workload generation and the power model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.model import CacheOrganization, CactiModel
from repro.workloads.model import APP_SPACE_BYTES, BenchmarkModel, RingComponent

components = st.lists(
    st.builds(
        RingComponent,
        weight=st.floats(min_value=0.05, max_value=1.0),
        blocks=st.integers(min_value=1, max_value=5000),
        run_length=st.integers(min_value=1, max_value=32),
        drift=st.booleans(),
    ),
    min_size=1,
    max_size=4,
)

models = st.builds(
    BenchmarkModel,
    name=st.just("prop"),
    components=components.map(tuple),
    phases=st.integers(min_value=1, max_value=3),
    write_fraction=st.floats(min_value=0.0, max_value=1.0),
)


class TestWorkloadProperties:
    @given(model=models, seed=st.integers(min_value=0, max_value=2**16),
           asid=st.integers(min_value=0, max_value=15))
    @settings(max_examples=40, deadline=None)
    def test_trace_stays_in_app_space_and_aligned(self, model, seed, asid):
        trace = model.generate(500, seed=seed, asid=asid)
        assert len(trace) == 500
        assert (trace.addresses >= asid * APP_SPACE_BYTES).all()
        assert (trace.addresses < (asid + 1) * APP_SPACE_BYTES).all()
        assert (trace.addresses % 64 == 0).all()
        assert set(trace.asids.tolist()) == {asid}

    @given(model=models, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_generation_deterministic(self, model, seed):
        assert model.generate(300, seed=seed) == model.generate(300, seed=seed)

    @given(model=models)
    @settings(max_examples=40, deadline=None)
    def test_footprint_bound(self, model):
        trace = model.generate(2000, seed=1)
        assert trace.footprint_blocks() <= model.footprint_blocks()

    @given(model=models, c1=st.integers(min_value=0, max_value=4000),
           c2=st.integers(min_value=0, max_value=4000))
    @settings(max_examples=40, deadline=None)
    def test_expected_miss_rate_monotone(self, model, c1, c2):
        lo, hi = sorted((c1, c2))
        assert model.expected_miss_rate(hi) <= model.expected_miss_rate(lo) + 1e-9
        assert 0.0 <= model.expected_miss_rate(lo) <= 1.0


org_sizes = st.sampled_from([8 << 10, 64 << 10, 1 << 20, 8 << 20])
org_assocs = st.sampled_from([1, 2, 4, 8])
org_ports = st.integers(min_value=1, max_value=4)


class TestPowerModelProperties:
    @given(size=org_sizes, assoc=org_assocs, ports=org_ports)
    @settings(max_examples=60, deadline=None)
    def test_outputs_positive(self, size, assoc, ports):
        if size < 64 * assoc:
            return
        model = CactiModel()
        evaluation = model.evaluate(CacheOrganization(size, assoc, 64, ports))
        assert evaluation.energy_nj > 0
        assert evaluation.access_time_ns > 0
        assert evaluation.frequency_mhz > 0

    @given(assoc=org_assocs, ports=org_ports)
    @settings(max_examples=40, deadline=None)
    def test_energy_monotone_in_size(self, assoc, ports):
        model = CactiModel()
        energies = [
            model.energy_nj(CacheOrganization(size, assoc, 64, ports))
            for size in (64 << 10, 1 << 20, 8 << 20)
        ]
        assert energies[0] <= energies[1] <= energies[2]

    @given(size=st.sampled_from([1 << 20, 8 << 20]), assoc=org_assocs)
    @settings(max_examples=30, deadline=None)
    def test_ports_increase_energy(self, size, assoc):
        model = CactiModel()
        one = model.energy_nj(CacheOrganization(size, assoc, 64, 1))
        two = model.energy_nj(CacheOrganization(size, assoc, 64, 2))
        assert two > one
