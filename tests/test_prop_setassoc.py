"""Property-based tests for the set-associative cache (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.setassoc import SetAssociativeCache

block_streams = st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=400)


class TestInvariants:
    @given(stream=block_streams)
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, stream):
        cache = SetAssociativeCache(2048, 2, 64)
        for block in stream:
            cache.access_block(block)
        assert cache.occupancy() <= 32

    @given(stream=block_streams)
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, stream):
        cache = SetAssociativeCache(2048, 2, 64)
        hits = sum(cache.access_block(b).hit for b in stream)
        assert cache.stats.total.accesses == len(stream)
        assert cache.stats.total.hits == hits

    @given(stream=block_streams)
    @settings(max_examples=50, deadline=None)
    def test_resident_block_always_hits_next(self, stream):
        cache = SetAssociativeCache(2048, 2, 64)
        for block in stream:
            cache.access_block(block)
            assert cache.contains_block(block)
            assert cache.access_block(block).hit

    @given(stream=block_streams)
    @settings(max_examples=50, deadline=None)
    def test_set_index_discipline(self, stream):
        """Every resident block lives in exactly the set its index selects."""
        cache = SetAssociativeCache(2048, 2, 64)
        for block in stream:
            cache.access_block(block)
        for set_index, cache_set in enumerate(cache._sets):
            for block in cache_set:
                assert block & cache._set_mask == set_index

    @given(stream=block_streams, policy=st.sampled_from(["lru", "fifo", "random"]))
    @settings(max_examples=50, deadline=None)
    def test_all_policies_preserve_accounting(self, stream, policy):
        cache = SetAssociativeCache(1024, 4, 64, policy)
        for block in stream:
            cache.access_block(block)
        stats = cache.stats.total
        assert stats.accesses == len(stream)
        assert stats.misses == stats.evictions + cache.occupancy()

    @given(stream=block_streams)
    @settings(max_examples=30, deadline=None)
    def test_lru_inclusion_property(self, stream):
        """A fully-associative LRU cache of size 2N contains everything a
        size-N one does (stack inclusion)."""
        small = SetAssociativeCache(1024, 16, 64)  # fully assoc, 16 lines
        large = SetAssociativeCache(2048, 32, 64)  # fully assoc, 32 lines
        for block in stream:
            small.access_block(block)
            large.access_block(block)
        assert set(small.resident_blocks()) <= set(large.resident_blocks())

    @given(
        stream=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.booleans(),
            ),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_writeback_only_for_dirty_lines(self, stream):
        """Writebacks never exceed the number of write accesses."""
        cache = SetAssociativeCache(1024, 1, 64)
        writes = 0
        writebacks = 0
        for block, write in stream:
            writes += write
            result = cache.access_block(block, write=write)
            writebacks += result.writeback
        assert writebacks <= writes
