"""Tests for the access-latency accounting."""

import pytest

from repro.common.errors import ConfigError
from repro.common.types import AccessResult
from repro.molecular.latency import LatencyModel, LatencyParameters
from tests.conftest import make_cache


class TestModel:
    def test_local_hit(self):
        model = LatencyModel(LatencyParameters(
            asid_compare_cycles=1, molecule_access_cycles=2,
            ulmo_dispatch_cycles=2, tile_hop_cycles=4, memory_cycles=200,
        ))
        assert model.cycles(AccessResult(hit=True)) == 3
        assert model.local_hit_cycles() == 3

    def test_remote_hit_serialises_tiles(self):
        model = LatencyModel()
        result = AccessResult(hit=True, molecules_probed_remote=4)
        result.extra["remote_tiles_searched"] = 2
        p = model.params
        expected = (
            p.asid_compare_cycles + p.molecule_access_cycles
            + p.ulmo_dispatch_cycles
            + 2 * (p.tile_hop_cycles + p.molecule_access_cycles)
        )
        assert model.cycles(result) == expected

    def test_miss_adds_memory(self):
        model = LatencyModel()
        local_hit = model.cycles(AccessResult(hit=True))
        miss = model.cycles(AccessResult(hit=False))
        assert miss == local_hit + model.params.memory_cycles

    def test_rejects_negative_parameters(self):
        with pytest.raises(ConfigError):
            LatencyParameters(memory_cycles=-1)


class TestCacheIntegration:
    def test_latency_accumulates(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, initial_molecules=2)
        cache.access_block(5, 0)   # miss
        cache.access_block(5, 0)   # local hit
        model = cache.latency_model
        expected = (
            model.cycles(AccessResult(hit=False))
            + model.cycles(AccessResult(hit=True))
        )
        assert cache.stats.latency_cycles == expected
        assert cache.stats.mean_latency_cycles() == pytest.approx(expected / 2)

    def test_remote_tiles_recorded_in_result(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0, initial_molecules=6)  # spans 2 tiles
        result = cache.access_block(12345, 0)  # global miss searches tile 1
        assert result.extra.get("remote_tiles_searched") == 1

    def test_local_hit_has_no_remote_tiles(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0, initial_molecules=2)
        cache.access_block(5, 0)
        result = cache.access_block(5, 0)
        assert "remote_tiles_searched" not in result.extra

    def test_remote_hit_latency_exceeds_local(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0, initial_molecules=6)
        region = cache.regions[0]
        remote = next(m for m in region.molecules() if m.tile_id == 1)
        region.install(7, remote, 0, write=False)
        baseline = cache.stats.latency_cycles
        result = cache.access_block(7, 0)
        assert result.hit
        spent = cache.stats.latency_cycles - baseline
        assert spent > cache.latency_model.local_hit_cycles()
