"""Tests for the full-platform simulation (coherent cores + shared L2)."""

import numpy as np
import pytest

from repro.caches.setassoc import SetAssociativeCache
from repro.common.errors import ConfigError
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.sim.platform import CMPPlatform, PlatformConfig
from repro.trace.container import Trace


def loop_trace(blocks: int, refs: int, base: int = 0) -> Trace:
    return Trace(((np.arange(refs) % blocks) + base) * 64)


def stream_trace(refs: int, base: int = 0) -> Trace:
    return Trace((np.arange(refs) + base) * 64)


def traditional_platform(cores=2, l2_kb=256, **config_kwargs):
    return CMPPlatform(
        cores,
        SetAssociativeCache(l2_kb * 1024, 4),
        PlatformConfig(l1_size_bytes=2048, l1_associativity=2, **config_kwargs),
    )


class TestValidation:
    def test_rejects_empty_traces(self):
        platform = traditional_platform()
        with pytest.raises(ConfigError):
            platform.run({})
        with pytest.raises(ConfigError):
            platform.run({0: Trace([])})

    def test_rejects_unknown_core(self):
        platform = traditional_platform(cores=2)
        with pytest.raises(ConfigError):
            platform.run({5: loop_trace(4, 10)})

    def test_rejects_bad_cycles(self):
        with pytest.raises(ConfigError):
            PlatformConfig(l1_hit_cycles=0)


class TestTiming:
    def test_l1_resident_loop_runs_at_l1_speed(self):
        platform = traditional_platform()
        result = platform.run({0: loop_trace(8, 4000)})
        report = result.cores[0]
        assert report.l1_hit_rate > 0.99
        # ~2 cycles per reference plus the 8 cold fills
        assert report.cycles / report.references < 3.0

    def test_streaming_core_far_slower(self):
        platform = traditional_platform()
        result = platform.run({0: stream_trace(3000)})
        report = result.cores[0]
        assert report.l1_hit_rate == 0.0
        # every access pays L1 + L2 + memory
        assert report.cycles / report.references > 100

    def test_throughput_ordering(self):
        platform = traditional_platform(cores=2)
        result = platform.run(
            {0: loop_trace(8, 30_000), 1: stream_trace(30_000, base=1 << 20)}
        )
        assert result.throughput(0) > 20 * result.throughput(1)

    def test_l2_hit_cheaper_than_memory(self):
        # Working set fits L2 but not L1: misses cost L1+L2 but not memory.
        platform = traditional_platform()
        result = platform.run({0: loop_trace(512, 40_000)})
        report = result.cores[0]
        mean = report.cycles / report.references
        assert mean < 20  # far below the 200-cycle memory penalty

    def test_warmup_resets_reports(self):
        platform = traditional_platform(warmup_refs=1000)
        result = platform.run({0: loop_trace(8, 5000)})
        assert result.cores[0].references == 4000


class TestCoherentSharing:
    def test_shared_data_stays_coherent(self):
        platform = traditional_platform(cores=2)
        shared_block = Trace([0] * 2000)
        platform.run({0: shared_block, 1: shared_block})
        platform.bus.check_invariants()
        # both cores mostly hit their L1 copies (shared state)
        assert platform.bus.stats.read_hits > 3000

    def test_write_sharing_generates_invalidations(self):
        platform = traditional_platform(cores=2)
        writes = Trace([0] * 1000, writes=True)
        platform.run({0: writes, 1: writes})
        assert platform.bus.stats.invalidations_received > 100
        platform.bus.check_invariants()


class TestMolecularL2:
    def _molecular_platform(self, cores=2):
        config = MolecularCacheConfig(
            molecule_bytes=8 * 1024,
            molecules_per_tile=32,
            tiles_per_cluster=4,
            clusters=1,
        )
        l2 = MolecularCache(config, resize_policy=ResizePolicy())
        for core in range(cores):
            l2.assign_application(core, goal=0.15, tile_id=core)
        return CMPPlatform(
            cores, l2, PlatformConfig(l1_size_bytes=2048, l1_associativity=2)
        )

    def test_runs_end_to_end(self):
        platform = self._molecular_platform()
        result = platform.run(
            {
                0: loop_trace(512, 20_000),
                1: loop_trace(512, 20_000, base=1 << 20),
            }
        )
        assert result.cores[0].references > 0
        assert result.end_cycle > 0
        platform.bus.check_invariants()
        platform.shared.resizer.check_consistency()

    def test_molecular_latency_charged(self):
        platform = self._molecular_platform()
        result = platform.run({0: loop_trace(512, 20_000)})
        report = result.cores[0]
        mean = report.cycles / report.references
        # L2-resident loop: more than the raw L1 cost, far below memory
        assert 2.0 < mean < 30

    def test_partitions_isolate_cores(self):
        platform = self._molecular_platform()
        same_blocks = loop_trace(256, 10_000)
        platform.run({0: same_blocks, 1: same_blocks})
        l2 = platform.shared
        # identical addresses, but each region holds its own copy
        assert l2.regions[0].presence.keys() & l2.regions[1].presence.keys()
