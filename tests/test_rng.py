"""Unit tests for the deterministic RNGs."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import LFSR16, XorShift64


class TestXorShift64:
    def test_deterministic(self):
        a = XorShift64(seed=123)
        b = XorShift64(seed=123)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_seed_changes_stream(self):
        a = XorShift64(seed=1)
        b = XorShift64(seed=2)
        assert [a.next_u64() for _ in range(4)] != [b.next_u64() for _ in range(4)]

    def test_zero_seed_usable(self):
        rng = XorShift64(seed=0)
        values = {rng.next_u64() for _ in range(100)}
        assert len(values) == 100

    def test_randrange_bounds(self):
        rng = XorShift64(seed=5)
        for _ in range(1000):
            assert 0 <= rng.randrange(7) < 7

    def test_randrange_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            XorShift64().randrange(0)

    def test_randrange_covers_range(self):
        rng = XorShift64(seed=5)
        seen = {rng.randrange(8) for _ in range(500)}
        assert seen == set(range(8))

    def test_choice(self):
        rng = XorShift64(seed=5)
        items = ["a", "b", "c"]
        assert rng.choice(items) in items

    def test_choice_empty_rejected(self):
        with pytest.raises(ConfigError):
            XorShift64().choice([])

    def test_random_unit_interval(self):
        rng = XorShift64(seed=11)
        values = [rng.random() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        # crude uniformity check
        assert 0.4 < sum(values) / len(values) < 0.6


class TestLFSR16:
    def test_deterministic(self):
        a = LFSR16(seed=0xACE1)
        b = LFSR16(seed=0xACE1)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_zero_seed_usable(self):
        rng = LFSR16(seed=0)
        assert rng.next_u64() != rng.next_u64()

    def test_nonzero_states(self):
        rng = LFSR16(seed=1)
        for _ in range(1000):
            assert rng.next_u64() != 0

    def test_low_entropy_period(self):
        # The 16-bit LFSR state repeats within 2**16 - 1 steps; the
        # concatenated 64-bit outputs therefore repeat within (2**16-1)
        # draws — the weakness the ablation studies.
        rng = LFSR16(seed=0xACE1)
        first = rng.next_u64()
        seen = 1
        while rng.next_u64() != first:
            seen += 1
            assert seen < (1 << 16)

    def test_randrange_small_bound(self):
        rng = LFSR16(seed=0x1234)
        values = {rng.randrange(4) for _ in range(200)}
        assert values <= {0, 1, 2, 3}
        assert len(values) > 1
