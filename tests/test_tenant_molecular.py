"""Tenant-to-region binding onto the architectural molecular cache.

:class:`~repro.molecular.tenancy.TenantRegionBinding` lets a churning
tenant workload exercise the real region machinery (Algorithm 1 resize,
Randy placement) by lazily mapping each tenant id onto an exclusive
region at first touch — unlike the CMP runner, which assigns every
application up front. Pins: lazy creation, stat extraction from region
counters, determinism, and cooperation with a fault plan.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.molecular.tenancy import TenantRegionBinding
from repro.workloads.tenants import TenantWorkloadSpec


def make_binding(**kwargs) -> TenantRegionBinding:
    config = MolecularCacheConfig(
        molecule_bytes=1024,
        line_bytes=64,
        molecules_per_tile=8,
        tiles_per_cluster=2,
        clusters=1,
        strict=False,
    )
    cache = MolecularCache(
        config, resize_policy=ResizePolicy(period=2_000, trigger="constant")
    )
    return TenantRegionBinding(cache, **kwargs)


def tenant_trace(tenants: int = 6, refs: int = 3_000):
    spec = TenantWorkloadSpec(
        name="bind",
        tenants=tenants,
        footprint_blocks=32,
        churn=0.3,
        idle_fraction=0.25,
        epochs=4,
    )
    return spec.generate(refs, seed=11)


class TestLazyRegionCreation:
    def test_regions_appear_on_first_touch(self):
        binding = make_binding()
        assert binding.cache.regions == {}
        binding.access(block=1, tenant=3)
        assert set(binding.cache.regions) == {3}
        binding.access(block=2, tenant=0)
        assert set(binding.cache.regions) == {0, 3}
        # A repeat touch does not recreate or disturb the region.
        region = binding.cache.regions[3]
        binding.access(block=1, tenant=3)
        assert binding.cache.regions[3] is region

    def test_initial_allocation_is_small(self):
        binding = make_binding(initial_molecules=1)
        binding.access(block=1, tenant=0)
        assert binding.cache.regions[0].molecule_count == 1

    def test_rejects_bad_initial_molecules(self):
        with pytest.raises(ConfigError):
            make_binding(initial_molecules=0)


class TestRunAndStats:
    def test_run_covers_all_active_tenants(self):
        binding = make_binding()
        trace = tenant_trace()
        stats = binding.run(trace)
        assert set(stats) == set(trace.asids.tolist())
        assert sum(s["accesses"] for s in stats.values()) == len(trace)
        for s in stats.values():
            assert 0.0 <= s["hit_rate"] <= 1.0
            assert s["misses"] <= s["accesses"]
            assert s["molecules"] >= 1

    def test_stats_sorted_by_tenant_id(self):
        binding = make_binding()
        stats = binding.run(tenant_trace())
        assert list(stats) == sorted(stats)

    def test_run_is_deterministic(self):
        trace = tenant_trace()
        assert make_binding().run(trace) == make_binding().run(trace)

    def test_resize_engine_reacts_to_tenant_pressure(self):
        """With a short resize period, at least one busy tenant's region
        moves off its initial single molecule."""
        binding = make_binding(goal=0.2)
        stats = binding.run(tenant_trace(tenants=3, refs=6_000))
        assert max(s["molecules"] for s in stats.values()) > 1
