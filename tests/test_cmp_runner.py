"""Tests for the throttled CMP execution model."""

import numpy as np
import pytest

from repro.caches.setassoc import SetAssociativeCache
from repro.common.errors import ConfigError
from repro.sim.cmp import CMPRunConfig, CMPRunner
from repro.trace.container import Trace


def loop_trace(asid: int, blocks: int, refs: int) -> Trace:
    addresses = (np.arange(refs) % blocks) * 64 + (asid << 30)
    return Trace(addresses, asids=asid)


def miss_trace(asid: int, refs: int) -> Trace:
    addresses = np.arange(refs) * 64 + (asid << 36)
    return Trace(addresses, asids=asid)


class TestConfig:
    def test_rejects_negative_penalty(self):
        with pytest.raises(ConfigError):
            CMPRunConfig(miss_penalty=-1)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ConfigError):
            CMPRunConfig(warmup_refs=-1)


class TestBasicRuns:
    def test_single_app_miss_rate(self):
        cache = SetAssociativeCache(64 * 1024, 4)
        runner = CMPRunner(cache, CMPRunConfig(warmup_refs=0))
        result = runner.run({0: loop_trace(0, 16, 1600)})
        assert result.miss_rate(0) == pytest.approx(16 / 1600)

    def test_empty_traces_rejected(self):
        runner = CMPRunner(SetAssociativeCache(1024, 1))
        with pytest.raises(ConfigError):
            runner.run({})
        with pytest.raises(ConfigError):
            runner.run({0: Trace([])})

    def test_stops_at_first_exhaustion(self):
        cache = SetAssociativeCache(64 * 1024, 4)
        runner = CMPRunner(cache, CMPRunConfig(warmup_refs=0))
        result = runner.run({0: loop_trace(0, 4, 100), 1: loop_trace(1, 4, 10_000)})
        assert result.total_refs < 10_100

    def test_deterministic(self):
        traces = {0: loop_trace(0, 64, 2000), 1: miss_trace(1, 2000)}
        results = []
        for _ in range(2):
            cache = SetAssociativeCache(16 * 1024, 4)
            runner = CMPRunner(cache, CMPRunConfig(warmup_refs=0))
            results.append(runner.run(traces).miss_rates())
        assert results[0] == results[1]


class TestThrottling:
    def test_missing_app_progresses_slower(self):
        """A core stalling on every access issues far fewer references by
        the time a hitting core finishes — the SESC behaviour Table 1
        depends on."""
        cache = SetAssociativeCache(256 * 1024, 4)
        runner = CMPRunner(cache, CMPRunConfig(miss_penalty=10, warmup_refs=0))
        result = runner.run(
            {0: loop_trace(0, 16, 20_000), 1: miss_trace(1, 20_000)}
        )
        hits_app = result.per_asid[0].accesses
        miss_app = result.per_asid[1].accesses
        assert miss_app < hits_app / 3

    def test_zero_penalty_is_fair_interleave(self):
        cache = SetAssociativeCache(256 * 1024, 4)
        runner = CMPRunner(cache, CMPRunConfig(miss_penalty=0, warmup_refs=0))
        result = runner.run(
            {0: loop_trace(0, 16, 5_000), 1: miss_trace(1, 5_000)}
        )
        assert result.per_asid[1].accesses >= result.per_asid[0].accesses - 1


class TestWarmup:
    def test_warmup_excluded_from_stats(self):
        cache = SetAssociativeCache(64 * 1024, 4)
        runner = CMPRunner(cache, CMPRunConfig(warmup_refs=100))
        # 16-block loop: all 16 cold misses land in the warm-up window
        result = runner.run({0: loop_trace(0, 16, 2000)})
        assert result.miss_rate(0) == 0.0
        assert result.measured_refs == 1900

    def test_no_warmup_counts_everything(self):
        cache = SetAssociativeCache(64 * 1024, 4)
        runner = CMPRunner(cache, CMPRunConfig(warmup_refs=0))
        result = runner.run({0: loop_trace(0, 16, 2000)})
        assert result.miss_rate(0) > 0.0

    def test_overall_miss_rate(self):
        cache = SetAssociativeCache(64 * 1024, 4)
        runner = CMPRunner(cache, CMPRunConfig(warmup_refs=0))
        result = runner.run({0: loop_trace(0, 16, 1000), 1: loop_trace(1, 16, 1000)})
        assert 0.0 < result.overall_miss_rate() < 0.1
