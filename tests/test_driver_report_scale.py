"""Tests for the single-stream driver, report formatting, and REPRO_SCALE."""

import pytest

from repro.caches.setassoc import SetAssociativeCache
from repro.common.errors import ConfigError
from repro.sim.driver import run_trace
from repro.sim.report import format_series, format_table
from repro.sim.scale import scale_factor, scaled
from repro.trace.container import Trace


class TestDriver:
    def test_runs_trace(self):
        cache = SetAssociativeCache(4096, 2)
        stats = run_trace(cache, Trace([0, 0, 64]))
        assert stats.total.accesses == 3
        assert stats.total.hits == 1

    def test_warmup_reset(self):
        cache = SetAssociativeCache(4096, 2)
        stats = run_trace(cache, Trace([0, 0, 0, 0]), warmup_refs=2)
        assert stats.total.accesses == 2
        assert stats.total.hits == 2

    def test_warmup_longer_than_trace_rejected(self):
        cache = SetAssociativeCache(4096, 2)
        with pytest.raises(ConfigError):
            run_trace(cache, Trace([0, 64]), warmup_refs=5)

    def test_warmup_equal_to_trace_rejected(self):
        cache = SetAssociativeCache(4096, 2)
        with pytest.raises(ConfigError, match="smaller than the trace"):
            run_trace(cache, Trace([0, 64]), warmup_refs=2)

    def test_empty_trace_with_zero_warmup_ok(self):
        cache = SetAssociativeCache(4096, 2)
        stats = run_trace(cache, Trace([]), warmup_refs=0)
        assert stats.total.accesses == 0

    def test_negative_warmup_rejected(self):
        cache = SetAssociativeCache(4096, 2)
        with pytest.raises(ConfigError):
            run_trace(cache, Trace([0]), warmup_refs=-1)


class TestReport:
    def test_format_table_alignment_and_floats(self):
        text = format_table(["name", "value"], [["a", 0.5], ["longer", 1.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "0.500" in text and "1.250" in text
        # all rows equal width
        assert len({len(line) for line in lines if line.strip()}) <= 2

    def test_format_table_title(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_format_series(self):
        text = format_series("size", ["1MB", "2MB"], {"lru": [0.1, 0.2]})
        assert "1MB" in text and "lru" in text and "0.200" in text


class TestScale:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0
        assert scaled(100_000) == 100_000

    def test_scaling_applied(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scaled(100_000) == 50_000

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert scaled(100_000) == 10_000

    def test_bad_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "fast")
        with pytest.raises(ConfigError):
            scale_factor()

    def test_nonpositive_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ConfigError):
            scale_factor()
