"""Tests for molecular energy accounting and QoS-power metrics."""

import pytest

from repro.common.errors import ConfigError
from repro.molecular.config import MolecularCacheConfig
from repro.molecular.stats import MolecularStats
from repro.power.energy import ASID_COMPARE_NJ, MolecularEnergyModel, power_watts
from repro.power.metrics import power_deviation_product
from repro.power.model import CactiModel


@pytest.fixture(scope="module")
def energy() -> MolecularEnergyModel:
    return MolecularEnergyModel(MolecularCacheConfig(), CactiModel())


def stats_with(accesses: int, probed: int, comparisons: int) -> MolecularStats:
    stats = MolecularStats()
    for _ in range(accesses):
        stats.record_access(0, hit=True)
    stats.molecules_probed_local = probed
    stats.asid_comparisons = comparisons
    return stats


class TestWorstCase:
    def test_all_tile_molecules_charged(self, energy):
        expected = 64 * energy.molecule_probe_nj + 64 * ASID_COMPARE_NJ
        assert energy.worst_case_energy_nj() == pytest.approx(expected)

    def test_worst_case_power_at_frequency(self, energy):
        e = energy.worst_case_energy_nj()
        assert energy.worst_case_power_w(100.0) == pytest.approx(
            e * 1e-9 * 100e6
        )

    def test_worst_case_near_paper(self, energy):
        """Paper: ~5.3-5.5 W at ~200 MHz for the 8 MB configuration."""
        assert 4.0 < energy.worst_case_power_w(200.0) < 7.0


class TestAverage:
    def test_average_integrates_probe_counters(self, energy):
        stats = stats_with(accesses=10, probed=100, comparisons=640)
        expected = (
            100 * energy.molecule_probe_nj + 640 * ASID_COMPARE_NJ
        ) / 10
        assert energy.average_energy_nj(stats) == pytest.approx(expected)

    def test_average_no_accesses_is_zero(self, energy):
        assert energy.average_energy_nj(MolecularStats()) == 0.0

    def test_average_below_worst_case_when_subset_probed(self, energy):
        stats = stats_with(accesses=10, probed=300, comparisons=640)  # 30/access < 64
        assert energy.average_energy_nj(stats) < energy.worst_case_energy_nj()


class TestPowerHelpers:
    def test_power_watts(self):
        # 1 nJ per access at 1 GHz = 1 W
        assert power_watts(1.0, 1000.0) == pytest.approx(1.0)

    def test_power_rejects_bad_frequency(self):
        with pytest.raises(ConfigError):
            power_watts(1.0, 0.0)

    def test_pdp(self):
        assert power_deviation_product(4.0, 0.25) == pytest.approx(1.0)

    def test_pdp_rejects_negatives(self):
        with pytest.raises(ConfigError):
            power_deviation_product(-1.0, 0.1)
        with pytest.raises(ConfigError):
            power_deviation_product(1.0, -0.1)
