"""Unit tests for the lease protocol (:mod:`repro.campaign.lease`).

Everything here runs single-process with an injectable clock — the
protocol's atomicity building blocks (``O_EXCL`` create, ``os.replace``)
behave identically whether the competing managers live in one process or
many, so fencing, reclamation, quarantine and abandonment are all
testable without spawning a single worker. Multi-process drains (real
SIGKILLs, hangs, skew) live in ``test_distributed.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import JobSpec, Lease, LeaseConfig, LeaseManager, ResultStore
from repro.common.errors import ConfigError
from repro.telemetry import EventBus, RingBufferSink
from repro.telemetry.events import JobQuarantined, LeaseAcquired, LeaseExpired


class FakeClock:
    """A hand-cranked wall clock shared (or not) between managers."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _bus() -> tuple[EventBus, RingBufferSink]:
    sink = RingBufferSink(capacity=512)
    return EventBus([sink], epoch_refs=0), sink


def _manager(tmp_path, owner="w1", clock=None, **config) -> LeaseManager:
    return LeaseManager(
        ResultStore(tmp_path / "store"),
        owner=owner,
        config=LeaseConfig(**config),
        clock=clock or FakeClock(),
    )


JOB = "a" * 64


# ------------------------------------------------------------------ config


class TestLeaseConfig:
    def test_heartbeat_defaults_to_third_of_ttl(self):
        assert LeaseConfig(ttl=30.0).heartbeat == pytest.approx(10.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ttl": 0.0},
            {"ttl": -1.0},
            {"heartbeat": -1.0},
            {"ttl": 10.0, "heartbeat": 11.0},
            {"job_timeout": 0.0},
            {"max_reclaims": 0},
            {"backoff": 0.0},
            {"backoff": 2.0, "backoff_cap": 1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            LeaseConfig(**kwargs)


# ------------------------------------------------------------- acquisition


class TestAcquisition:
    def test_first_acquire_wins_exclusively(self, tmp_path):
        clock = FakeClock()
        a = _manager(tmp_path, owner="a", clock=clock)
        b = _manager(tmp_path, owner="b", clock=clock)
        lease = a.try_acquire(JOB)
        assert lease is not None
        assert lease.token == 1 and lease.owner == "a"
        assert b.try_acquire(JOB) is None

    def test_live_lease_cannot_be_reclaimed(self, tmp_path):
        clock = FakeClock()
        a = _manager(tmp_path, owner="a", clock=clock, ttl=10.0)
        b = _manager(tmp_path, owner="b", clock=clock, ttl=10.0)
        a.try_acquire(JOB)
        clock.advance(5.0)  # within ttl
        assert b.try_reclaim(JOB) is None

    def test_expired_lease_is_reclaimed_with_bumped_token(self, tmp_path):
        clock = FakeClock()
        a = _manager(tmp_path, owner="a", clock=clock, ttl=10.0)
        b = _manager(tmp_path, owner="b", clock=clock, ttl=10.0)
        a.try_acquire(JOB)
        clock.advance(11.0)
        lease = b.try_reclaim(JOB)
        assert lease is not None and lease.owner == "b"
        assert lease.token == 2  # fencing token is monotonic
        record = b.read(JOB)
        assert record["history"][0]["owner"] == "a"
        assert record["history"][0]["reason"] == "expired"

    def test_renew_keeps_a_lease_alive(self, tmp_path):
        clock = FakeClock()
        a = _manager(tmp_path, owner="a", clock=clock, ttl=10.0)
        b = _manager(tmp_path, owner="b", clock=clock, ttl=10.0)
        lease = a.try_acquire(JOB)
        for _ in range(5):
            clock.advance(8.0)
            assert a.renew(lease)
        assert b.try_reclaim(JOB) is None  # heartbeat fresh after 40s

    def test_renew_never_overwrites_a_reclaimer(self, tmp_path):
        clock = FakeClock()
        a = _manager(tmp_path, owner="a", clock=clock, ttl=10.0)
        b = _manager(tmp_path, owner="b", clock=clock, ttl=10.0)
        stale = a.try_acquire(JOB)
        clock.advance(11.0)
        fresh = b.try_reclaim(JOB)
        assert not a.renew(stale)
        assert stale.lost
        record = b.read(JOB)
        assert record["owner"] == "b" and record["token"] == fresh.token


# ----------------------------------------------------------------- fencing


class TestFencing:
    def _spec(self) -> JobSpec:
        return JobSpec.make("table1", "combo", {"x": 1})

    def test_commit_publishes_and_releases(self, tmp_path):
        spec = self._spec()
        m = _manager(tmp_path, owner="a")
        lease = m.try_acquire(spec.content_hash())
        assert m.commit(lease, spec, {"ok": True}, 0.5)
        assert m.store.has(spec.content_hash())
        assert m.read(spec.content_hash()) is None  # lease file gone

    def test_zombie_commit_is_fenced(self, tmp_path):
        """The core safety property: a reclaimed worker cannot publish."""
        spec = self._spec()
        job = spec.content_hash()
        clock = FakeClock()
        zombie = _manager(tmp_path, owner="z", clock=clock, ttl=10.0)
        peer = _manager(tmp_path, owner="p", clock=clock, ttl=10.0)
        stale = zombie.try_acquire(job)
        clock.advance(11.0)
        fresh = peer.try_reclaim(job)
        # The zombie wakes up and tries to publish its result.
        assert not zombie.commit(stale, spec, {"who": "zombie"}, 0.1)
        assert stale.lost
        assert not zombie.store.has(job)
        # The legitimate holder's commit goes through.
        assert peer.commit(fresh, spec, {"who": "peer"}, 0.1)
        assert peer.store.load_result(job) == {"who": "peer"}

    def test_duplicate_commit_stands_down(self, tmp_path):
        """First os.replace wins; the second committer defers to it."""
        spec = self._spec()
        job = spec.content_hash()
        clock = FakeClock()
        a = _manager(tmp_path, owner="a", clock=clock, ttl=10.0)
        b = _manager(tmp_path, owner="b", clock=clock, ttl=10.0)
        first = a.try_acquire(job)
        clock.advance(11.0)
        second = b.try_reclaim(job)
        assert b.commit(second, spec, {"n": 1}, 0.1)
        assert not a.commit(first, spec, {"n": 1}, 0.1)

    def test_release_preserves_a_reclaimers_record(self, tmp_path):
        spec = self._spec()
        job = spec.content_hash()
        clock = FakeClock()
        a = _manager(tmp_path, owner="a", clock=clock, ttl=10.0)
        b = _manager(tmp_path, owner="b", clock=clock, ttl=10.0)
        stale = a.try_acquire(job)
        clock.advance(11.0)
        b.try_reclaim(job)
        a._release(stale)  # must not unlink b's lease
        assert b.read(job)["owner"] == "b"


# ------------------------------------------------------------- quarantine


class TestQuarantine:
    def test_failures_exhaust_the_budget(self, tmp_path):
        clock = FakeClock()
        m = _manager(tmp_path, owner="a", clock=clock, ttl=10.0,
                     max_reclaims=2)
        lease = m.try_acquire(JOB)
        assert m.fail(lease, RuntimeError("boom 1"))  # released, reclaimable
        lease = m.try_reclaim(JOB)
        assert lease is not None and lease.token == 2
        assert not m.fail(lease, RuntimeError("boom 2"))  # quarantined
        assert m.quarantined() == {JOB}
        record = m.quarantine_record(JOB)
        assert record["attempts"] == 2
        assert [e["error"] for e in record["history"]] == ["boom 1", "boom 2"]
        assert m.read(JOB) is None  # lease file removed
        assert m.try_acquire(JOB) is None  # parked jobs stay dead
        assert m.try_reclaim(JOB) is None

    def test_expiries_exhaust_the_budget(self, tmp_path):
        clock = FakeClock()
        configs = dict(ttl=10.0, max_reclaims=2)
        a = _manager(tmp_path, owner="a", clock=clock, **configs)
        b = _manager(tmp_path, owner="b", clock=clock, **configs)
        a.try_acquire(JOB)
        clock.advance(11.0)
        assert b.try_reclaim(JOB) is not None  # death #1, token 2
        clock.advance(11.0)
        assert b.try_reclaim(JOB) is None  # death #2 hits the budget
        assert b.quarantined() == {JOB}
        owners = [e["owner"] for e in b.quarantine_record(JOB)["history"]]
        assert owners == ["a", "b"]

    def test_abandon_does_not_charge_the_budget(self, tmp_path):
        clock = FakeClock()
        m = _manager(tmp_path, owner="a", clock=clock, ttl=10.0,
                     max_reclaims=1)
        lease = m.try_acquire(JOB)
        m.abandon(lease)  # SIGINT path: worker's story, not the job's
        record = m.read(JOB)
        assert record["state"] == "open" and record["history"] == []
        # Immediately reclaimable without counting as a death, even with
        # a budget of one.
        lease = m.try_reclaim(JOB)
        assert lease is not None and lease.token == 2
        assert m.quarantined() == set()


# --------------------------------------------------------------- telemetry


class TestLeaseTelemetry:
    def test_protocol_events_carry_wall_clock(self, tmp_path):
        bus, sink = _bus()
        clock = FakeClock(500.0)
        config = dict(ttl=10.0, max_reclaims=2)
        a = LeaseManager(ResultStore(tmp_path / "s"), owner="a",
                         config=LeaseConfig(**config), telemetry=bus,
                         clock=clock, campaign="t")
        b = LeaseManager(a.store, owner="b",
                         config=LeaseConfig(**config), telemetry=bus,
                         clock=clock, campaign="t")
        a.try_acquire(JOB)
        clock.advance(11.0)
        b.try_reclaim(JOB)
        clock.advance(11.0)
        b.try_reclaim(JOB)  # quarantines
        events = sink.events()
        acquired = [e for e in events if isinstance(e, LeaseAcquired)]
        expired = [e for e in events if isinstance(e, LeaseExpired)]
        parked = [e for e in events if isinstance(e, JobQuarantined)]
        assert [(e.owner, e.token, e.reclaimed) for e in acquired] == [
            ("a", 1, False), ("b", 2, True),
        ]
        assert [(e.owner, e.by) for e in expired] == [("a", "b"), ("b", "b")]
        assert expired[0].age == pytest.approx(11.0)
        assert len(parked) == 1
        assert parked[0].attempts == 2 and parked[0].owners == ["a", "b"]
        assert all(e.at >= 500.0 for e in acquired + expired + parked)

    def test_events_round_trip_as_json(self):
        from repro.telemetry.events import event_from_dict

        for event in (
            LeaseAcquired(campaign="c", job=JOB, owner="a", token=3,
                          reclaimed=True, at=1.5),
            LeaseExpired(campaign="c", job=JOB, owner="a", token=3,
                         age=12.5, by="b", at=2.5),
            JobQuarantined(campaign="c", job=JOB, attempts=2,
                           owners=["a", "b"], at=3.5),
        ):
            payload = json.loads(json.dumps(event.as_dict()))
            assert event_from_dict(payload) == event


# ------------------------------------------------------------- edge cases


class TestEdgeCases:
    def test_torn_lease_record_treated_as_absent(self, tmp_path):
        m = _manager(tmp_path, owner="a")
        m.try_acquire(JOB)
        m._lease_path(JOB).write_text("{torn")
        assert m.read(JOB) is None
        assert m.try_reclaim(JOB) is None  # nothing to go through

    def test_fail_after_reclaim_is_a_noop(self, tmp_path):
        clock = FakeClock()
        a = _manager(tmp_path, owner="a", clock=clock, ttl=10.0)
        b = _manager(tmp_path, owner="b", clock=clock, ttl=10.0)
        stale = a.try_acquire(JOB)
        clock.advance(11.0)
        b.try_reclaim(JOB)
        assert a.fail(stale, RuntimeError("late"))  # reclaimer owns the story
        record = b.read(JOB)
        assert record["owner"] == "b"
        assert all(e["reason"] != "failed" for e in record["history"])

    def test_open_record_reclaim_preserves_history(self, tmp_path):
        """fail() already wrote its chapter; reclaim must not double it."""
        clock = FakeClock()
        m = _manager(tmp_path, owner="a", clock=clock, ttl=10.0,
                     max_reclaims=3)
        lease = m.try_acquire(JOB)
        m.fail(lease, RuntimeError("boom"))
        lease = m.try_reclaim(JOB)
        assert len(m.read(JOB)["history"]) == 1
        assert lease.token == 2
