"""Tests for the deviation and HPM metrics."""

import pytest

from repro.analysis.metrics import (
    DeviationMode,
    average_deviation,
    deviations,
    hits_per_molecule,
)
from repro.common.errors import ConfigError


class TestDeviationModes:
    def test_absolute_counts_both_sides(self):
        assert DeviationMode.ABSOLUTE.score(0.05, 0.10) == pytest.approx(0.05)
        assert DeviationMode.ABSOLUTE.score(0.15, 0.10) == pytest.approx(0.05)

    def test_excess_only_ignores_below_goal(self):
        assert DeviationMode.EXCESS_ONLY.score(0.05, 0.10) == 0.0
        assert DeviationMode.EXCESS_ONLY.score(0.30, 0.10) == pytest.approx(0.20)


class TestDeviations:
    def test_per_app_values(self):
        result = deviations({0: 0.2, 1: 0.05}, {0: 0.1, 1: 0.1})
        assert result == {0: pytest.approx(0.1), 1: pytest.approx(0.05)}

    def test_unmanaged_excluded(self):
        result = deviations({0: 0.2, 1: 0.9}, {0: 0.1, 1: None})
        assert set(result) == {0}

    def test_missing_miss_rate_rejected(self):
        with pytest.raises(ConfigError):
            deviations({}, {0: 0.1})

    def test_bad_goal_rejected(self):
        with pytest.raises(ConfigError):
            deviations({0: 0.2}, {0: 1.5})


class TestAverageDeviation:
    def test_mean_over_managed(self):
        value = average_deviation({0: 0.2, 1: 0.0, 2: 0.5}, {0: 0.1, 1: 0.1, 2: None})
        assert value == pytest.approx((0.1 + 0.1) / 2)

    def test_all_unmanaged_rejected(self):
        with pytest.raises(ConfigError):
            average_deviation({0: 0.2}, {0: None})

    def test_mode_changes_value(self):
        rates, goals = {0: 0.05}, {0: 0.10}
        assert average_deviation(rates, goals, DeviationMode.ABSOLUTE) > 0
        assert average_deviation(rates, goals, DeviationMode.EXCESS_ONLY) == 0


class TestHPM:
    def test_basic(self):
        assert hits_per_molecule(0.9, 30.0) == pytest.approx(0.03)

    def test_zero_molecules(self):
        assert hits_per_molecule(0.9, 0.0) == 0.0

    def test_rejects_bad_hit_rate(self):
        with pytest.raises(ConfigError):
            hits_per_molecule(1.1, 10)

    def test_rejects_negative_molecules(self):
        with pytest.raises(ConfigError):
            hits_per_molecule(0.5, -1)
