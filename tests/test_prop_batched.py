"""Scalar/batched equivalence property tests.

The batched access engine (``repro.molecular.engine``) and the
set-associative ``access_many``/``access_session`` fast paths promise
byte-identical observable state to replaying the same references through
the scalar ``access_block`` reference implementations: stats dicts,
window counters, telemetry event streams, occupancy reports and resize
logs. These tests drive randomized traces — across placements, line
multipliers, resize triggers, shared regions and mid-trace migrations —
through both paths and hold them to it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.setassoc import SetAssociativeCache
from repro.common.rng import XorShift64
from repro.common.types import AccessResult
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.molecular.latency import LatencyModel
from repro.sim.driver import run_trace
from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import RingBufferSink
from repro.trace.container import Trace


def build_cache(placement: str, trigger: str) -> MolecularCache:
    config = MolecularCacheConfig(
        molecule_bytes=1024,
        molecules_per_tile=8,
        tiles_per_cluster=2,
        clusters=1,
        strict=False,
    )
    return MolecularCache(
        config,
        resize_policy=ResizePolicy(
            period=200,
            trigger=trigger,
            min_window_refs=16,
            period_floor=50,
        ),
        placement=placement,
        rng=XorShift64(11),
    )


def attach_bus(cache) -> RingBufferSink:
    sink = RingBufferSink(capacity=1_000_000)
    cache.attach_telemetry(
        EventBus([sink], epoch_refs=100, sample_interval=7, remote_search_sample=2)
    )
    return sink


def replay_scalar(cache, stream) -> None:
    for block, asid, write in stream:
        cache.access_block(block, asid, write)


def assert_equivalent(reference, candidate, ref_sink=None, cand_sink=None):
    assert reference.stats == candidate.stats
    assert reference.stats.as_dict() == candidate.stats.as_dict()
    assert reference.occupancy_report() == candidate.occupancy_report()
    assert reference.resizer.log == candidate.resizer.log
    if ref_sink is not None:
        assert ref_sink.events() == cand_sink.events()


references = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=1),
        st.booleans(),
    ),
    min_size=30,
    max_size=400,
)


class TestMolecularBatchedEquivalence:
    @given(
        stream=references,
        placement=st.sampled_from(["random", "randy", "lru_direct"]),
        trigger=st.sampled_from(["global_adaptive", "per_app_adaptive"]),
        multiplier=st.sampled_from([1, 2]),
    )
    @settings(max_examples=20, deadline=None)
    def test_stream_matches_scalar(self, stream, placement, trigger, multiplier):
        def setup():
            cache = build_cache(placement, trigger)
            cache.assign_application(
                0, goal=0.3, initial_molecules=3, tile_id=0,
                line_multiplier=multiplier,
            )
            cache.assign_application(1, goal=0.3, initial_molecules=3, tile_id=1)
            return cache, attach_bus(cache)

        blocks = [b for b, _a, _w in stream]
        asids = [a for _b, a, _w in stream]
        writes = [w for _b, _a, w in stream]

        scalar, scalar_sink = setup()
        replay_scalar(scalar, stream)

        batched, batched_sink = setup()
        assert batched.access_many(blocks, asids, writes) == len(stream)

        session_cache, session_sink = setup()
        access = session_cache.access_session().access
        for block, asid, write in stream:
            access(block, asid, write)

        assert_equivalent(scalar, batched, scalar_sink, batched_sink)
        assert_equivalent(scalar, session_cache, scalar_sink, session_sink)

    @given(
        stream=references,
        placement=st.sampled_from(["random", "randy"]),
        cut=st.integers(min_value=1, max_value=29),
    )
    @settings(max_examples=15, deadline=None)
    def test_migration_mid_trace(self, stream, placement, cut):
        def setup():
            cache = build_cache(placement, "global_adaptive")
            cache.assign_application(0, goal=0.3, initial_molecules=3, tile_id=0)
            cache.assign_application(1, goal=0.3, initial_molecules=3, tile_id=1)
            return cache, attach_bus(cache)

        scalar, scalar_sink = setup()
        replay_scalar(scalar, stream[:cut])
        scalar.migrate_application(0, 1)
        replay_scalar(scalar, stream[cut:])

        batched, batched_sink = setup()
        head, tail = stream[:cut], stream[cut:]
        batched.access_many(*zip(*head))
        batched.migrate_application(0, 1)
        if tail:
            batched.access_many(
                [b for b, _a, _w in tail],
                [a for _b, a, _w in tail],
                [w for _b, _a, w in tail],
            )

        # The session path must pick the migration up mid-stream via the
        # context epoch, with no explicit invalidation call.
        session_cache, session_sink = setup()
        access = session_cache.access_session().access
        for block, asid, write in stream[:cut]:
            access(block, asid, write)
        session_cache.migrate_application(0, 1)
        for block, asid, write in stream[cut:]:
            access(block, asid, write)

        assert_equivalent(scalar, batched, scalar_sink, batched_sink)
        assert_equivalent(scalar, session_cache, scalar_sink, session_sink)

    @given(stream=references)
    @settings(max_examples=15, deadline=None)
    def test_shared_region_fallback(self, stream):
        def setup():
            cache = build_cache("randy", "global_adaptive")
            cache.create_shared_region(tile_id=0, molecules=4)
            cache.assign_shared_application(0, tile_id=0)
            cache.assign_application(1, goal=0.3, initial_molecules=3, tile_id=0)
            return cache, attach_bus(cache)

        scalar, scalar_sink = setup()
        replay_scalar(scalar, stream)

        batched, batched_sink = setup()
        batched.access_many(
            [b for b, _a, _w in stream],
            [a for _b, a, _w in stream],
            [w for _b, _a, w in stream],
        )
        assert_equivalent(scalar, batched, scalar_sink, batched_sink)

    @given(stream=references)
    @settings(max_examples=10, deadline=None)
    def test_custom_latency_model_takes_scalar_path(self, stream):
        class DoubledLatency(LatencyModel):
            def cycles(self, result: AccessResult) -> int:
                return 2 * LatencyModel.cycles(self, result)

        def setup():
            cache = build_cache("randy", "global_adaptive")
            cache.latency_model = DoubledLatency()
            cache.assign_application(0, goal=0.3, initial_molecules=3)
            cache.assign_application(1, goal=0.3, initial_molecules=3)
            return cache

        scalar = setup()
        replay_scalar(scalar, stream)

        batched = setup()
        batched.access_many(
            [b for b, _a, _w in stream],
            [a for _b, a, _w in stream],
            [w for _b, _a, w in stream],
        )
        assert_equivalent(scalar, batched)


class TestSetAssocBatchedEquivalence:
    @given(
        stream=references,
        policy=st.sampled_from(["lru", "fifo", "random"]),
        associativity=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=20, deadline=None)
    def test_stream_matches_scalar(self, stream, policy, associativity):
        def setup():
            return SetAssociativeCache(
                1 << 13, associativity, policy=policy, rng=XorShift64(3)
            )

        scalar = setup()
        for block, asid, write in stream:
            scalar.access_block(block, asid, write)

        batched = setup()
        assert batched.access_many(
            [b for b, _a, _w in stream],
            [a for _b, a, _w in stream],
            [w for _b, _a, w in stream],
        ) == len(stream)

        session_cache = setup()
        access = session_cache.access_session().access
        hits = [access(block, asid, write) for block, asid, write in stream]

        assert scalar.stats == batched.stats == session_cache.stats
        assert (
            sorted(scalar.resident_blocks())
            == sorted(batched.resident_blocks())
            == sorted(session_cache.resident_blocks())
        )
        assert hits.count(True) == scalar.stats.total.hits


class TestRunTraceBatched:
    @given(stream=references, warmup=st.integers(min_value=0, max_value=29))
    @settings(max_examples=10, deadline=None)
    def test_run_trace_warmup_split_matches_scalar_loop(self, stream, warmup):
        addresses = [b * 64 for b, _a, _w in stream]
        trace = Trace(
            addresses,
            [a for _b, a, _w in stream],
            [w for _b, _a, w in stream],
        )

        def setup():
            cache = build_cache("randy", "global_adaptive")
            cache.assign_application(0, goal=0.3, initial_molecules=3, tile_id=0)
            cache.assign_application(1, goal=0.3, initial_molecules=3, tile_id=1)
            return cache

        scalar = setup()
        for index, (block, asid, write) in enumerate(stream):
            if index == warmup and warmup:
                scalar.stats.reset()
            scalar.access_block(block, asid, write)

        driven = setup()
        run_trace(driven, trace, warmup_refs=warmup)
        assert_equivalent(scalar, driven)
