"""Tests for the CACTI-like analytical power/timing model."""

import pytest

from repro.common.errors import ConfigError
from repro.power.model import CacheOrganization, CactiModel
from repro.power.tables import PAPER_TABLE4_TRADITIONAL


@pytest.fixture(scope="module")
def model() -> CactiModel:
    return CactiModel()


class TestOrganizationValidation:
    def test_sets(self):
        org = CacheOrganization(8 << 20, 4, 64)
        assert org.sets == (8 << 20) // (64 * 4)

    def test_rejects_non_power_size(self):
        with pytest.raises(ConfigError):
            CacheOrganization(3000)

    def test_rejects_cache_smaller_than_set(self):
        with pytest.raises(ConfigError):
            CacheOrganization(64, associativity=4, line_bytes=64)

    def test_rejects_zero_ports(self):
        with pytest.raises(ConfigError):
            CacheOrganization(1024, ports=0)


class TestScalingLaws:
    def test_energy_grows_with_size(self, model):
        energies = [
            model.energy_nj(CacheOrganization(size, 4, 64, 4))
            for size in (1 << 20, 2 << 20, 4 << 20, 8 << 20)
        ]
        assert energies == sorted(energies)

    def test_energy_grows_with_associativity(self, model):
        energies = [
            model.energy_nj(CacheOrganization(8 << 20, a, 64, 4))
            for a in (1, 2, 4, 8)
        ]
        assert energies == sorted(energies)

    def test_energy_grows_with_ports(self, model):
        one = model.energy_nj(CacheOrganization(1 << 20, 4, 64, 1))
        four = model.energy_nj(CacheOrganization(1 << 20, 4, 64, 4))
        assert four > one * 2

    def test_eight_way_frequency_collapse(self, model):
        """The paper's Table 4: 8-way runs at ~half the frequency."""
        t4 = model.access_time_ns(CacheOrganization(8 << 20, 4, 64, 4))
        t8 = model.access_time_ns(CacheOrganization(8 << 20, 8, 64, 4))
        assert t8 > 1.6 * t4

    def test_molecule_is_cheap(self, model):
        """Small caches are an order of magnitude cheaper per access —
        the premise of the molecular design."""
        molecule = model.molecule_energy_nj(8 * 1024)
        big = model.energy_nj(CacheOrganization(8 << 20, 1, 64, 4))
        assert molecule < big / 20

    def test_molecule_is_fast(self, model):
        molecule_t = model.access_time_ns(CacheOrganization(8 * 1024, 1, 64, 1))
        big_t = model.access_time_ns(CacheOrganization(8 << 20, 1, 64, 4))
        assert molecule_t < big_t / 2


class TestCalibration:
    """The fitted model must stay within tolerance of its calibration
    targets (the paper's Table 4)."""

    @pytest.mark.parametrize("assoc", [1, 2, 4, 8])
    def test_frequency_within_15_percent(self, model, assoc):
        paper_freq, _ = PAPER_TABLE4_TRADITIONAL[assoc]
        ours = model.evaluate(CacheOrganization(8 << 20, assoc, 64, 4)).frequency_mhz
        assert abs(ours - paper_freq) / paper_freq < 0.15

    @pytest.mark.parametrize("assoc", [1, 2, 4, 8])
    def test_power_within_30_percent(self, model, assoc):
        paper_freq, paper_power = PAPER_TABLE4_TRADITIONAL[assoc]
        evaluation = model.evaluate(CacheOrganization(8 << 20, assoc, 64, 4))
        ours = evaluation.power_watts()
        assert abs(ours - paper_power) / paper_power < 0.30

    def test_molecule_energy_near_paper_implied_value(self, model):
        # 26.6 nJ per 64-molecule tile -> ~0.42 nJ per molecule.
        assert model.molecule_energy_nj(8 * 1024) == pytest.approx(0.42, abs=0.1)


class TestEvaluation:
    def test_power_at_explicit_frequency(self, model):
        evaluation = model.evaluate(CacheOrganization(1 << 20, 1, 64, 1))
        assert evaluation.power_watts(100.0) == pytest.approx(
            evaluation.energy_nj * 1e-9 * 100e6
        )

    def test_deterministic(self, model):
        org = CacheOrganization(2 << 20, 2, 64, 2)
        assert model.evaluate(org) == model.evaluate(org)

    def test_tiny_structure_fallback(self, model):
        evaluation = model.evaluate(CacheOrganization(512, 1, 64, 1))
        assert evaluation.energy_nj > 0
        assert evaluation.access_time_ns > 0
