"""Unit tests for tiles (molecule groups behind one port)."""

import pytest

from repro.common.errors import AllocationError, ConfigError
from repro.molecular.tile import Tile


def make_tile(molecules=4, lines=16) -> Tile:
    return Tile(
        tile_id=0, cluster_id=0, molecule_count=molecules, lines_per_molecule=lines
    )


class TestConstruction:
    def test_molecule_ids_sequential(self):
        tile = Tile(1, 0, 3, 16, first_molecule_id=10)
        assert [m.molecule_id for m in tile.molecules] == [10, 11, 12]
        assert all(m.tile_id == 1 for m in tile.molecules)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            make_tile(molecules=0)

    def test_all_free_initially(self):
        assert make_tile(4).free_count == 4


class TestAllocation:
    def test_take_free_configures(self):
        tile = make_tile(4)
        granted = tile.take_free(2, asid=9)
        assert len(granted) == 2
        assert all(m.asid == 9 for m in granted)
        assert tile.free_count == 2
        assert tile.owned_count(9) == 2

    def test_take_free_partial_grant(self):
        tile = make_tile(2)
        assert len(tile.take_free(5, asid=1)) == 2
        assert tile.free_count == 0

    def test_take_free_zero(self):
        assert make_tile().take_free(0, asid=1) == []

    def test_take_free_negative_rejected(self):
        with pytest.raises(AllocationError):
            make_tile().take_free(-1, asid=1)

    def test_release_returns_to_pool(self):
        tile = make_tile(2)
        (molecule,) = tile.take_free(1, asid=1)
        molecule.fill(7, dirty=True)
        flushed = tile.release(molecule)
        assert flushed == [(7, True)]
        assert tile.free_count == 2
        assert tile.owned_count(1) == 0

    def test_release_foreign_molecule_rejected(self):
        tile_a, tile_b = make_tile(), Tile(1, 0, 2, 16)
        (molecule,) = tile_b.take_free(1, asid=1)
        with pytest.raises(AllocationError):
            tile_a.release(molecule)

    def test_shared_allocation_counted(self):
        tile = make_tile(4)
        tile.take_free(2, asid=-2, shared=True)
        assert tile.shared_count == 2
        (shared_mol,) = [m for m in tile.molecules if m.shared][:1]
        tile.release(shared_mol)
        assert tile.shared_count == 1

    def test_occupancy_by_asid(self):
        tile = make_tile(4)
        tile.take_free(1, asid=1)
        tile.take_free(2, asid=2)
        assert tile.occupancy_by_asid() == {1: 1, 2: 2}
