"""Tests for the Mattson stack-distance engine."""

import pytest

from repro.analysis.reuse import COLD, StackDistanceAnalyzer, miss_curve
from repro.common.errors import ConfigError


def brute_force_distance(history: list[int], block: int) -> int:
    """Reference implementation: distinct blocks since last touch."""
    try:
        last = len(history) - 1 - history[::-1].index(block)
    except ValueError:
        return COLD
    return len(set(history[last + 1 :]))


class TestStackDistances:
    def test_cold_references(self):
        analyzer = StackDistanceAnalyzer()
        assert analyzer.record(1) == COLD
        assert analyzer.record(2) == COLD

    def test_immediate_reuse_distance_zero(self):
        analyzer = StackDistanceAnalyzer()
        analyzer.record(1)
        assert analyzer.record(1) == 0

    def test_classic_sequence(self):
        # a b c a : distance of final a is 2 (b and c in between)
        analyzer = StackDistanceAnalyzer()
        for block in (1, 2, 3):
            analyzer.record(block)
        assert analyzer.record(1) == 2

    def test_duplicates_between_touches_counted_once(self):
        # a b b b a : distance 1, not 3
        analyzer = StackDistanceAnalyzer()
        analyzer.record(1)
        for _ in range(3):
            analyzer.record(2)
        assert analyzer.record(1) == 1

    def test_matches_brute_force_on_random_stream(self):
        import random

        rng = random.Random(13)
        stream = [rng.randrange(40) for _ in range(800)]
        analyzer = StackDistanceAnalyzer(capacity_hint=16)  # force regrowth
        history: list[int] = []
        for block in stream:
            expected = brute_force_distance(history, block)
            assert analyzer.record(block) == expected
            history.append(block)

    def test_counters(self):
        analyzer = StackDistanceAnalyzer()
        analyzer.run([1, 2, 1, 3, 1])
        assert analyzer.references == 5
        assert analyzer.distinct_blocks == 3
        assert analyzer.cold_fraction() == pytest.approx(3 / 5)
        # finite distances: 1 (after 1,2) and 1 (after 1,3)
        assert analyzer.mean_distance() == pytest.approx(1.0)

    def test_capacity_hint_validated(self):
        with pytest.raises(ConfigError):
            StackDistanceAnalyzer(capacity_hint=0)


class TestMissCurve:
    def test_loop_has_sharp_knee(self):
        # Loop over 10 blocks: fits at capacity 10, thrashes never (LRU
        # over a cyclic scan of N blocks at capacity < N always misses).
        stream = list(range(10)) * 50
        curve = miss_curve(stream, capacities=(5, 10, 20))
        assert curve[10] == pytest.approx(10 / 500)  # cold only
        assert curve[20] == pytest.approx(10 / 500)
        assert curve[5] == pytest.approx(1.0)  # cyclic scan thrashes LRU

    def test_monotone_in_capacity(self):
        import random

        rng = random.Random(3)
        stream = [rng.randrange(100) for _ in range(3000)]
        curve = miss_curve(stream, capacities=(1, 2, 4, 8, 16, 32, 64, 128))
        values = [curve[c] for c in sorted(curve)]
        assert values == sorted(values, reverse=True)

    def test_matches_simulated_lru(self):
        """The Mattson curve equals a fully-associative LRU simulation."""
        import random

        from repro.caches.setassoc import SetAssociativeCache

        rng = random.Random(7)
        stream = [rng.randrange(60) for _ in range(4000)]
        for capacity_lines in (16, 32):
            cache = SetAssociativeCache(capacity_lines * 64, capacity_lines, 64)
            for block in stream:
                cache.access_block(block)
            simulated = cache.stats.miss_rate()
            analytic = miss_curve(stream, capacities=(capacity_lines,))[capacity_lines]
            assert analytic == pytest.approx(simulated)

    def test_empty_analyzer_rejected(self):
        with pytest.raises(ConfigError):
            StackDistanceAnalyzer().miss_curve((4,))

    def test_negative_capacity_rejected(self):
        analyzer = StackDistanceAnalyzer()
        analyzer.record(1)
        with pytest.raises(ConfigError):
            analyzer.miss_curve((-1,))


class TestModelValidation:
    def test_ring_model_miss_curve_matches_prediction(self):
        """The ring-mixture model's analytic expected_miss_rate agrees with
        the measured Mattson curve for a simple two-ring model."""
        from repro.workloads.model import BenchmarkModel, RingComponent

        model = BenchmarkModel(
            name="v",
            components=(
                RingComponent(weight=0.8, blocks=200, run_length=1),
                RingComponent(weight=0.2, blocks=4_000, run_length=1),
            ),
        )
        blocks = model.generate(60_000, seed=5).blocks().tolist()
        measured = miss_curve(blocks, capacities=(300, 1000, 5000))
        for capacity, rate in measured.items():
            predicted = model.expected_miss_rate(capacity)
            assert abs(rate - predicted) < 0.08, (capacity, rate, predicted)
