"""Tests for profile-driven initial allocation (paper section 3.4)."""

import pytest

from repro.common.errors import ConfigError
from repro.molecular.cache import ALLOCATION_PROFILES
from tests.conftest import make_cache


class TestAllocationProfiles:
    def test_profile_table(self):
        assert ALLOCATION_PROFILES["small"] < ALLOCATION_PROFILES["typical"]
        assert ALLOCATION_PROFILES["typical"] < ALLOCATION_PROFILES["large"]

    def test_small_profile(self, small_config):
        cache = make_cache(small_config)  # 16 molecules/tile
        region = cache.assign_application(0, profile="small")
        assert region.molecule_count == 2  # 16 * 0.125

    def test_typical_profile_matches_default(self, small_config):
        cache = make_cache(small_config)
        typical = cache.assign_application(0, profile="typical")
        default = cache.assign_application(1)
        assert typical.molecule_count == default.molecule_count == 8

    def test_large_profile_takes_whole_tile(self, small_config):
        cache = make_cache(small_config)
        region = cache.assign_application(0, profile="large")
        assert region.molecule_count == 16

    def test_explicit_count_overrides_profile(self, small_config):
        cache = make_cache(small_config)
        region = cache.assign_application(0, profile="large", initial_molecules=3)
        assert region.molecule_count == 3

    def test_unknown_profile_rejected(self, small_config):
        cache = make_cache(small_config)
        with pytest.raises(ConfigError):
            cache.assign_application(0, profile="enormous")

    def test_profile_minimum_one_molecule(self, tiny_config):
        cache = make_cache(tiny_config)  # 4 molecules/tile
        region = cache.assign_application(0, profile="small")  # 4*0.125 -> 0 -> 1
        assert region.molecule_count == 1
