"""Tests for campaign chaos testing and graceful interruption.

Covers the :class:`~repro.faults.chaos.ChaosPolicy` (seeded, per-job
sabotage decisions), the runner's chaos plumbing (directives consulted
once per job, zero-cost when disabled), the worker-side directive
handling in ``execute_chunk``, the end-to-end convergence guarantee (a
chaos campaign's reassembled output is byte-identical to a clean serial
run), and SIGINT/SIGTERM interruption with durable progress plus a
``CampaignInterrupted`` telemetry event.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    JobSpec,
    ResultStore,
    get_experiment,
)
from repro.campaign.runner import execute_chunk
from repro.common.errors import ConfigError
from repro.faults import ChaosPolicy
from repro.telemetry import EventBus, RingBufferSink
from repro.telemetry.events import CampaignInterrupted, ChaosInjected

#: Same tiny-scale pin as tests/test_campaign.py: real numbers, fast jobs.
TINY_SCALE = "0.02"


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", TINY_SCALE)


def _bus():
    sink = RingBufferSink()
    return sink, EventBus([sink], epoch_refs=0)


# ------------------------------------------------------------------ policy


class TestChaosPolicy:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ConfigError):
            ChaosPolicy(crash_rate=-0.1)
        with pytest.raises(ConfigError):
            ChaosPolicy(hang_rate=1.5)
        with pytest.raises(ConfigError):
            ChaosPolicy(crash_rate=0.5, hang_rate=0.4, corrupt_rate=0.2)

    def test_hang_seconds_must_be_positive(self):
        with pytest.raises(ConfigError):
            ChaosPolicy(hang_rate=0.1, hang_seconds=0.0)

    def test_active_only_with_nonzero_rates(self):
        assert not ChaosPolicy().active
        assert not ChaosPolicy(seed=7).active
        assert ChaosPolicy(crash_rate=0.01).active
        assert ChaosPolicy(corrupt_rate=1.0).active

    def test_directive_is_deterministic_in_seed_and_hash(self):
        hashes = [f"hash-{i}" for i in range(64)]
        a = ChaosPolicy(seed=3, crash_rate=0.3, hang_rate=0.3,
                        corrupt_rate=0.3)
        b = ChaosPolicy(seed=3, crash_rate=0.3, hang_rate=0.3,
                        corrupt_rate=0.3)
        assert [a.directive(h) for h in hashes] == [
            b.directive(h) for h in hashes
        ]

    def test_saturated_rate_always_fires_that_action(self):
        hashes = [f"hash-{i}" for i in range(16)]
        assert all(
            ChaosPolicy(crash_rate=1.0).directive(h) == {"action": "crash"}
            for h in hashes
        )
        assert all(
            ChaosPolicy(corrupt_rate=1.0).directive(h)
            == {"action": "corrupt"}
            for h in hashes
        )
        hang = ChaosPolicy(hang_rate=1.0, hang_seconds=2.5).directive("x")
        assert hang == {"action": "hang", "seconds": 2.5}

    def test_rates_partition_the_roll(self):
        """Every action (and leniency) shows up across enough hashes."""
        policy = ChaosPolicy(
            seed=1, crash_rate=0.3, hang_rate=0.3, corrupt_rate=0.3
        )
        actions = {
            (policy.directive(f"hash-{i}") or {}).get("action")
            for i in range(200)
        }
        assert actions == {"crash", "hang", "corrupt", None}


# ------------------------------------------------- runner chaos directives


def _specs(count: int = 4) -> list[JobSpec]:
    return [
        JobSpec.make("table1", "combo", {"x": i}, seed=1) for i in range(count)
    ]


def _chunk(specs: list[JobSpec]):
    return [(index, spec, 1) for index, spec in enumerate(specs)]


class TestChaosDirectives:
    def test_disabled_chaos_returns_none(self, tmp_path):
        """The zero-cost contract: no policy (or an inactive one) means
        the runner submits exactly the same pool call as before the
        feature existed — ``_chaos_directives`` must say so with None."""
        chunk = _chunk(_specs())
        runner = CampaignRunner(ResultStore(tmp_path))
        assert runner._chaos_directives("c", chunk) is None
        inactive = CampaignRunner(
            ResultStore(tmp_path), chaos=ChaosPolicy(seed=9)
        )
        assert inactive._chaos_directives("c", chunk) is None

    def test_each_job_is_sabotaged_at_most_once(self, tmp_path):
        specs = _specs()
        sink, bus = _bus()
        runner = CampaignRunner(
            ResultStore(tmp_path),
            telemetry=bus,
            chaos=ChaosPolicy(seed=0, crash_rate=1.0),
        )
        first = runner._chaos_directives("c", _chunk(specs))
        assert first == [{"action": "crash"}] * len(specs)
        # the retry submission of the same jobs is left alone
        second = runner._chaos_directives("c", _chunk(specs))
        assert second == [None] * len(specs)
        injected = [e for e in sink.events() if isinstance(e, ChaosInjected)]
        assert len(injected) == len(specs)
        assert {e.job for e in injected} == {
            s.content_hash() for s in specs
        }
        assert all(e.action == "crash" for e in injected)


# --------------------------------------------------------- worker behaviour


class TestExecuteChunkDirectives:
    def _payload(self):
        target = get_experiment("table1")
        return target.jobs(refs=1000)[0].as_payload()

    def test_no_directives_matches_benign_directives(self):
        payload = self._payload()
        plain = execute_chunk([payload])
        benign = execute_chunk([payload], [None])
        assert plain[0]["result"] == benign[0]["result"]
        assert "elapsed" in plain[0] and "elapsed" in benign[0]

    def test_corrupt_directive_returns_malformed_outcome(self):
        (outcome,) = execute_chunk(
            [self._payload()], [{"action": "corrupt"}]
        )
        # The shape the dispatcher's validation must reject: no elapsed.
        assert outcome == {"result": "\x00corrupt"}
        assert "elapsed" not in outcome

    def test_hang_directive_sleeps_then_executes(self):
        (outcome,) = execute_chunk(
            [self._payload()], [{"action": "hang", "seconds": 0.01}]
        )
        assert "result" in outcome and "elapsed" in outcome


# ------------------------------------------------------ chaos campaign run


def _pick_chaos_seed(hashes: list[str]) -> ChaosPolicy:
    """A seed whose directives hit these jobs with exactly one crash and
    at least one corruption — enough sabotage to exercise the pool's
    recovery paths without tripping the serial-fallback circuit breaker.
    Scanning is deterministic, so the test never flakes."""
    for seed in range(1000):
        policy = ChaosPolicy(seed=seed, crash_rate=0.3, corrupt_rate=0.3)
        actions = [
            (policy.directive(h) or {}).get("action") for h in hashes
        ]
        if actions.count("crash") == 1 and actions.count("corrupt") >= 1:
            return policy
    raise AssertionError("no suitable chaos seed in range")


class TestChaosCampaign:
    def test_chaos_run_is_byte_identical_to_clean_serial(self, tmp_path):
        """The headline guarantee: crashes and corrupted payloads change
        nothing about the reassembled output, only the road there."""
        target = get_experiment("degradation")
        specs = target.jobs(refs=12_000)
        clean = CampaignRunner(
            ResultStore(tmp_path / "clean"), CampaignConfig(jobs=1)
        ).run(specs, campaign="degradation")
        clean_text = target.assemble_results(
            specs, clean.results_in_order()
        ).format()

        policy = _pick_chaos_seed([s.content_hash() for s in specs])
        sink, bus = _bus()
        chaos_store = ResultStore(tmp_path / "chaos")
        outcome = CampaignRunner(
            chaos_store,
            CampaignConfig(jobs=2, retries=3, backoff=0.0),
            telemetry=bus,
            chaos=policy,
        ).run(specs, campaign="degradation")
        chaos_text = target.assemble_results(
            specs, outcome.results_in_order()
        ).format()
        assert chaos_text == clean_text

        if outcome.mode == "pool":  # sandboxes may force serial-fallback
            injected = [
                e for e in sink.events() if isinstance(e, ChaosInjected)
            ]
            assert {e.action for e in injected} >= {"crash", "corrupt"}
            # every sabotaged job had to burn at least one retry
            assert outcome.retried >= len(injected)

        # resume-after-chaos: everything is durable, nothing re-executes
        resumed = CampaignRunner(
            chaos_store, CampaignConfig(jobs=1)
        ).run(specs, campaign="degradation")
        assert resumed.executed == 0
        assert len(resumed.cached) == len(specs)
        resumed_text = target.assemble_results(
            specs, resumed.results_in_order()
        ).format()
        assert resumed_text == clean_text

    def test_serial_campaigns_ignore_chaos(self, tmp_path):
        """Chaos only sabotages the pool path; a jobs=1 campaign with an
        aggressive policy still completes cleanly in one pass."""
        target = get_experiment("table1")
        specs = target.jobs(refs=1000)
        outcome = CampaignRunner(
            ResultStore(tmp_path),
            CampaignConfig(jobs=1),
            chaos=ChaosPolicy(seed=0, crash_rate=1.0),
        ).run(specs, campaign="table1")
        assert outcome.mode == "serial"
        assert outcome.executed == len(specs)
        assert outcome.retried == 0


# ------------------------------------------------------------ interruption


class TestInterruption:
    def _interrupt_after(self, tmp_path, n, raiser):
        """Run table1, aborting via ``raiser`` after ``n`` persists."""

        def hook(persisted: int) -> None:
            if persisted >= n:
                raiser()

        target = get_experiment("table1")
        specs = target.jobs(refs=1000)
        sink, bus = _bus()
        store = ResultStore(tmp_path)
        runner = CampaignRunner(
            store, CampaignConfig(jobs=1), telemetry=bus, fault_hook=hook
        )
        return target, specs, store, sink, runner

    def test_sigint_emits_interrupted_event_and_preserves_progress(
        self, tmp_path
    ):
        def raise_sigint():
            raise KeyboardInterrupt

        target, specs, store, sink, runner = self._interrupt_after(
            tmp_path, 3, raise_sigint
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run(specs, campaign="table1")
        events = [
            e for e in sink.events() if isinstance(e, CampaignInterrupted)
        ]
        assert len(events) == 1
        assert events[0].signal == "SIGINT"
        assert events[0].completed == 3
        assert events[0].pending == len(specs) - 3
        done = store.completed([s.content_hash() for s in specs])
        assert len(done) == 3

    def test_real_sigterm_is_trapped_and_reported(self, tmp_path):
        """An actual SIGTERM delivered mid-campaign goes through the
        runner's translated handler: the event says SIGTERM, progress
        survives, and SystemExit propagates to the caller."""

        def deliver_sigterm():
            os.kill(os.getpid(), signal.SIGTERM)

        target, specs, store, sink, runner = self._interrupt_after(
            tmp_path, 2, deliver_sigterm
        )
        with pytest.raises(SystemExit):
            runner.run(specs, campaign="table1")
        events = [
            e for e in sink.events() if isinstance(e, CampaignInterrupted)
        ]
        assert len(events) == 1
        assert events[0].signal == "SIGTERM"
        assert events[0].completed == 2
        assert len(store.completed([s.content_hash() for s in specs])) == 2

    def test_sigterm_handler_is_restored_after_the_run(self, tmp_path):
        target = get_experiment("table2")
        specs = target.jobs(refs=1000)
        before = signal.getsignal(signal.SIGTERM)
        CampaignRunner(ResultStore(tmp_path), CampaignConfig(jobs=1)).run(
            specs, campaign="table2"
        )
        assert signal.getsignal(signal.SIGTERM) is before

    def test_resumed_run_after_interrupt_completes_the_rest(
        self, tmp_path, monkeypatch
    ):
        """The acceptance scenario: interrupt, resume, finish — and the
        final output matches an uninterrupted serial run byte for byte."""

        def raise_sigint():
            raise KeyboardInterrupt

        target, specs, store, _sink, runner = self._interrupt_after(
            tmp_path / "interrupted", 3, raise_sigint
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run(specs, campaign="table1")

        executed: list[str] = []
        import repro.campaign.runner as runner_mod

        original = runner_mod.execute_spec

        def counting(payload):
            executed.append(payload["job"])
            return original(payload)

        monkeypatch.setattr(runner_mod, "execute_spec", counting)
        resumed = CampaignRunner(store, CampaignConfig(jobs=1)).run(
            specs, campaign="table1"
        )
        assert len(executed) == len(specs) - 3
        assert resumed.executed == len(specs) - 3
        assert len(resumed.cached) == 3
        resumed_text = target.assemble_results(
            specs, resumed.results_in_order()
        ).format()

        monkeypatch.setattr(runner_mod, "execute_spec", original)
        clean = CampaignRunner(
            ResultStore(tmp_path / "clean"), CampaignConfig(jobs=1)
        ).run(specs, campaign="table1")
        clean_text = target.assemble_results(
            specs, clean.results_in_order()
        ).format()
        assert resumed_text == clean_text
