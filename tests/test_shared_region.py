"""Tests for shared-bit molecules and shared regions (Figure 3's shared bit)."""

import pytest

from repro.common.errors import ConfigError
from tests.conftest import make_cache


class TestSharedRegionCreation:
    def test_creates_shared_molecules(self, tiny_config):
        cache = make_cache(tiny_config)
        region = cache.create_shared_region(tile_id=0, molecules=2)
        assert region.molecule_count == 2
        tile = cache.tile_of(0)
        assert tile.shared_count == 2

    def test_duplicate_shared_region_rejected(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.create_shared_region(0, 1)
        with pytest.raises(ConfigError):
            cache.create_shared_region(0, 1)

    def test_insufficient_free_molecules_rejected(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0, initial_molecules=4)
        with pytest.raises(ConfigError):
            cache.create_shared_region(0, 1)

    def test_failed_creation_releases_partial_grant(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0, initial_molecules=3)
        free_before = cache.tile_of(0).free_count
        with pytest.raises(ConfigError):
            cache.create_shared_region(0, 2)
        assert cache.tile_of(0).free_count == free_before


class TestSharedApplications:
    def test_shared_apps_share_data(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.create_shared_region(0, 2)
        cache.assign_shared_application(1, 0)
        cache.assign_shared_application(2, 0)
        cache.access_block(5, 1)
        assert cache.access_block(5, 2).hit  # same physical region

    def test_shared_app_requires_shared_region(self, tiny_config):
        cache = make_cache(tiny_config)
        with pytest.raises(ConfigError):
            cache.assign_shared_application(1, 0)

    def test_shared_app_cannot_have_two_regions(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.create_shared_region(0, 1)
        cache.assign_application(1, tile_id=1)
        with pytest.raises(ConfigError):
            cache.assign_shared_application(1, 0)


class TestSharedBitProbing:
    def test_exclusive_app_hits_shared_data_on_its_tile(self, tiny_config):
        cache = make_cache(tiny_config)
        shared = cache.create_shared_region(0, 2)
        cache.assign_shared_application(1, 0)
        cache.assign_application(2, tile_id=0, initial_molecules=1)
        cache.access_block(9, 1)  # fills the shared region
        result = cache.access_block(9, 2)  # exclusive app, same tile
        assert result.hit
        assert shared.lookup(9) is not None

    def test_shared_molecules_counted_in_probes(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.create_shared_region(0, 2)
        cache.assign_application(2, tile_id=0, initial_molecules=1)
        result = cache.access_block(3, 2)
        # 1 owned + 2 shared molecules probed on the home tile
        assert result.molecules_probed_local == 3

    def test_shared_region_not_probed_from_other_tile(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.create_shared_region(0, 2)
        cache.assign_shared_application(1, 0)
        cache.assign_application(2, tile_id=1, initial_molecules=1)
        cache.access_block(9, 1)
        assert cache.access_block(9, 2).miss
