"""Tests for the related-work partitioned caches (Suh et al.)."""

import pytest

from repro.caches.partitioned import ColumnCache, ModifiedLRUCache
from repro.common.errors import ConfigError


class TestModifiedLRU:
    def make(self, quotas=None, size=1024, assoc=4):
        return ModifiedLRUCache(size, assoc, 64, quotas=quotas)

    def test_behaves_like_lru_without_quotas(self):
        cache = self.make()
        sets = cache.num_sets
        a, b, c, d, e = (i * sets for i in range(5))
        for block in (a, b, c, d):
            cache.access_block(block, asid=1)
        result = cache.access_block(e, asid=1)  # evicts a (global LRU)
        assert result.evicted_block == a

    def test_quota_forces_local_replacement(self):
        cache = self.make(quotas={2: 1})
        sets = cache.num_sets
        # asid 1 fills three ways; asid 2 owns one line and is at quota
        cache.access_block(0 * sets, asid=1)
        cache.access_block(1 * sets, asid=2)
        cache.access_block(2 * sets, asid=1)
        cache.access_block(3 * sets, asid=1)
        # asid 2 misses: global LRU would evict asid 1's oldest, but the
        # quota forces a local replacement of asid 2's own line
        result = cache.access_block(4 * sets, asid=2)
        assert result.evicted_block == 1 * sets
        assert cache.resident_lines(2) == 1

    def test_under_quota_uses_global_replacement(self):
        cache = self.make(quotas={2: 8})
        sets = cache.num_sets
        for i, asid in enumerate((1, 1, 1, 1)):
            cache.access_block(i * sets, asid=asid)
        result = cache.access_block(4 * sets, asid=2)
        assert result.evicted_block == 0  # global LRU victim

    def test_local_falls_back_to_global_if_no_own_line_in_set(self):
        cache = self.make(quotas={2: 0})
        sets = cache.num_sets
        for i in range(4):
            cache.access_block(i * sets, asid=1)
        result = cache.access_block(4 * sets, asid=2)  # over quota, no own lines
        assert result.evicted_block == 0

    def test_set_quota_runtime(self):
        cache = self.make()
        cache.set_quota(1, 4)
        assert cache.quotas[1] == 4
        cache.set_quota(1, None)
        assert 1 not in cache.quotas
        with pytest.raises(ConfigError):
            cache.set_quota(1, -1)

    def test_resident_accounting(self):
        cache = self.make()
        cache.access_block(1, asid=1)
        cache.access_block(2, asid=1)
        cache.access_block(3, asid=2)
        assert cache.resident_lines(1) == 2
        assert cache.resident_lines(2) == 1
        assert cache.occupancy_by_asid() == {1: 2, 2: 1}

    def test_quota_caps_footprint_under_pressure(self):
        cache = ModifiedLRUCache(64 * 64, 4, 64, quotas={2: 8})
        import random

        rng = random.Random(3)
        for _ in range(5000):
            cache.access_block(rng.randrange(1000), asid=1)
            cache.access_block(2000 + rng.randrange(1000), asid=2)
        # asid 2 can transiently exceed by one per set but stays near quota
        assert cache.resident_lines(2) <= 8 + cache.num_sets


class TestColumnCache:
    def make(self, columns=None, size=1024, assoc=4):
        return ColumnCache(size, assoc, 64, columns=columns)

    def test_placement_restricted_to_columns(self):
        cache = self.make(columns={1: (0,)})
        sets = cache.num_sets
        cache.access_block(0 * sets, asid=1)
        result = cache.access_block(1 * sets, asid=1)
        # only one permitted column: the second fill evicts the first
        assert result.evicted_block == 0 * sets

    def test_unrestricted_app_uses_all_ways(self):
        cache = self.make(columns={1: (0,)})
        sets = cache.num_sets
        for i in range(4):
            assert cache.access_block(i * sets, asid=2).evicted_block is None

    def test_lookup_searches_all_ways(self):
        cache = self.make(columns={1: (0,), 2: (1, 2, 3)})
        sets = cache.num_sets
        cache.access_block(0, asid=2)  # lands in a column 1-3
        # asid 1 can't *place* outside way 0 but still hits asid 2's line
        assert cache.access_block(0, asid=1).hit

    def test_columns_partition_conflict_misses(self):
        cache = self.make(columns={1: (0, 1), 2: (2, 3)})
        sets = cache.num_sets
        # each app loops over 2 conflicting blocks: both fit their columns
        for _ in range(10):
            for i in range(2):
                cache.access_block(i * sets, asid=1)
                cache.access_block((4 + i) * sets, asid=2)
        assert cache.stats.miss_rate(1) < 0.25
        assert cache.stats.miss_rate(2) < 0.25

    def test_isolation_under_thrash(self):
        # asid 2 thrashes its two columns; asid 1's two columns are safe
        cache = self.make(columns={1: (0, 1), 2: (2, 3)})
        sets = cache.num_sets
        cache.access_block(0, asid=1)
        for i in range(1, 40):
            cache.access_block(i * sets, asid=2)
        assert cache.access_block(0, asid=1).hit

    def test_assign_columns_validation(self):
        cache = self.make()
        with pytest.raises(ConfigError):
            cache.assign_columns(1, ())
        with pytest.raises(ConfigError):
            cache.assign_columns(1, (9,))

    def test_columns_of_default(self):
        cache = self.make()
        assert cache.columns_of(7) == (0, 1, 2, 3)

    def test_writeback_on_column_eviction(self):
        cache = self.make(columns={1: (0,)})
        sets = cache.num_sets
        cache.access_block(0, asid=1, write=True)
        assert cache.access_block(sets, asid=1).writeback
