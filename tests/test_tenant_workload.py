"""Tenant workload family: determinism, decomposition, trace shape.

The tenancy campaign regenerates each cell's trace inside a worker
process from ``(spec, seed)`` alone, so the byte-identity of a parallel
sweep rests on three properties pinned here:

* generation is deterministic in-process;
* epoch generation decomposes: ``generate_epoch`` slices equal the
  monolithic ``generate`` output;
* the trace is byte-identical *across process boundaries* (hash
  comparison through a subprocess), in the style of
  ``test_prop_workloads_power.py``'s determinism properties.
"""

from __future__ import annotations

import hashlib
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.workloads.model import APP_SPACE_BYTES
from repro.workloads.registry import available_families, get_family
from repro.workloads.tenants import (
    TENANT_SUITE,
    TenantWorkloadSpec,
    stream_seed,
    tenant_spec,
    zipf_cumulative,
)

specs = st.builds(
    TenantWorkloadSpec,
    name=st.just("prop"),
    tenants=st.integers(min_value=1, max_value=64),
    footprint_blocks=st.integers(min_value=4, max_value=512),
    key_skew=st.floats(min_value=0.0, max_value=1.2),
    tenant_skew=st.floats(min_value=0.0, max_value=1.2),
    churn=st.floats(min_value=0.0, max_value=0.9),
    idle_fraction=st.floats(min_value=0.0, max_value=0.9),
    burst=st.floats(min_value=0.0, max_value=0.9),
    burst_factor=st.floats(min_value=1.0, max_value=16.0),
    diurnal_phases=st.integers(min_value=0, max_value=4),
    epochs=st.integers(min_value=1, max_value=6),
    write_fraction=st.floats(min_value=0.0, max_value=1.0),
)


def trace_digest(trace) -> str:
    digest = hashlib.sha256()
    digest.update(trace.addresses.tobytes())
    digest.update(trace.asids.tobytes())
    digest.update(trace.writes.tobytes())
    return digest.hexdigest()


class TestTenantTraceProperties:
    @given(spec=specs, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_generation_deterministic(self, spec, seed):
        assert spec.generate(400, seed=seed) == spec.generate(400, seed=seed)

    @given(spec=specs, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_trace_shape(self, spec, seed):
        trace = spec.generate(500, seed=seed)
        assert len(trace) == 500
        assert (trace.addresses % 64 == 0).all()
        asids = set(trace.asids.tolist())
        assert asids <= set(range(spec.tenants))
        # Every address sits inside its tenant's address space.
        assert (
            trace.addresses // APP_SPACE_BYTES == trace.asids
        ).all()

    @given(spec=specs, seed=st.integers(min_value=0, max_value=2**14))
    @settings(max_examples=20, deadline=None)
    def test_epoch_decomposition(self, spec, seed):
        n_refs = 600
        whole = spec.generate(n_refs, seed=seed)
        for epoch in range(spec.epochs):
            start, end = spec.epoch_bounds(n_refs)[epoch]
            piece = spec.generate_epoch(n_refs, seed, epoch)
            assert piece == whole[start:end]

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        stream=st.integers(min_value=0, max_value=16),
        epoch=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_stream_seeds_distinct_axes(self, seed, stream, epoch):
        base = stream_seed(seed, stream, epoch)
        assert base == stream_seed(seed, stream, epoch)
        assert base != stream_seed(seed + 1, stream, epoch)
        assert base != stream_seed(seed, stream + 1, epoch)
        assert base != stream_seed(seed, stream, epoch + 1)


class TestZipf:
    def test_cumulative_shape(self):
        cumulative = zipf_cumulative(100, 0.9)
        assert len(cumulative) == 100
        assert cumulative[-1] == pytest.approx(1.0)
        # Skewed: the head of the popularity ranking dominates.
        assert cumulative[9] > 0.5

    def test_zero_skew_is_uniform(self):
        cumulative = zipf_cumulative(10, 0.0)
        assert cumulative[0] == pytest.approx(0.1)
        assert cumulative[4] == pytest.approx(0.5)


class TestCrossProcessDeterminism:
    def test_trace_byte_identical_across_processes(self, tmp_path):
        """Same spec + seed hashes identically in a fresh interpreter."""
        spec = tenant_spec("tenants-churn")
        local = trace_digest(spec.generate(5_000, seed=99))
        script = (
            "import hashlib\n"
            "from repro.workloads.tenants import tenant_spec\n"
            "t = tenant_spec('tenants-churn').generate(5_000, seed=99)\n"
            "d = hashlib.sha256()\n"
            "d.update(t.addresses.tobytes())\n"
            "d.update(t.asids.tobytes())\n"
            "d.update(t.writes.tobytes())\n"
            "print(d.hexdigest())\n"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert remote == local


class TestSpecValidation:
    def test_rejects_bad_tenants(self):
        with pytest.raises(ConfigError):
            TenantWorkloadSpec(name="bad", tenants=0)

    def test_rejects_bad_churn(self):
        with pytest.raises(ConfigError):
            TenantWorkloadSpec(name="bad", tenants=2, churn=1.5)

    def test_presets_resolve(self):
        for name in TENANT_SUITE:
            spec = tenant_spec(name)
            assert spec.tenants >= 1

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            tenant_spec("nope")


class TestRegistryFamilies:
    def test_families_listed(self):
        names = [family.name for family in available_families()]
        assert names == ["spec", "mixed", "tenants"]

    def test_tenant_family_members(self):
        family = get_family("tenants")
        assert family.kind == "tenant"
        assert family.members == TENANT_SUITE

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            get_family("nope")
