"""Smoke tests: every example script runs to completion (scaled down).

The examples are part of the public deliverable; these tests execute each
one in-process with reduced reference counts so a refactor that breaks an
example fails CI, without multi-minute runtimes.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, monkeypatch, capsys, **attrs) -> str:
    """Execute an example's main() with shrunken module-level constants."""
    path = EXAMPLES / name
    namespace = runpy.run_path(str(path), run_name="not_main")
    for key, value in attrs.items():
        if key in namespace:
            namespace[key] = value
    # re-bind the module-level constants the example's main() reads
    import types

    module = types.ModuleType("example_under_test")
    module.__dict__.update(namespace)
    for key, value in attrs.items():
        setattr(module, key, value)
    module.__dict__["main"].__globals__.update(
        {k: v for k, v in attrs.items() if k in module.__dict__["main"].__globals__}
    )
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example("quickstart.py", monkeypatch, capsys)
        assert "Final partition report" in out
        assert "resize events" in out

    def test_multiprogram_qos(self, monkeypatch, capsys):
        out = run_example(
            "multiprogram_qos.py", monkeypatch, capsys, REFS=40_000
        )
        assert "average deviation" in out
        assert "Partition sizes" in out

    def test_resize_policies(self, monkeypatch, capsys):
        out = run_example(
            "resize_policies.py", monkeypatch, capsys, REFS=75_000, WINDOW=25_000
        )
        assert "Phase change" in out
        assert "constant" in out and "global_adaptive" in out

    def test_power_study(self, monkeypatch, capsys):
        out = run_example("power_study.py", monkeypatch, capsys)
        assert "Traditional 4-ported caches" in out
        assert "worst-case power" in out

    def test_full_platform(self, monkeypatch, capsys):
        out = run_example(
            "full_platform.py", monkeypatch, capsys, REFS=25_000
        )
        assert "Molecular L2 partitions" in out
        assert "Throughput change" in out
