"""Integration: the partitioned baselines drop into the CMP runner."""

import pytest

from repro.caches.partitioned import ColumnCache, ModifiedLRUCache
from repro.sim.cmp import CMPRunConfig, CMPRunner
from repro.workloads import BenchmarkModel, RingComponent

HOG = BenchmarkModel(
    name="hog", components=(RingComponent(1.0, 30_000, run_length=1),)
)
LIGHT = BenchmarkModel(
    name="light",
    components=(
        RingComponent(0.97, 1_000, run_length=4),
        RingComponent(0.03, 1 << 21, run_length=1),
    ),
)


def run(cache, refs=60_000):
    traces = {
        0: LIGHT.generate(refs, seed=2, asid=0),
        1: HOG.generate(refs, seed=2, asid=1),
    }
    runner = CMPRunner(cache, CMPRunConfig(miss_penalty=10, warmup_refs=refs // 2))
    return runner.run(traces)


class TestRunnerIntegration:
    def test_modified_lru_quota_protects_light_app(self):
        unprotected = run(ModifiedLRUCache(256 * 1024, 8))
        protected = run(
            ModifiedLRUCache(256 * 1024, 8, quotas={1: 1024})  # hog capped at 25%
        )
        assert protected.miss_rate(0) <= unprotected.miss_rate(0) + 0.02
        # the hog's quota binds: it holds no more than ~a quarter of lines

    def test_modified_lru_quota_binds(self):
        cache = ModifiedLRUCache(256 * 1024, 8, quotas={1: 1024})
        run(cache)
        # Quota enforcement is approximate (as in Suh et al.): an
        # over-quota process with no own line in the victim's set falls
        # back to global replacement, so occupancy can drift above the
        # quota — but far below the unconstrained share.
        assert cache.resident_lines(1) <= 2 * 1024
        unconstrained = ModifiedLRUCache(256 * 1024, 8)
        run(unconstrained)
        assert cache.resident_lines(1) < unconstrained.resident_lines(1)

    def test_column_cache_isolates_light_app(self):
        cache = ColumnCache(
            256 * 1024, 8, columns={0: (0, 1, 2, 3), 1: (4, 5, 6, 7)}
        )
        result = run(cache)
        # the light app's 1000-block hot set fits its 128KB column share
        assert result.miss_rate(0) < 0.10
        assert result.miss_rate(1) > 0.5  # the hog thrashes its own columns

    def test_per_asid_stats_available(self):
        cache = ColumnCache(256 * 1024, 8)
        run(cache)
        assert set(cache.stats.per_asid) == {0, 1}
        assert cache.occupancy() <= 4096
