"""Tests for the telemetry subsystem (events, bus, sinks, replay, CLI)."""

import json

import pytest

from repro.cli import main
from repro.common.errors import ConfigError
from repro.common.rng import XorShift64
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.sim.cmp import CMPRunConfig, CMPRunner
from repro.sim.driver import run_trace
from repro.telemetry import (
    AccessSampled,
    EpochRollover,
    EventBus,
    JsonlSink,
    MetricsTimeline,
    MoleculeGranted,
    MoleculeWithdrawn,
    RemoteSearch,
    ResizeDecision,
    RingBufferSink,
    RunMeta,
    event_from_dict,
    load_report,
    read_events,
    replay_events,
)
from repro.trace.container import Trace


def make_cache(goal=0.1, period=2_000, seed=7):
    config = MolecularCacheConfig.for_total_size(
        1 << 20, clusters=1, tiles_per_cluster=4, strict=False
    )
    cache = MolecularCache(
        config,
        resize_policy=ResizePolicy(period=period),
        rng=XorShift64(seed),
    )
    cache.assign_application(0, goal=goal, tile_id=0)
    return cache


def drive(cache, n_refs, span=1 << 12, seed=3):
    rng = XorShift64(seed)
    for _ in range(n_refs):
        cache.access_block(rng.randrange(span), 0)


class TestDisabledPath:
    def test_telemetry_off_by_default(self):
        assert make_cache().telemetry is None

    def test_disabled_run_matches_recorded_run(self):
        """Telemetry must observe, never perturb, the simulation."""
        plain = make_cache()
        drive(plain, 5_000)

        recorded = make_cache()
        sink = RingBufferSink(capacity=100_000)
        recorded.attach_telemetry(EventBus([sink], epoch_refs=500))
        drive(recorded, 5_000)

        assert plain.stats.as_dict() == recorded.stats.as_dict()
        assert plain.partition_sizes() == recorded.partition_sizes()
        assert len(sink) > 0

    def test_detach_stops_emission(self):
        cache = make_cache()
        sink = RingBufferSink()
        bus = cache.attach_telemetry(EventBus([sink], epoch_refs=100))
        drive(cache, 150)
        emitted = bus.events_emitted
        assert emitted > 0
        assert cache.detach_telemetry() is bus
        drive(cache, 500)
        assert bus.events_emitted == emitted
        assert cache.telemetry is None

    def test_reattach_same_bus_is_idempotent(self):
        cache = make_cache()
        bus = EventBus([RingBufferSink()])
        cache.attach_telemetry(bus)
        cache.attach_telemetry(bus)
        metas = [e for e in bus.sinks[0] if isinstance(e, RunMeta)]
        assert len(metas) == 1


class TestRingBuffer:
    def test_eviction_order(self):
        sink = RingBufferSink(capacity=3)
        events = [
            AccessSampled(seq=i, asid=0, block=i, hit=False, write=False,
                          local_probes=1, remote_probes=0)
            for i in range(5)
        ]
        for event in events:
            sink.emit(event)
        assert sink.events() == events[2:]  # oldest evicted first
        assert sink.dropped == 2
        assert len(sink) == 3

    def test_clear(self):
        sink = RingBufferSink(capacity=2)
        sink.emit(RemoteSearch(seq=1, asid=0, tiles_searched=1,
                               molecules_probed=2, found=True))
        sink.clear()
        assert len(sink) == 0 and sink.dropped == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            RingBufferSink(capacity=0)


class TestEventSerialisation:
    EVENTS = [
        RunMeta(total_bytes=1 << 20, clusters=1, tiles=4,
                molecules_per_tile=32, lines_per_molecule=128,
                regions={0: {"goal": 0.1, "home_tile": 0,
                             "molecules": 16, "line_multiplier": 1}}),
        AccessSampled(seq=10, asid=0, block=99, hit=True, write=False,
                      local_probes=4, remote_probes=0),
        RemoteSearch(seq=11, asid=2, tiles_searched=3, molecules_probed=40,
                     found=False),
        ResizeDecision(accesses=25_000, asid=1, action="grow", amount=8,
                       window_miss_rate=0.42, molecules=24, period=25_000),
        MoleculeGranted(accesses=25_000, asid=1, count=8, tiles=[0, 1],
                        molecules=24),
        MoleculeWithdrawn(accesses=50_000, asid=1, count=3, writebacks=7,
                          molecules=21),
        EpochRollover(epoch=2, seq=20_000, mean_molecules_probed=17.5,
                      free_molecules=64,
                      regions={1: {"accesses": 9_000, "miss_rate": 0.2,
                                   "molecules": 24, "occupancy": 0.8,
                                   "goal": 0.1, "hpm": 0.033}}),
    ]

    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: e.kind)
    def test_json_round_trip(self, event):
        payload = json.loads(json.dumps(event.as_dict()))
        assert event_from_dict(payload) == event

    def test_unknown_kind_skipped(self):
        assert event_from_dict({"kind": "from_the_future", "x": 1}) is None

    def test_int_region_keys_restored(self):
        payload = json.loads(json.dumps(self.EVENTS[-1].as_dict()))
        rebuilt = event_from_dict(payload)
        assert list(rebuilt.regions) == [1]


class TestEpochBoundaries:
    def test_rollover_every_epoch_refs(self):
        cache = make_cache()
        timeline = MetricsTimeline()
        bus = cache.attach_telemetry(EventBus([timeline], epoch_refs=100))
        drive(cache, 250)
        assert [e.seq for e in timeline.epochs] == [100, 200]
        bus.flush_epoch()
        assert [e.seq for e in timeline.epochs] == [100, 200, 250]
        bus.flush_epoch()  # nothing new to flush
        assert len(timeline) == 3
        assert [e.epoch for e in timeline.epochs] == [1, 2, 3]

    def test_epoch_metrics_are_epoch_local(self):
        cache = make_cache()
        timeline = MetricsTimeline()
        cache.attach_telemetry(EventBus([timeline], epoch_refs=100))
        for _ in range(200):  # one distinct block: 1 cold miss, then hits
            cache.access_block(0, 0)
        first, second = timeline.epochs
        assert first.regions[0]["accesses"] == 100
        assert first.regions[0]["miss_rate"] == pytest.approx(0.01)
        assert second.regions[0]["miss_rate"] == 0.0  # not cumulative
        assert second.regions[0]["molecules"] == cache.region_of(0).molecule_count
        assert 0.0 < second.regions[0]["occupancy"] <= 1.0
        assert second.regions[0]["hpm"] == pytest.approx(
            1.0 / second.regions[0]["molecules"]
        )

    def test_epoch_refs_zero_disables_rollover(self):
        cache = make_cache()
        timeline = MetricsTimeline()
        cache.attach_telemetry(EventBus([timeline], epoch_refs=0))
        drive(cache, 500)
        assert len(timeline) == 0

    def test_access_sampling_interval(self):
        cache = make_cache()
        sink = RingBufferSink(capacity=10_000)
        cache.attach_telemetry(
            EventBus([sink], epoch_refs=0, sample_interval=50)
        )
        drive(cache, 500)
        samples = [e for e in sink if isinstance(e, AccessSampled)]
        assert len(samples) == 10
        assert [s.seq for s in samples] == list(range(50, 501, 50))


class TestResizeEvents:
    def test_decisions_and_grants_recorded(self):
        cache = make_cache(goal=0.05, period=1_000)
        sink = RingBufferSink(capacity=100_000)
        cache.attach_telemetry(EventBus([sink], epoch_refs=0))
        drive(cache, 20_000, span=1 << 14)
        decisions = [e for e in sink if isinstance(e, ResizeDecision)]
        grants = [e for e in sink if isinstance(e, MoleculeGranted)]
        assert decisions, "expected Algorithm 1 to run"
        assert {d.action for d in decisions} <= {
            "grow", "withdraw", "grow-denied", "hold"
        }
        grown = [d for d in decisions if d.action == "grow"]
        assert len(grown) == len(grants)
        granted_total = sum(g.count for g in grants)
        assert granted_total == cache.stats.molecules_granted

    def test_withdrawals_recorded(self):
        # A lenient goal with a small-but-nonzero miss rate drives the
        # withdraw-sqrt branch (a zero miss rate rounds the step to 0).
        cache = make_cache(goal=0.9, period=1_000)
        sink = RingBufferSink(capacity=100_000)
        cache.attach_telemetry(EventBus([sink], epoch_refs=0))
        drive(cache, 10_000, span=1 << 12)
        withdrawals = [e for e in sink if isinstance(e, MoleculeWithdrawn)]
        assert withdrawals
        assert sum(w.count for w in withdrawals) == cache.stats.molecules_withdrawn

    def test_remote_search_events(self):
        cache = make_cache(goal=0.05, period=1_000)
        sink = RingBufferSink(capacity=200_000)
        cache.attach_telemetry(EventBus([sink], epoch_refs=0))
        drive(cache, 20_000, span=1 << 14)  # forces growth across tiles
        remotes = [e for e in sink if isinstance(e, RemoteSearch)]
        assert remotes, "a multi-tile region must search remotely"
        assert all(e.tiles_searched >= 1 for e in remotes)


class TestJsonlRoundTrip:
    def run_recorded(self, path, sample_interval=500):
        cache = make_cache(goal=0.05, period=1_000)
        timeline = MetricsTimeline()
        bus = EventBus(
            [JsonlSink(path), timeline],
            epoch_refs=1_000,
            sample_interval=sample_interval,
        )
        cache.attach_telemetry(bus)
        drive(cache, 10_000, span=1 << 14)
        bus.close()
        return cache, timeline

    def test_replay_equals_live(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _cache, live = self.run_recorded(path)
        replayed = replay_events(read_events(path))
        assert replayed.timeline.epochs == live.epochs
        assert replayed.meta is not None
        assert replayed.meta.regions[0]["goal"] == pytest.approx(0.05)

    def test_emit_after_close_rejected(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        with pytest.raises(ConfigError):
            sink.emit(RemoteSearch(seq=1, asid=0, tiles_searched=1,
                                   molecules_probed=1, found=True))

    def test_broken_line_reported_with_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"remote_search","seq":1,"asid":0,'
                        '"tiles_searched":1,"molecules_probed":1,'
                        '"found":true}\n{"kind": "trunc')
        with pytest.raises(ConfigError, match="bad.jsonl:2"):
            list(read_events(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="no telemetry recording"):
            list(read_events(tmp_path / "absent.jsonl"))

    def test_unwritable_record_path_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot record telemetry"):
            JsonlSink(tmp_path / "missing-dir" / "events.jsonl")

    def test_inspect_cli_renders_report(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        self.run_recorded(path)
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Resize timeline" in out
        assert "Per-region miss rate by epoch" in out
        assert "Per-region occupancy by epoch" in out
        assert "hits-per-molecule" in out
        assert "Per-region summary" in out

    def test_inspect_cli_missing_file_errors(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "none.jsonl")]) == 2
        assert "error" in capsys.readouterr().err


class TestLeaseRendering:
    """``repro inspect`` on a distributed drain's lease events."""

    @staticmethod
    def _events():
        from repro.telemetry.events import (
            JobQuarantined,
            LeaseAcquired,
            LeaseExpired,
        )

        return [
            LeaseAcquired(campaign="t", job="a" * 64, owner="w0", token=1,
                          reclaimed=False, at=100.0),
            LeaseExpired(campaign="t", job="a" * 64, owner="w0", token=1,
                         age=12.5, by="w1", at=115.0),
            LeaseAcquired(campaign="t", job="a" * 64, owner="w1", token=2,
                          reclaimed=True, at=115.0),
            JobQuarantined(campaign="t", job="b" * 64, attempts=3,
                           owners=["w0", "w1", "w0"], at=120.0),
        ]

    def test_lease_timeline_sorted_and_labelled(self):
        report = replay_events(self._events())
        table = report.lease_table()
        lines = table.splitlines()
        assert "Lease timeline" in lines[0]
        body = [line for line in lines if "aaaaaaaa" in line]
        assert len(body) == 3
        # Relative wall-clock ordering: acquire at 0, expiry at +15.
        assert body[0].startswith("0.00") and "acquire" in body[0]
        assert body[1].startswith("15.00") and "expired" in body[1]
        assert "stale 12.5s, noticed by w1" in body[1]
        assert "reclaim" in body[2]

    def test_quarantine_section_names_the_crash_loop(self):
        report = replay_events(self._events())
        section = report.quarantine_section()
        assert "Quarantined jobs" in section
        assert "w0, w1, w0" in section
        assert "degraded" in section

    def test_format_includes_lease_sections(self):
        out = replay_events(self._events()).format()
        assert "leases: 2 acquisition(s), 1 expir(y/ies), 1 job(s)" in out
        assert "Lease timeline" in out
        assert "Quarantined jobs" in out
        # A lease-only stream must not trip the no-epochs warning.
        assert "no epoch rollovers" not in out

    def test_inspect_cli_on_distributed_stream(self, tmp_path, capsys):
        path = tmp_path / "lease-events.jsonl"
        sink = JsonlSink(path)
        bus = EventBus([sink], epoch_refs=0)
        for event in self._events():
            bus.emit(event)
        bus.close()
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Lease timeline (distributed drain)" in out


class TestReportAnalysis:
    def test_oscillation_count(self):
        decisions = [
            ResizeDecision(accesses=i * 1_000, asid=0, action=action,
                           amount=1, window_miss_rate=0.1, molecules=8,
                           period=1_000)
            for i, action in enumerate(
                ["grow", "hold", "withdraw", "grow", "grow", "withdraw"]
            )
        ]
        report = replay_events(decisions)
        assert report.oscillations(0) == 3  # g->w, w->g, g->w (holds skipped)

    def test_time_to_goal(self):
        epochs = [
            EpochRollover(epoch=n, seq=n * 100, mean_molecules_probed=1.0,
                          free_molecules=0,
                          regions={0: {"accesses": 100, "miss_rate": rate,
                                       "molecules": 4, "occupancy": 0.5,
                                       "goal": 0.1, "hpm": 0.2}})
            for n, rate in ((1, 0.5), (2, 0.2), (3, 0.08), (4, 0.3))
        ]
        report = replay_events(epochs)
        assert report.timeline.time_to_goal(0) == 3
        assert report.timeline.peak(0, "miss_rate") == pytest.approx(0.5)
        assert report.timeline.mean(0, "occupancy") == pytest.approx(0.5)

    def test_unmanaged_region_has_no_time_to_goal(self):
        epoch = EpochRollover(epoch=1, seq=100, mean_molecules_probed=1.0,
                              free_molecules=0,
                              regions={0: {"accesses": 100, "miss_rate": 0.0,
                                           "molecules": 4, "occupancy": 0.5,
                                           "goal": None, "hpm": 0.25}})
        assert replay_events([epoch]).timeline.time_to_goal(0) is None


class TestDriverAndRunnerWiring:
    def test_run_trace_attaches_and_flushes(self):
        cache = make_cache()
        timeline = MetricsTimeline()
        bus = EventBus([timeline], epoch_refs=1_000)
        rng = XorShift64(5)
        addresses = [rng.randrange(1 << 18) for _ in range(2_500)]
        run_trace(cache, Trace(addresses), telemetry=bus)
        assert cache.telemetry is bus
        assert len(timeline) == 3  # 2 full epochs + flushed tail
        assert timeline.epochs[-1].seq == 2_500

    def test_run_trace_ignores_bus_on_traditional_cache(self):
        from repro.caches.setassoc import SetAssociativeCache

        cache = SetAssociativeCache(4096, 2)
        stats = run_trace(cache, Trace([0, 64]), telemetry=EventBus())
        assert stats.total.accesses == 2

    def test_cmp_runner_records(self):
        cache = make_cache()
        cache.assign_application(1, goal=0.1, tile_id=1)
        timeline = MetricsTimeline()
        bus = EventBus([timeline], epoch_refs=1_000)
        runner = CMPRunner(
            cache, CMPRunConfig(warmup_refs=0), telemetry=bus
        )
        rng = XorShift64(9)
        traces = {
            asid: Trace([rng.randrange(1 << 18) for _ in range(3_000)],
                        asids=asid)
            for asid in (0, 1)
        }
        runner.run(traces)
        assert len(timeline) >= 3
        assert set(timeline.asids()) == {0, 1}

    def test_simulate_record_then_inspect(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        code = main([
            "simulate", "--size", "1MB", "--refs", "20000",
            "--workloads", "ammp,parser", "--tiles", "4",
            "--record", str(path), "--record-epoch", "2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert path.exists()
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Resize timeline" in out
        assert "Per-region miss rate by epoch" in out

    def test_simulate_record_warns_on_setassoc(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        code = main([
            "simulate", "--cache", "setassoc", "--size", "1MB",
            "--refs", "5000", "--workloads", "ammp",
            "--record", str(path),
        ])
        assert code == 0
        assert "not recording" in capsys.readouterr().err
        assert not path.exists()


class TestMolecularStatsDict:
    def test_as_dict_includes_all_counted_fields(self):
        cache = make_cache()
        drive(cache, 3_000, span=1 << 16)
        snapshot = cache.stats.as_dict()
        for key in (
            "writebacks_to_memory",
            "resize_compute_cycles",
            "latency_cycles",
            "mean_latency_cycles",
        ):
            assert key in snapshot, key
        assert snapshot["latency_cycles"] == cache.stats.latency_cycles
        assert snapshot["latency_cycles"] > 0
