"""Unit tests for the ring-mixture workload model."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.workloads.model import APP_SPACE_BYTES, BenchmarkModel, RingComponent


def simple_model(**kwargs) -> BenchmarkModel:
    defaults = dict(
        name="test",
        components=(
            RingComponent(weight=0.8, blocks=100, run_length=4),
            RingComponent(weight=0.2, blocks=10_000, run_length=1),
        ),
    )
    defaults.update(kwargs)
    return BenchmarkModel(**defaults)


class TestValidation:
    def test_rejects_empty_components(self):
        with pytest.raises(ConfigError):
            BenchmarkModel(name="x", components=())

    def test_rejects_bad_weight(self):
        with pytest.raises(ConfigError):
            RingComponent(weight=0.0, blocks=10)

    def test_rejects_bad_ring(self):
        with pytest.raises(ConfigError):
            RingComponent(weight=1.0, blocks=0)

    def test_rejects_bad_run_length(self):
        with pytest.raises(ConfigError):
            RingComponent(weight=1.0, blocks=10, run_length=0)

    def test_rejects_bad_write_fraction(self):
        with pytest.raises(ConfigError):
            simple_model(write_fraction=1.5)

    def test_rejects_zero_refs(self):
        with pytest.raises(ConfigError):
            simple_model().generate(0)


class TestGeneration:
    def test_deterministic(self):
        m = simple_model()
        a = m.generate(1000, seed=5, asid=1)
        b = m.generate(1000, seed=5, asid=1)
        assert a == b

    def test_seed_changes_trace(self):
        m = simple_model()
        assert m.generate(1000, seed=1) != m.generate(1000, seed=2)

    def test_length(self):
        assert len(simple_model().generate(12_345)) == 12_345

    def test_asid_labels_and_address_space(self):
        m = simple_model()
        trace = m.generate(100, asid=3)
        assert set(trace.asids.tolist()) == {3}
        assert (trace.addresses >= 3 * APP_SPACE_BYTES).all()
        assert (trace.addresses < 4 * APP_SPACE_BYTES).all()

    def test_addresses_line_aligned(self):
        trace = simple_model().generate(500, line_bytes=64)
        assert (trace.addresses % 64 == 0).all()

    def test_footprint_bounded_by_model(self):
        m = simple_model()
        trace = m.generate(20_000, seed=1)
        assert trace.footprint_blocks() <= m.footprint_blocks()

    def test_hot_ring_dominates(self):
        m = simple_model()
        trace = m.generate(50_000, seed=1)
        blocks = trace.blocks()
        base = (0 * APP_SPACE_BYTES) >> 6
        hot = ((blocks - base) < 4096).sum()  # first ring's padded range
        assert hot / len(blocks) > 0.7

    def test_write_fraction_approximate(self):
        m = simple_model(write_fraction=0.5)
        trace = m.generate(20_000, seed=2)
        assert 0.45 < trace.writes.mean() < 0.55

    def test_sequential_runs_present(self):
        m = BenchmarkModel(
            name="stream",
            components=(RingComponent(weight=1.0, blocks=10_000, run_length=16),),
        )
        blocks = m.generate(10_000, seed=3).blocks()
        deltas = np.diff(blocks)
        assert (deltas == 1).mean() > 0.8

    def test_pointer_chasing_has_no_runs(self):
        m = BenchmarkModel(
            name="chase",
            components=(RingComponent(weight=1.0, blocks=50_000, run_length=1),),
        )
        blocks = m.generate(10_000, seed=3).blocks()
        assert (np.diff(blocks) == 1).mean() < 0.01


class TestPhases:
    def test_drift_moves_working_set(self):
        m = BenchmarkModel(
            name="phased",
            components=(RingComponent(weight=1.0, blocks=100, drift=True),),
            phases=2,
        )
        trace = m.generate(10_000, seed=1)
        first = set(trace.blocks()[:4000].tolist())
        last = set(trace.blocks()[-4000:].tolist())
        assert not (first & last)

    def test_no_drift_keeps_working_set(self):
        m = BenchmarkModel(
            name="steady",
            components=(RingComponent(weight=1.0, blocks=100),),
            phases=2,
        )
        trace = m.generate(10_000, seed=1)
        first = set(trace.blocks()[:4000].tolist())
        last = set(trace.blocks()[-4000:].tolist())
        assert first & last

    def test_footprint_accounts_for_drift(self):
        drifting = BenchmarkModel(
            name="d",
            components=(RingComponent(weight=1.0, blocks=100, drift=True),),
            phases=4,
        )
        assert drifting.footprint_blocks() == 400


class TestAnalysis:
    def test_expected_miss_rate_zero_when_everything_fits(self):
        m = simple_model()
        assert m.expected_miss_rate(100 + 10_000) == pytest.approx(0.0)

    def test_expected_miss_rate_monotone_in_capacity(self):
        m = simple_model()
        rates = [m.expected_miss_rate(c) for c in (0, 50, 100, 1000, 10_100)]
        assert rates == sorted(rates, reverse=True)

    def test_expected_miss_rate_full_when_empty_cache(self):
        assert simple_model().expected_miss_rate(0) == pytest.approx(1.0)

    def test_scaled_resizes_rings(self):
        m = simple_model()
        doubled = m.scaled(2.0)
        assert doubled.components[0].blocks == 200
        assert doubled.name == m.name

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            simple_model().scaled(0)
