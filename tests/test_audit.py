"""Audit subsystem: invariant auditor, mutation self-tests, bug regressions.

The mutation tests are the auditor's own correctness proof: each seeds
one class of bookkeeping corruption into a healthy, driven cache and
asserts it is detected by *exactly* the invariant that owns that law —
no silence, no shotgun of unrelated violations.
"""

from __future__ import annotations

import pytest

from repro.audit.invariants import (
    AUDIT_ENV,
    AuditError,
    assert_invariants,
    audit_and_emit,
    audit_cache,
    resolve_cadence,
)
from repro.caches.line import CacheLine
from repro.caches.setassoc import SetAssociativeCache
from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import XorShift64
from repro.molecular.cache import SHARED_ASID, MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import RingBufferSink

PLACEMENTS = ("random", "randy", "lru_direct")
TRIGGERS = ("constant", "global_adaptive", "per_app_adaptive")


def build_cache(
    placement: str = "randy",
    trigger: str = "constant",
    shared: bool = False,
    multipliers: tuple[int, int] = (1, 1),
) -> MolecularCache:
    config = MolecularCacheConfig(
        molecule_bytes=512,
        line_bytes=64,
        molecules_per_tile=6,
        tiles_per_cluster=3,
        clusters=1,
        strict=False,
    )
    policy = ResizePolicy(
        period=200, trigger=trigger, min_window_refs=16, period_floor=50
    )
    cache = MolecularCache(
        config, policy, placement=placement, rng=XorShift64(11)
    )
    if shared:
        cache.create_shared_region(2, 2)
    cache.assign_application(
        0, goal=0.2, tile_id=0, line_multiplier=multipliers[0],
        initial_molecules=2,
    )
    cache.assign_application(
        1, goal=0.3, tile_id=1, line_multiplier=multipliers[1],
        initial_molecules=2,
    )
    if shared:
        cache.assign_shared_application(2, 2)
    return cache


def drive(cache: MolecularCache, count: int = 1500, seed: int = 5) -> None:
    rng = XorShift64(seed)
    asids = sorted(cache.regions)
    for index in range(count):
        asid = asids[index % len(asids)]
        block = 1 + asid * 100_000 + rng.randrange(220)
        cache.access_block(block, asid, rng.randrange(3) == 0)


def violation_slugs(cache, counters=None) -> set[str]:
    return {
        v.invariant for v in audit_cache(cache, counters=counters).violations
    }


# --------------------------------------------------------------- clean runs


class TestCleanAudits:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("trigger", TRIGGERS)
    def test_driven_cache_is_clean(self, placement, trigger):
        cache = build_cache(placement, trigger, shared=True, multipliers=(2, 4))
        drive(cache)
        outcome = assert_invariants(cache, counters=True)
        assert outcome.ok
        assert outcome.checks > 20
        assert outcome.accesses == cache.stats.total.accesses

    def test_clean_across_migration_and_forced_resize(self):
        cache = build_cache("lru_direct", "per_app_adaptive", shared=True)
        drive(cache, 600)
        cache.migrate_application(0, 1)
        drive(cache, 400, seed=9)
        cache.resizer.force_resize()
        drive(cache, 400, seed=13)
        assert assert_invariants(cache, counters=True).ok

    def test_fresh_cache_is_clean(self):
        assert assert_invariants(build_cache(), counters=True).ok

    def test_setassoc_is_clean(self):
        cache = SetAssociativeCache(1 << 14, 4)
        rng = XorShift64(3)
        for _ in range(2000):
            cache.access_block(rng.randrange(1 << 9), rng.randrange(2),
                               rng.randrange(4) == 0)
        assert assert_invariants(cache, counters=True).ok

    def test_warmup_reset_skips_cross_family_checks(self):
        cache = build_cache()
        drive(cache, 400)
        cache.stats.reset()
        drive(cache, 400, seed=7)
        # Auto-detect (counters=None) must notice the reset and stay clean;
        # forcing the cross-family checks must flag the mismatch.
        assert audit_cache(cache).ok
        assert "stats-conservation" in violation_slugs(cache, counters=True)


# ------------------------------------------------------- mutation self-test


class TestMutationsDetected:
    """Each corruption class is caught by exactly its own invariant."""

    def corrupted(self, mutate, count: int = 1500, **kwargs) -> set[str]:
        cache = build_cache(**kwargs)
        drive(cache, count)
        mutate(cache)
        return violation_slugs(cache, counters=True)

    def test_dropped_presence_entry(self):
        def mutate(cache):
            region = cache.regions[0]
            region.presence.pop(next(iter(region.presence)))

        assert self.corrupted(mutate) == {"presence-map"}

    def test_tile_index_off_by_one(self):
        def mutate(cache):
            region = cache.regions[0]
            region.molecules_by_tile[region.home_tile_id] += 1

        assert self.corrupted(mutate) == {"tile-index"}

    def test_stale_row_misses_length(self):
        def mutate(cache):
            cache.regions[0].row_misses.append(0)

        assert self.corrupted(mutate) == {"row-misses"}

    def test_molecule_count_drift(self):
        def mutate(cache):
            cache.regions[0]._molecule_count += 1

        assert self.corrupted(mutate) == {"tile-index"}

    def test_foreign_asid_molecule(self):
        def mutate(cache):
            next(cache.regions[0].molecules()).asid = 99

        assert self.corrupted(mutate) == {"asid-gating"}

    def test_free_molecule_holding_a_line(self):
        def mutate(cache):
            tile = cache.tile_of(2)
            free = [m for m in tile.molecules if m.is_free][0]
            free.lines[0] = 424242

        # Stop short of the first resize round so tile 2 keeps free
        # molecules to corrupt.
        assert self.corrupted(mutate, count=100) == {"free-list"}

    def test_shared_count_drift(self):
        def mutate(cache):
            cache.tile_of(2).shared_count += 1

        assert self.corrupted(mutate, shared=True) == {"shared-bookkeeping"}

    def test_leaked_touch_entry(self):
        def mutate(cache):
            cache.placement._touch.setdefault(0, {})[999_999] = 1

        assert self.corrupted(mutate, placement="lru_direct") == {
            "placement-recency"
        }

    def test_stats_drift(self):
        def mutate(cache):
            cache.stats.total.hits += 1

        assert self.corrupted(mutate) == {"stats-conservation"}

    def test_window_counter_overflow(self):
        def mutate(cache):
            region = cache.regions[0]
            region.window_accesses = region.total_accesses + 1

        assert self.corrupted(mutate) == {"region-counters"}

    def test_setassoc_mismatched_key(self):
        cache = SetAssociativeCache(1 << 13, 2)
        rng = XorShift64(3)
        for _ in range(500):
            cache.access_block(rng.randrange(1 << 8))
        target = next(s for s in cache.iter_sets() if s)
        block = next(iter(target))
        target[block] = CacheLine(block=block + 1, asid=0, dirty=False)
        slugs = {v.invariant for v in audit_cache(cache).violations}
        assert slugs == {"set-structure"}


# --------------------------------------------------------- regression: fixes


class TestSatelliteFixes:
    def shared_lru_cache(self) -> MolecularCache:
        config = MolecularCacheConfig(
            molecule_bytes=512, line_bytes=64, molecules_per_tile=6,
            tiles_per_cluster=2, clusters=1, strict=False,
        )
        cache = MolecularCache(
            config, ResizePolicy(period=10_000), placement="lru_direct",
            rng=XorShift64(7),
        )
        cache.create_shared_region(0, 2)
        cache.assign_application(0, goal=None, tile_id=0, initial_molecules=2)
        cache.assign_shared_application(1, 0)
        return cache

    def test_shared_hit_ages_the_shared_region(self):
        cache = self.shared_lru_cache()
        block = 77
        cache.access_block(block, 1)  # install into the shared region
        assert block in cache._shared_regions[0].presence
        cache.access_block(block, 0)  # asid 0's hit is served by it
        touches = cache.placement._touch
        assert block in touches.get(SHARED_ASID, {})
        assert block not in touches.get(0, {})
        assert assert_invariants(cache, counters=True).ok

    def test_touch_map_pruned_on_eviction(self):
        cache = build_cache("lru_direct")
        region = cache.regions[0]
        for block in range(1, 400):  # far beyond 2 molecules of capacity
            cache.access_block(block, 0)
            cache.access_block(block, 0)  # a hit stamps the touch map
        touches = cache.placement._touch[0]
        assert touches, "hits should have stamped timestamps"
        assert set(touches) <= set(region.presence)
        assert assert_invariants(cache, counters=True).ok

    def withdrawable_cache(self, placement: str) -> MolecularCache:
        config = MolecularCacheConfig(
            molecule_bytes=512, line_bytes=64, molecules_per_tile=6,
            tiles_per_cluster=3, clusters=1, strict=False,
        )
        policy = ResizePolicy(period=10_000, min_molecules=1)
        cache = MolecularCache(
            config, policy, placement=placement, rng=XorShift64(11)
        )
        cache.assign_application(0, goal=0.2, tile_id=0, initial_molecules=3)
        return cache

    def test_touch_map_pruned_on_withdrawal(self):
        cache = self.withdrawable_cache("lru_direct")
        region = cache.regions[0]
        for block in range(1, 60):
            cache.access_block(block, 0)
            cache.access_block(block, 0)
        before = region.molecule_count
        cache.resizer._withdraw(region, 1, cache.stats.total.accesses)
        assert region.molecule_count == before - 1
        assert set(cache.placement._touch[0]) <= set(region.presence)
        assert assert_invariants(cache, counters=True).ok

    def test_shared_rollback_reports_true_free_count(self):
        cache = build_cache()  # tiles of 6 molecules; tile 2 untouched
        with pytest.raises(ConfigError, match="only 6 free"):
            cache.create_shared_region(2, 7)
        # The partial grant was rolled back, not leaked.
        assert cache.tile_of(2).free_count == 6
        assert assert_invariants(cache, counters=True).ok

    def test_assign_fails_fast_on_empty_grant(self):
        config = MolecularCacheConfig(
            molecule_bytes=512, line_bytes=64, molecules_per_tile=4,
            tiles_per_cluster=1, clusters=1, strict=False,
        )
        cache = MolecularCache(config, ResizePolicy(), rng=XorShift64(1))
        cache.assign_application(0, initial_molecules=4)
        with pytest.raises(ConfigError, match="got none.*0 free"):
            cache.assign_application(1, tile_id=0)
        assert 1 not in cache.regions

    def test_withdrawal_flushes_are_accounted(self):
        cache = self.withdrawable_cache("randy")
        region = cache.regions[0]
        for block in range(1, 30):
            cache.access_block(block, 0, write=True)
        before = cache.stats.writebacks_to_memory
        cache.resizer._withdraw(region, 1, cache.stats.total.accesses)
        flushed = cache.stats.flush_writebacks
        assert flushed > 0
        assert cache.stats.writebacks_to_memory == before + flushed
        assert assert_invariants(cache, counters=True).ok


# ------------------------------------------------------------- API plumbing


class TestAuditApi:
    def test_assert_raises_audit_error_with_slug(self):
        cache = build_cache()
        drive(cache, 300)
        cache.regions[0].row_misses.append(0)
        with pytest.raises(AuditError, match=r"\[row-misses\]"):
            assert_invariants(cache)

    def test_audit_error_is_a_simulation_error(self):
        cache = build_cache()
        cache.regions[0].row_misses.append(0)
        with pytest.raises(SimulationError):
            cache.resizer.check_consistency()

    def test_check_consistency_still_passes_clean(self):
        cache = build_cache()
        drive(cache, 300)
        cache.resizer.check_consistency()

    def test_audit_rejects_unknown_cache(self):
        with pytest.raises(ConfigError, match="cannot audit"):
            audit_cache(object())

    def test_audit_and_emit_publishes_report(self):
        cache = build_cache()
        sink = RingBufferSink()
        cache.attach_telemetry(EventBus([sink], epoch_refs=0))
        drive(cache, 200)
        outcome = audit_and_emit(cache, counters=True)
        reports = [e for e in sink if e.kind == "audit_report"]
        assert len(reports) == 1
        assert reports[0].ok and reports[0].checks == outcome.checks

    def test_audit_and_emit_reports_failure_then_raises(self):
        cache = build_cache()
        sink = RingBufferSink()
        cache.attach_telemetry(EventBus([sink], epoch_refs=0))
        drive(cache, 200)
        cache.regions[0].row_misses.append(0)
        with pytest.raises(AuditError):
            audit_and_emit(cache, counters=True)
        report = [e for e in sink if e.kind == "audit_report"][-1]
        assert not report.ok
        assert any("row-misses" in v for v in report.violations)

    def test_resolve_cadence(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV, raising=False)
        assert resolve_cadence(None) == 0
        assert resolve_cadence(0) == 0
        assert resolve_cadence(123) == 123
        with pytest.raises(ConfigError):
            resolve_cadence(-1)
        monkeypatch.setenv(AUDIT_ENV, "2500")
        assert resolve_cadence(None) == 2500
        assert resolve_cadence(10) == 10  # explicit beats the environment
        monkeypatch.setenv(AUDIT_ENV, "junk")
        with pytest.raises(ConfigError):
            resolve_cadence(None)
        monkeypatch.setenv(AUDIT_ENV, "")
        assert resolve_cadence(None) == 0


# ------------------------------------------------------- driver integration


class TestDriverIntegration:
    def test_run_trace_audits_at_cadence(self, monkeypatch):
        import repro.sim.driver as driver

        calls = []
        real = driver.audit_and_emit
        monkeypatch.setattr(
            driver, "audit_and_emit",
            lambda cache, counters=None: calls.append(1) or real(cache),
        )
        from repro.trace.container import Trace

        cache = build_cache()
        addresses = [(1 + (i % 50)) * 64 for i in range(400)]
        driver.run_trace(cache, Trace(addresses), audit_every=100)
        # 4 chunk audits + 1 final audit.
        assert len(calls) == 5

    def test_run_trace_disabled_is_single_batch(self, monkeypatch):
        import repro.sim.driver as driver

        monkeypatch.delenv(AUDIT_ENV, raising=False)
        from repro.trace.container import Trace

        cache = build_cache()
        batches = []
        real = cache.access_many
        cache.access_many = lambda *a: batches.append(1) or real(*a)
        driver.run_trace(cache, Trace([64, 128, 192]))
        assert batches == [1]

    def test_run_trace_reads_environment(self, monkeypatch):
        import repro.sim.driver as driver

        calls = []
        monkeypatch.setattr(
            driver, "audit_and_emit",
            lambda cache, counters=None: calls.append(1),
        )
        monkeypatch.setenv(AUDIT_ENV, "50")
        from repro.trace.container import Trace

        cache = build_cache()
        driver.run_trace(cache, Trace([64] * 100))
        assert len(calls) == 3  # two chunks + final

    def test_cmp_runner_audits_at_cadence(self):
        from repro.sim.cmp import CMPRunConfig, CMPRunner
        from repro.trace.container import Trace

        cache = build_cache()
        traces = {
            0: Trace([(1 + (i % 40)) * 64 for i in range(300)], asids=0),
            1: Trace([(1 + (i % 40)) * 64 + (1 << 20) for i in range(300)],
                     asids=1),
        }
        runner = CMPRunner(
            cache, CMPRunConfig(warmup_refs=0, audit_every=100)
        )
        result = runner.run(traces)
        assert result.total_refs > 0  # audits did not derail the run

    def test_cmp_runner_surfaces_corruption(self):
        from repro.sim.cmp import CMPRunConfig, CMPRunner
        from repro.trace.container import Trace

        cache = build_cache()
        cache.regions[0].row_misses.append(0)
        runner = CMPRunner(cache, CMPRunConfig(warmup_refs=0, audit_every=10))
        with pytest.raises(AuditError):
            runner.run({0: Trace([i * 64 for i in range(100)], asids=0)})

    def test_cmp_config_rejects_negative_cadence(self):
        from repro.sim.cmp import CMPRunConfig

        with pytest.raises(ConfigError):
            CMPRunConfig(audit_every=-1)
