"""Benchmark ledger: schema validation, diffing and the regression gate.

The self-test the issue asks for lives here: two runs of the same
metric where the second is >= 20 % slower must be flagged as a
regression by ``diff_ledger`` and fail ``repro bench-report`` (exit 1),
while ``--soft`` demotes it to a report-only pass.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.common.errors import ConfigError
from repro.prof.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerEntry,
    diff_ledger,
    format_report,
    read_ledger,
    validate_entry,
    write_entry,
)


def entry(metric="sim_time", value=1.0, **kwargs) -> LedgerEntry:
    defaults = dict(
        unit="s", direction="lower", scale=1.0, sha="abc", timestamp=0.0
    )
    defaults.update(kwargs)
    return LedgerEntry(metric=metric, value=value, **defaults)


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = write_entry(
            tmp_path, "sim_time", 1.25, "s", extra={"refs": 1000}
        )
        payload = json.loads(path.read_text())
        assert payload["schema"] == LEDGER_SCHEMA_VERSION
        assert payload["metric"] == "sim_time"
        assert payload["value"] == 1.25
        assert payload["extra"] == {"refs": 1000}
        assert payload["sha"]  # git sha or "unknown", never empty
        assert payload["timestamp"] > 0
        entries = read_ledger(tmp_path)
        assert len(entries) == 1
        assert entries[0].value == 1.25

    def test_scale_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        path = write_entry(tmp_path, "sim_time", 1.0, "s")
        assert json.loads(path.read_text())["scale"] == 0.25

    def test_entries_sorted_by_timestamp(self, tmp_path):
        write_entry(tmp_path, "m", 2.0, "s", timestamp=200.0)
        write_entry(tmp_path, "m", 1.0, "s", timestamp=100.0)
        values = [e.value for e in read_ledger(tmp_path)]
        assert values == [1.0, 2.0]

    def test_missing_ledger_dir(self, tmp_path):
        with pytest.raises(ConfigError):
            read_ledger(tmp_path / "nope")

    def test_corrupt_entry_raises(self, tmp_path):
        write_entry(tmp_path, "m", 1.0, "s")
        (tmp_path / "broken__1.json").write_text("{not json")
        with pytest.raises(ConfigError):
            read_ledger(tmp_path)

    def test_bad_metric_slug_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            write_entry(tmp_path, "Bad Metric!", 1.0, "s")

    def test_bad_direction_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            write_entry(tmp_path, "m", 1.0, "s", direction="sideways")


class TestValidate:
    def test_rejects_wrong_schema(self):
        payload = entry().as_dict()
        payload["schema"] = 99
        with pytest.raises(ConfigError):
            validate_entry(payload)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("value", "fast"),
            ("value", True),
            ("unit", 7),
            ("scale", -1.0),
            ("sha", None),
            ("timestamp", "now"),
            ("extra", []),
        ],
    )
    def test_rejects_bad_fields(self, field, value):
        payload = entry().as_dict()
        payload[field] = value
        with pytest.raises(ConfigError):
            validate_entry(payload)


class TestDiff:
    def test_injected_slowdown_flagged(self):
        diffs = diff_ledger(
            [entry(value=1.0, timestamp=1.0), entry(value=1.25, timestamp=2.0)]
        )
        assert len(diffs) == 1
        assert diffs[0].regression
        assert diffs[0].change == pytest.approx(0.25)
        assert "worse" in diffs[0].describe()

    def test_improvement_not_flagged(self):
        diffs = diff_ledger(
            [entry(value=1.0, timestamp=1.0), entry(value=0.5, timestamp=2.0)]
        )
        assert not diffs[0].regression
        assert "better" in diffs[0].describe()

    def test_higher_is_better_direction(self):
        slower = diff_ledger(
            [
                entry("thru", 1000.0, direction="higher", timestamp=1.0),
                entry("thru", 700.0, direction="higher", timestamp=2.0),
            ]
        )
        assert slower[0].regression
        faster = diff_ledger(
            [
                entry("thru", 1000.0, direction="higher", timestamp=1.0),
                entry("thru", 1400.0, direction="higher", timestamp=2.0),
            ]
        )
        assert not faster[0].regression

    def test_within_threshold_is_quiet(self):
        diffs = diff_ledger(
            [entry(value=1.0, timestamp=1.0), entry(value=1.1, timestamp=2.0)]
        )
        assert not diffs[0].regression

    def test_different_scales_never_diffed(self):
        diffs = diff_ledger(
            [
                entry(value=1.0, scale=1.0, timestamp=1.0),
                entry(value=9.0, scale=0.1, timestamp=2.0),
            ]
        )
        assert diffs == []

    def test_latest_two_of_longer_history(self):
        diffs = diff_ledger(
            [
                entry(value=5.0, timestamp=1.0),
                entry(value=1.0, timestamp=2.0),
                entry(value=1.05, timestamp=3.0),
            ]
        )
        assert diffs[0].previous == 1.0
        assert diffs[0].latest == 1.05
        assert not diffs[0].regression

    def test_zero_previous(self):
        diffs = diff_ledger(
            [entry(value=0.0, timestamp=1.0), entry(value=1.0, timestamp=2.0)]
        )
        assert diffs[0].regression

    def test_bad_threshold(self):
        with pytest.raises(ConfigError):
            diff_ledger([], threshold=0.0)

    def test_format_report_states_verdict(self):
        text = format_report(
            diff_ledger(
                [entry(value=1.0, timestamp=1.0), entry(value=2.0, timestamp=2.0)]
            ),
            0.20,
        )
        assert "REGRESSION" in text
        assert format_report([], 0.20).startswith("bench-report: no metric")


class TestBenchReportCli:
    def write_pair(self, tmp_path, latest: float) -> str:
        ledger = tmp_path / "ledger"
        write_entry(ledger, "sim_time", 1.0, "s", timestamp=100.0)
        write_entry(ledger, "sim_time", latest, "s", timestamp=200.0)
        return str(ledger)

    def test_regression_fails(self, tmp_path, capsys):
        ledger = self.write_pair(tmp_path, 1.3)
        assert main(["bench-report", "--ledger", ledger]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_soft_mode_reports_but_passes(self, tmp_path, capsys):
        ledger = self.write_pair(tmp_path, 1.3)
        assert main(["bench-report", "--ledger", ledger, "--soft"]) == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_clean_ledger_passes(self, tmp_path, capsys):
        ledger = self.write_pair(tmp_path, 1.05)
        assert (
            main(["bench-report", "--ledger", ledger, "--validate"]) == 0
        )
        out = capsys.readouterr().out
        assert "ledger OK" in out
        assert "no regressions" in out

    def test_custom_threshold(self, tmp_path):
        ledger = self.write_pair(tmp_path, 1.1)
        assert main(["bench-report", "--ledger", ledger]) == 0
        assert (
            main(["bench-report", "--ledger", ledger, "--threshold", "0.05"])
            == 1
        )

    def test_missing_ledger_is_a_config_error(self, tmp_path, capsys):
        assert (
            main(["bench-report", "--ledger", str(tmp_path / "nope")]) == 2
        )
        assert "error:" in capsys.readouterr().err


class TestSingletonMetrics:
    """A metric with a single entry at its scale has nothing to diff —
    the report must say so explicitly instead of silently dropping it."""

    def test_single_entry_is_a_singleton(self):
        from repro.prof.ledger import singleton_metrics

        assert singleton_metrics([entry()]) == [("sim_time", 1.0)]

    def test_paired_entries_are_not(self):
        from repro.prof.ledger import singleton_metrics

        pair = [entry(timestamp=1.0), entry(timestamp=2.0)]
        assert singleton_metrics(pair) == []

    def test_same_metric_different_scales_both_singletons(self):
        from repro.prof.ledger import singleton_metrics

        entries = [entry(scale=1.0), entry(scale=4.0)]
        assert singleton_metrics(entries) == [
            ("sim_time", 1.0),
            ("sim_time", 4.0),
        ]

    def test_sorted_output(self):
        from repro.prof.ledger import singleton_metrics

        entries = [entry(metric="zz_last"), entry(metric="aa_first")]
        assert singleton_metrics(entries) == [
            ("aa_first", 1.0),
            ("zz_last", 1.0),
        ]

    def test_format_report_notices_singletons_without_diffs(self):
        text = format_report([], 0.20, singletons=[("new_metric", 1.0)])
        assert "nothing to diff" in text
        assert "first run, skipped: new_metric (scale 1)" in text

    def test_format_report_appends_singletons_after_diffs(self):
        diffs = diff_ledger(
            [entry(value=1.0, timestamp=1.0), entry(value=1.01, timestamp=2.0)]
        )
        text = format_report(diffs, 0.20, singletons=[("new_metric", 0.5)])
        assert "first run, skipped: new_metric (scale 0.5)" in text
        assert "no regressions" in text

    def test_cli_reports_singleton_alongside_pairs(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        write_entry(ledger, "sim_time", 1.0, "s", timestamp=100.0)
        write_entry(ledger, "sim_time", 1.02, "s", timestamp=200.0)
        write_entry(ledger, "fresh_metric", 3.0, "s", timestamp=300.0)
        assert main(["bench-report", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "first run, skipped: fresh_metric" in out

    def test_cli_singleton_only_ledger_passes(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        write_entry(ledger, "fresh_metric", 3.0, "s", timestamp=1.0)
        assert main(["bench-report", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "nothing to diff" in out
        assert "first run, skipped: fresh_metric" in out
