"""Unit tests for the columnar Trace container."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.types import Access, AccessType
from repro.trace.container import Trace


class TestConstruction:
    def test_scalar_broadcast(self):
        trace = Trace([0, 64, 128], asids=5, writes=True)
        assert len(trace) == 3
        assert set(trace.asids.tolist()) == {5}
        assert all(trace.writes)

    def test_per_reference_columns(self):
        trace = Trace([0, 64], asids=[1, 2], writes=[False, True])
        assert trace.asids.tolist() == [1, 2]
        assert trace.writes.tolist() == [False, True]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            Trace([0, 64], asids=[1])

    def test_multidimensional_rejected(self):
        with pytest.raises(ConfigError):
            Trace(np.zeros((2, 2)))


class TestAccessors:
    def test_iteration_yields_accesses(self):
        trace = Trace([0, 64], asids=[1, 2], writes=[False, True])
        records = list(trace)
        assert records == [
            Access(0, 1, AccessType.READ),
            Access(64, 2, AccessType.WRITE),
        ]

    def test_blocks(self):
        trace = Trace([0, 63, 64, 129])
        assert trace.blocks(64).tolist() == [0, 0, 1, 2]

    def test_blocks_rejects_bad_line(self):
        with pytest.raises(ConfigError):
            Trace([0]).blocks(48)

    def test_slicing_returns_trace(self):
        trace = Trace([0, 64, 128], asids=[1, 2, 3])
        head = trace[:2]
        assert isinstance(head, Trace)
        assert head.addresses.tolist() == [0, 64]
        assert head.asids.tolist() == [1, 2]

    def test_integer_index_rejected(self):
        with pytest.raises(ConfigError):
            Trace([0, 64])[0]

    def test_unique_asids(self):
        trace = Trace([0, 64, 128], asids=[3, 1, 3])
        assert trace.unique_asids() == [1, 3]

    def test_footprint(self):
        trace = Trace([0, 8, 64, 64, 128])
        assert trace.footprint_blocks(64) == 3


class TestTransforms:
    def test_with_asid(self):
        trace = Trace([0, 64], asids=[1, 2])
        relabelled = trace.with_asid(9)
        assert set(relabelled.asids.tolist()) == {9}
        assert trace.asids.tolist() == [1, 2]  # original untouched

    def test_offset(self):
        trace = Trace([0, 64])
        moved = trace.offset(1 << 20)
        assert moved.addresses.tolist() == [1 << 20, (1 << 20) + 64]

    def test_concatenate(self):
        a = Trace([0], asids=1)
        b = Trace([64], asids=2)
        merged = Trace.concatenate([a, b])
        assert merged.addresses.tolist() == [0, 64]
        assert merged.asids.tolist() == [1, 2]

    def test_concatenate_empty_list(self):
        assert len(Trace.concatenate([])) == 0

    def test_from_accesses_roundtrip(self):
        records = [Access(0, 1), Access(64, 2, AccessType.WRITE)]
        trace = Trace.from_accesses(records)
        assert list(trace) == records

    def test_equality(self):
        assert Trace([0, 64], asids=1) == Trace([0, 64], asids=1)
        assert Trace([0, 64]) != Trace([0, 128])


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace([0, 64, 128], asids=[1, 2, 3], writes=[True, False, True])
        path = tmp_path / "trace.npz"
        trace.save(path)
        assert Trace.load(path) == trace
