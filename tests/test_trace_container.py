"""Unit tests for the columnar Trace container."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.types import Access, AccessType
from repro.trace.container import Trace


class TestConstruction:
    def test_scalar_broadcast(self):
        trace = Trace([0, 64, 128], asids=5, writes=True)
        assert len(trace) == 3
        assert set(trace.asids.tolist()) == {5}
        assert all(trace.writes)

    def test_per_reference_columns(self):
        trace = Trace([0, 64], asids=[1, 2], writes=[False, True])
        assert trace.asids.tolist() == [1, 2]
        assert trace.writes.tolist() == [False, True]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            Trace([0, 64], asids=[1])

    def test_multidimensional_rejected(self):
        with pytest.raises(ConfigError):
            Trace(np.zeros((2, 2)))


class TestAccessors:
    def test_iteration_yields_accesses(self):
        trace = Trace([0, 64], asids=[1, 2], writes=[False, True])
        records = list(trace)
        assert records == [
            Access(0, 1, AccessType.READ),
            Access(64, 2, AccessType.WRITE),
        ]

    def test_blocks(self):
        trace = Trace([0, 63, 64, 129])
        assert trace.blocks(64).tolist() == [0, 0, 1, 2]

    def test_blocks_rejects_bad_line(self):
        with pytest.raises(ConfigError):
            Trace([0]).blocks(48)

    def test_slicing_returns_trace(self):
        trace = Trace([0, 64, 128], asids=[1, 2, 3])
        head = trace[:2]
        assert isinstance(head, Trace)
        assert head.addresses.tolist() == [0, 64]
        assert head.asids.tolist() == [1, 2]

    def test_integer_index_rejected(self):
        with pytest.raises(ConfigError):
            Trace([0, 64])[0]

    def test_unique_asids(self):
        trace = Trace([0, 64, 128], asids=[3, 1, 3])
        assert trace.unique_asids() == [1, 3]

    def test_footprint(self):
        trace = Trace([0, 8, 64, 64, 128])
        assert trace.footprint_blocks(64) == 3


class TestBlocksProperty:
    """Pin blocks() to integer division across every line size.

    The shift ``addresses >> (bit_length - 1)`` once read
    ``addresses >> bit_length - 1`` — correct only because Python parses
    shifts below subtraction. The property holds regardless of how the
    expression is grouped in future edits.
    """

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=(1 << 62) - 1),
            min_size=1,
            max_size=64,
        ),
        line_exp=st.integers(min_value=0, max_value=20),
    )
    def test_blocks_match_floor_division(self, addresses, line_exp):
        line_bytes = 1 << line_exp
        trace = Trace(addresses)
        expected = [address // line_bytes for address in addresses]
        assert trace.blocks(line_bytes).tolist() == expected

    def test_blocks_all_power_of_two_lines(self):
        addresses = [0, 1, 63, 64, 65, 4095, 4096, (1 << 40) + 17]
        trace = Trace(addresses)
        for exp in range(16):
            line_bytes = 1 << exp
            assert trace.blocks(line_bytes).tolist() == [
                address // line_bytes for address in addresses
            ]


class TestOffsetOverflow:
    def test_offset_overflow_raises(self):
        bounds = np.iinfo(np.int64)
        trace = Trace([0, bounds.max - 10])
        with pytest.raises(ConfigError):
            trace.offset(11)

    def test_offset_underflow_raises(self):
        bounds = np.iinfo(np.int64)
        trace = Trace([bounds.min + 5, 0])
        with pytest.raises(ConfigError):
            trace.offset(-6)

    def test_offset_base_beyond_int64_raises(self):
        trace = Trace([0, 64])
        with pytest.raises(ConfigError):
            trace.offset(1 << 64)
        with pytest.raises(ConfigError):
            trace.offset(-(1 << 64))

    def test_offset_at_the_boundary_is_exact(self):
        bounds = np.iinfo(np.int64)
        trace = Trace([0, 10])
        moved = trace.offset(bounds.max - 10)
        assert moved.addresses.tolist() == [bounds.max - 10, bounds.max]

    def test_offset_empty_trace_accepts_any_base(self):
        empty = Trace(np.empty(0, dtype=np.int64))
        bounds = np.iinfo(np.int64)
        assert len(empty.offset(bounds.max)) == 0


class TestTransforms:
    def test_with_asid(self):
        trace = Trace([0, 64], asids=[1, 2])
        relabelled = trace.with_asid(9)
        assert set(relabelled.asids.tolist()) == {9}
        assert trace.asids.tolist() == [1, 2]  # original untouched

    def test_offset(self):
        trace = Trace([0, 64])
        moved = trace.offset(1 << 20)
        assert moved.addresses.tolist() == [1 << 20, (1 << 20) + 64]

    def test_concatenate(self):
        a = Trace([0], asids=1)
        b = Trace([64], asids=2)
        merged = Trace.concatenate([a, b])
        assert merged.addresses.tolist() == [0, 64]
        assert merged.asids.tolist() == [1, 2]

    def test_concatenate_empty_list(self):
        assert len(Trace.concatenate([])) == 0

    def test_from_accesses_roundtrip(self):
        records = [Access(0, 1), Access(64, 2, AccessType.WRITE)]
        trace = Trace.from_accesses(records)
        assert list(trace) == records

    def test_equality(self):
        assert Trace([0, 64], asids=1) == Trace([0, 64], asids=1)
        assert Trace([0, 64]) != Trace([0, 128])


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace([0, 64, 128], asids=[1, 2, 3], writes=[True, False, True])
        path = tmp_path / "trace.npz"
        trace.save(path)
        assert Trace.load(path) == trace
