"""Unit/integration tests for the MolecularCache front end."""

import pytest

from repro.common.errors import ConfigError, UnknownASIDError
from repro.common.types import Access
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from tests.conftest import make_cache


class TestConfig:
    def test_table3_defaults(self):
        config = MolecularCacheConfig()
        assert config.total_bytes == 8 << 20
        assert config.tile_bytes == 512 * 1024
        assert config.molecules_per_tile == 64
        assert config.lines_per_molecule == 128
        summary = config.table3_summary()
        assert summary["molecule_size"] == 8 * 1024
        assert summary["tile_clusters"] == 4

    def test_strict_ranges_enforced(self):
        with pytest.raises(ConfigError):
            MolecularCacheConfig(molecule_bytes=1024)  # below 8KB
        with pytest.raises(ConfigError):
            MolecularCacheConfig(molecules_per_tile=8)  # below 32
        with pytest.raises(ConfigError):
            MolecularCacheConfig(tiles_per_cluster=2)  # below 4

    def test_strict_false_allows_small(self):
        config = MolecularCacheConfig(
            molecule_bytes=1024, molecules_per_tile=2, tiles_per_cluster=2,
            clusters=1, strict=False,
        )
        assert config.total_bytes == 4096

    def test_for_total_size(self):
        config = MolecularCacheConfig.for_total_size(
            1 << 20, clusters=1, tiles_per_cluster=4, strict=False
        )
        assert config.total_bytes == 1 << 20
        assert config.tile_bytes == 256 * 1024

    def test_for_total_size_rejects_indivisible(self):
        with pytest.raises(ConfigError):
            MolecularCacheConfig.for_total_size(
                (1 << 20) + 512, clusters=1, tiles_per_cluster=4
            )


class TestAssignment:
    def test_regions_get_distinct_tiles_round_robin(self, tiny_config):
        cache = make_cache(tiny_config)
        r0 = cache.assign_application(0)
        r1 = cache.assign_application(1)
        assert r0.home_tile_id != r1.home_tile_id

    def test_initial_allocation_half_tile_default(self, small_config):
        cache = MolecularCache(small_config, resize_policy=ResizePolicy())
        region = cache.assign_application(0)
        assert region.molecule_count == 8  # half of 16

    def test_explicit_initial_allocation(self, tiny_config):
        cache = make_cache(tiny_config)
        region = cache.assign_application(0, initial_molecules=3)
        assert region.molecule_count == 3

    def test_duplicate_asid_rejected(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0)
        with pytest.raises(ConfigError):
            cache.assign_application(0)

    def test_negative_asid_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            make_cache(tiny_config).assign_application(-1)

    def test_unknown_tile_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            make_cache(tiny_config).assign_application(0, tile_id=99)

    def test_line_multiplier_bounded(self, tiny_config):
        with pytest.raises(ConfigError):
            make_cache(tiny_config).assign_application(0, line_multiplier=32)

    def test_unknown_asid_access_rejected(self, tiny_config):
        with pytest.raises(UnknownASIDError):
            make_cache(tiny_config).access_block(0, asid=5)

    def test_region_of(self, tiny_config):
        cache = make_cache(tiny_config)
        region = cache.assign_application(4)
        assert cache.region_of(4) is region
        with pytest.raises(UnknownASIDError):
            cache.region_of(5)


class TestAccessPath:
    def test_miss_then_hit(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, initial_molecules=2)
        assert cache.access_block(5, 0).miss
        assert cache.access_block(5, 0).hit

    def test_access_by_address(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, initial_molecules=2)
        assert cache.access(Access(0x1000, 0)).miss
        assert cache.access(Access(0x1000 + 32, 0)).hit

    def test_isolation_between_regions(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, initial_molecules=2)
        cache.assign_application(1, initial_molecules=2)
        cache.access_block(5, 0)
        assert cache.access_block(5, 1).miss  # other region: own copy

    def test_local_probe_accounting(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0, initial_molecules=2)
        result = cache.access_block(5, 0)
        assert result.molecules_probed_local == 2
        assert result.molecules_probed_remote == 0
        assert cache.stats.asid_comparisons == tiny_config.molecules_per_tile

    def test_remote_probe_accounting(self, tiny_config):
        cache = make_cache(tiny_config)
        # Region spans both tiles: 4 in home tile 0, 2 in tile 1.
        cache.assign_application(0, tile_id=0, initial_molecules=6)
        region = cache.regions[0]
        assert region.molecules_by_tile == {0: 4, 1: 2}
        remote_molecule = next(
            m for m in region.molecules() if m.tile_id == 1
        )
        region.install(7, remote_molecule, 0, write=False)
        result = cache.access_block(7, 0)
        assert result.hit
        assert result.molecules_probed_local == 4
        assert result.molecules_probed_remote == 2
        ulmo = cache.clusters[0].ulmo
        assert ulmo.stats.tile_misses == 1
        assert ulmo.stats.remote_hits == 1

    def test_miss_probes_all_contributing_tiles(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0, initial_molecules=6)
        result = cache.access_block(12345, 0)
        assert result.miss
        assert result.molecules_probed_remote == 2

    def test_write_dirty_writeback_cycle(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, initial_molecules=1)
        lines = tiny_config.lines_per_molecule
        cache.access_block(0, 0, write=True)
        result = cache.access_block(lines, 0)  # aliases block 0
        assert result.writeback
        assert cache.stats.writebacks_to_memory == 1

    def test_eviction_updates_presence(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, initial_molecules=1)
        lines = tiny_config.lines_per_molecule
        cache.access_block(0, 0)
        cache.access_block(lines, 0)
        assert cache.access_block(0, 0).miss  # was evicted

    def test_stats_track_per_asid(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, initial_molecules=2)
        cache.assign_application(1, initial_molecules=2)
        cache.access_block(1, 0)
        cache.access_block(1, 0)
        cache.access_block(2, 1)
        assert cache.stats.miss_rate(0) == pytest.approx(0.5)
        assert cache.stats.miss_rate(1) == pytest.approx(1.0)


class TestReporting:
    def test_partition_sizes(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, initial_molecules=3)
        cache.assign_application(1, initial_molecules=2)
        assert cache.partition_sizes() == {0: 3, 1: 2}

    def test_free_molecules(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, initial_molecules=3)
        assert cache.free_molecules() == tiny_config.total_molecules - 3

    def test_occupancy_report(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, goal=0.2, initial_molecules=2)
        cache.access_block(1, 0)
        report = cache.occupancy_report()
        assert report["partitions"][0]["molecules"] == 2
        assert report["partitions"][0]["goal"] == 0.2
        assert report["free_molecules"] == tiny_config.total_molecules - 2


class TestPresenceMapEquivalence:
    def test_presence_matches_brute_force_after_traffic(self, small_config):
        cache = make_cache(small_config, placement="randy")
        cache.assign_application(0, initial_molecules=8)
        import random

        stream_rng = random.Random(3)
        stream = [stream_rng.randrange(4000) for _ in range(5000)]
        for block in stream:
            cache.access_block(block, 0)
        region = cache.regions[0]
        for block in list(region.presence)[:200]:
            assert region.lookup_by_probe(block) is region.presence[block]
        # and the reverse: anything a probe finds is in the map
        for molecule in region.molecules():
            for block in molecule.resident_blocks():
                assert region.presence.get(block) is molecule
