"""Unit tests for the set-associative replacement policies."""

from collections import OrderedDict

import pytest

from repro.caches.line import CacheLine
from repro.caches.replacement import (
    FIFOReplacement,
    LRUReplacement,
    RandomReplacement,
    make_replacement_policy,
)
from repro.common.errors import ConfigError
from repro.common.rng import XorShift64


def make_set(blocks) -> OrderedDict:
    return OrderedDict((b, CacheLine(block=b)) for b in blocks)


class TestLRU:
    def test_victim_is_oldest(self):
        cache_set = make_set([1, 2, 3])
        assert LRUReplacement().victim(cache_set) == 1

    def test_touch_refreshes(self):
        policy = LRUReplacement()
        cache_set = make_set([1, 2, 3])
        policy.touch(cache_set, 1)
        assert policy.victim(cache_set) == 2

    def test_full_recency_ordering(self):
        policy = LRUReplacement()
        cache_set = make_set([1, 2, 3, 4])
        for block in (3, 1, 4, 2):
            policy.touch(cache_set, block)
        assert list(cache_set) == [3, 1, 4, 2]


class TestFIFO:
    def test_victim_is_first_inserted(self):
        assert FIFOReplacement().victim(make_set([5, 6, 7])) == 5

    def test_touch_does_not_refresh(self):
        policy = FIFOReplacement()
        cache_set = make_set([5, 6, 7])
        policy.touch(cache_set, 5)
        assert policy.victim(cache_set) == 5


class TestRandom:
    def test_victim_is_member(self):
        policy = RandomReplacement(XorShift64(1))
        cache_set = make_set([1, 2, 3, 4])
        for _ in range(50):
            assert policy.victim(cache_set) in cache_set

    def test_covers_all_members(self):
        policy = RandomReplacement(XorShift64(2))
        cache_set = make_set([1, 2, 3, 4])
        victims = {policy.victim(cache_set) for _ in range(200)}
        assert victims == {1, 2, 3, 4}

    def test_deterministic_with_seed(self):
        cache_set = make_set([1, 2, 3, 4])
        a = [RandomReplacement(XorShift64(3)).victim(cache_set) for _ in range(5)]
        b = [RandomReplacement(XorShift64(3)).victim(cache_set) for _ in range(5)]
        # note: fresh policy each call; streams must match pairwise
        assert a == b


class TestFactory:
    def test_builds_each(self):
        assert make_replacement_policy("lru").name == "lru"
        assert make_replacement_policy("FIFO").name == "fifo"
        assert make_replacement_policy("random").name == "random"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_replacement_policy("plru")
