"""Tests for the campaign subsystem: specs, store, runner, registry.

The heavyweight guarantees — resume after a mid-campaign crash and
serial-vs-parallel byte equality — run at tiny scale (``REPRO_SCALE``
pinned small) so the suite stays fast; the full-scale equivalents live
in ``benchmarks/test_perf_campaign.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    JobSpec,
    ResultStore,
    execute_spec,
    expand_grid,
    experiment_names,
    get_experiment,
)
from repro.common.errors import CampaignError, ConfigError
from repro.telemetry import EventBus, RingBufferSink
from repro.telemetry.events import (
    JobCompleted,
    JobRetried,
    JobStarted,
    JobSubmitted,
    event_from_dict,
)

#: Small but above the scaled() floor, so the numbers are real.
TINY_SCALE = "0.02"
TINY_REFS = 20_000


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", TINY_SCALE)


# ------------------------------------------------------------------- specs


class TestJobSpec:
    def test_hash_ignores_param_order(self):
        a = JobSpec.make("table1", "combo", {"x": 1, "y": [2, 3]}, seed=5)
        b = JobSpec.make("table1", "combo", {"y": [2, 3], "x": 1}, seed=5)
        assert a.content_hash() == b.content_hash()

    def test_hash_covers_every_identity_field(self):
        base = JobSpec.make("table1", "combo", {"x": 1}, seed=1, scale=1.0)
        variants = [
            JobSpec.make("table2", "combo", {"x": 1}, seed=1, scale=1.0),
            JobSpec.make("table1", "cell", {"x": 1}, seed=1, scale=1.0),
            JobSpec.make("table1", "combo", {"x": 2}, seed=1, scale=1.0),
            JobSpec.make("table1", "combo", {"x": 1}, seed=2, scale=1.0),
            JobSpec.make("table1", "combo", {"x": 1}, seed=1, scale=0.5),
        ]
        hashes = {spec.content_hash() for spec in variants}
        assert base.content_hash() not in hashes
        assert len(hashes) == len(variants)

    def test_captures_current_scale(self):
        spec = JobSpec.make("table1", "combo", {})
        assert spec.scale == pytest.approx(float(TINY_SCALE))

    def test_payload_round_trip(self):
        spec = JobSpec.make(
            "figure5", "cell", {"size_mb": 4, "kind": "molecular"}, seed=9
        )
        clone = JobSpec.from_payload(
            json.loads(json.dumps(spec.as_payload()))
        )
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_rejects_unserialisable_params(self):
        with pytest.raises(ConfigError):
            JobSpec.make("table1", "combo", {"bad": object()})

    def test_expand_grid_order_and_count(self):
        specs = expand_grid(
            "figure5",
            "cell",
            {"size_mb": [1, 2], "assoc": [4, 8]},
            base={"graph": "A"},
        )
        assert len(specs) == 4
        first = specs[0].params_dict
        assert first == {"graph": "A", "size_mb": 1, "assoc": 4}
        # last axis varies fastest, like a nested for loop
        assert [s.params_dict["assoc"] for s in specs] == [4, 8, 4, 8]
        assert [s.params_dict["size_mb"] for s in specs] == [1, 1, 2, 2]

    def test_expand_grid_rejects_empty(self):
        with pytest.raises(ConfigError):
            expand_grid("table1", "combo", {})


# ------------------------------------------------------------------- store


class TestResultStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = JobSpec.make("table1", "combo", {"x": 1})
        job_hash = store.save(spec, {"rates": {"art": 0.5}}, 1.25, attempts=2)
        assert store.has(job_hash)
        record = store.load(job_hash)
        assert record["result"] == {"rates": {"art": 0.5}}
        assert record["attempts"] == 2
        assert record["spec"]["experiment"] == "table1"

    def test_no_partial_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = JobSpec.make("table1", "combo", {})
        store.save(spec, {"ok": True}, 0.0, 1)
        leftovers = [p for p in store.results_dir.iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []

    def test_completed_subset(self, tmp_path):
        store = ResultStore(tmp_path)
        done = JobSpec.make("table1", "combo", {"i": 1})
        missing = JobSpec.make("table1", "combo", {"i": 2})
        store.save(done, {}, 0.0, 1)
        hashes = [done.content_hash(), missing.content_hash()]
        assert store.completed(hashes) == {done.content_hash()}

    def test_manifest_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.read_manifest() is None
        specs = [JobSpec.make("table1", "combo", {"i": i}) for i in range(3)]
        store.write_manifest("table1", specs, {"graph": "A"})
        manifest = store.read_manifest()
        assert manifest["campaign"] == "table1"
        assert [j["hash"] for j in manifest["jobs"]] == [
            s.content_hash() for s in specs
        ]

    def test_corrupt_result_is_reported(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = JobSpec.make("table1", "combo", {})
        job_hash = store.save(spec, {}, 0.0, 1)
        (store.results_dir / f"{job_hash}.json").write_text("{not json")
        with pytest.raises(ConfigError, match="corrupt"):
            store.load(job_hash)

    def test_corrupt_result_is_quarantined_and_job_incomplete(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = JobSpec.make("table1", "combo", {})
        job_hash = store.save(spec, {}, 0.0, 1)
        path = store.results_dir / f"{job_hash}.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="quarantined"):
            store.load(job_hash)
        # The bad file was moved aside, not deleted (forensics), and the
        # job now counts as incomplete so a resume re-runs it.
        assert not path.exists()
        assert (store.results_dir / f"{job_hash}.json.corrupt").exists()
        assert not store.has(job_hash)
        assert store.completed([job_hash]) == set()

    def test_completed_single_scandir_matches_per_hash_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [JobSpec.make("table1", "combo", {"i": i}) for i in range(6)]
        for spec in specs[:4]:
            store.save(spec, {}, 0.0, 1)
        hashes = [s.content_hash() for s in specs]
        assert store.completed(hashes) == {
            h for h in hashes if store.has(h)
        }
        # Unknown hashes and an empty request behave sanely.
        assert store.completed(["deadbeef"]) == set()
        assert store.completed([]) == set()

    def test_completed_on_missing_results_dir(self, tmp_path):
        store = ResultStore(tmp_path)
        store.results_dir.rmdir()
        assert store.completed(["deadbeef"]) == set()

    def test_manifest_version_mismatch_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [JobSpec.make("table1", "combo", {})]
        store.write_manifest("table1", specs, {})
        manifest = json.loads(store.manifest_path.read_text())
        manifest["version"] = 99
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigError, match="version 99"):
            store.read_manifest()

    def test_manifest_missing_version_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        store.manifest_path.write_text('{"campaign": "x", "jobs": []}')
        with pytest.raises(ConfigError, match="incompatible"):
            store.read_manifest()


# ---------------------------------------------------------------- registry


class TestRegistry:
    def test_every_cli_experiment_is_registered(self):
        assert experiment_names() == [
            "table1", "table2", "table4", "table5", "figure5",
            "degradation", "figure6", "tenancy", "resize-mechanism",
        ]

    def test_defaults_match_the_old_cli_ladder(self):
        expected = {
            "table1": 500_000,
            "table2": 300_000,
            "table4": 150_000,
            "table5": 300_000,
            "figure5": 400_000,
            "degradation": 200_000,
            "figure6": 300_000,
            "tenancy": 60_000,
            "resize-mechanism": 60_000,
        }
        for name, refs in expected.items():
            assert get_experiment(name).default_refs == refs

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError, match="unknown experiment"):
            get_experiment("table9")

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigError, match="does not accept"):
            get_experiment("table1").jobs(refs=1000, graph="A")

    def test_non_positive_refs_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            get_experiment("table1").jobs(refs=-5)

    def test_table1_decomposes_into_eleven_combos(self):
        specs = get_experiment("table1").jobs(refs=TINY_REFS)
        assert len(specs) == 11  # 4 alone + 6 pairs + 1 quartet
        assert specs[0].params_dict["combo"] == ["art"]
        assert specs[-1].params_dict["combo"] == ["art", "mcf", "ammp", "parser"]

    def test_figure5_decomposes_into_design_size_cells(self):
        specs = get_experiment("figure5").jobs(refs=TINY_REFS, graph="B")
        assert len(specs) == 24  # 6 designs x 4 sizes
        assert all(s.params_dict["graph"] == "B" for s in specs)
        # series-major, sizes fastest — the serial loop's nesting
        assert [s.params_dict["size_mb"] for s in specs[:4]] == [1, 2, 4, 8]
        assert specs[0].params_dict["label"] == "Direct Mapped"
        assert specs[-1].params_dict["label"] == "Molecular (Randy)"

    def test_whole_experiment_target_gets_single_job(self):
        specs = get_experiment("table2").jobs(refs=TINY_REFS)
        assert len(specs) == 1
        assert specs[0].job == "whole"
        assert specs[0].params_dict == {"refs_per_app": TINY_REFS}


# ------------------------------------------------------------------ runner


def _run_table1_campaign(tmp_path, jobs: int, refs: int = 1000, **kwargs):
    """Run a tiny table1 campaign; returns (outcome, formatted text)."""
    target = get_experiment("table1")
    specs = target.jobs(refs=refs)
    runner = CampaignRunner(
        ResultStore(tmp_path),
        CampaignConfig(jobs=jobs, **kwargs.pop("config", {})),
        **kwargs,
    )
    outcome = runner.run(specs, campaign="table1")
    result = target.assemble_results(specs, outcome.results_in_order())
    return outcome, result.format()


class TestRunner:
    def test_serial_matches_direct_run(self, tmp_path):
        from repro.sim.experiments.table1 import run_table1

        _, campaign_text = _run_table1_campaign(tmp_path, jobs=1)
        assert campaign_text == run_table1(refs_per_app=1000).format()

    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        _, serial_text = _run_table1_campaign(tmp_path / "serial", jobs=1)
        parallel, parallel_text = _run_table1_campaign(
            tmp_path / "parallel", jobs=2
        )
        assert parallel.mode in ("pool", "serial-fallback")
        assert parallel_text == serial_text

    def test_identical_rerun_is_pure_cache_hit(self, tmp_path):
        first, text1 = _run_table1_campaign(tmp_path, jobs=1)
        second, text2 = _run_table1_campaign(tmp_path, jobs=1)
        assert first.executed == 11 and not first.cached
        assert second.executed == 0 and len(second.cached) == 11
        assert text1 == text2

    def test_corrupt_cached_result_reruns_on_resume(self, tmp_path):
        """A rotted cache entry demotes the job to pending, not a crash."""
        first, text1 = _run_table1_campaign(tmp_path, jobs=1)
        store = ResultStore(tmp_path)
        victim = sorted(store.results_dir.glob("*.json"))[0]
        victim.write_text("{torn write")
        rerun, text2 = _run_table1_campaign(tmp_path, jobs=1)
        assert rerun.executed == 1 and len(rerun.cached) == 10
        assert text2 == text1

    def test_resume_false_reruns_everything(self, tmp_path):
        _run_table1_campaign(tmp_path, jobs=1)
        rerun, _ = _run_table1_campaign(
            tmp_path, jobs=1, config={"resume": False}
        )
        assert rerun.executed == 11 and not rerun.cached

    def test_resume_after_injected_crash_runs_only_the_rest(
        self, tmp_path, monkeypatch
    ):
        """The acceptance scenario: kill after N jobs, restart, finish."""

        class Crash(RuntimeError):
            pass

        def kill_after_three(persisted: int) -> None:
            if persisted >= 3:
                raise Crash(f"injected crash after {persisted} jobs")

        target = get_experiment("table1")
        specs = target.jobs(refs=1000)
        store = ResultStore(tmp_path)
        runner = CampaignRunner(
            store, CampaignConfig(jobs=1), fault_hook=kill_after_three
        )
        with pytest.raises(Crash):
            runner.run(specs, campaign="table1")
        done = store.completed([s.content_hash() for s in specs])
        assert len(done) == 3  # durable progress survived the crash

        executed: list[str] = []
        import repro.campaign.runner as runner_mod

        original = runner_mod.execute_spec

        def counting(payload):
            executed.append(payload["params"].get("combo") and
                            "+".join(payload["params"]["combo"]))
            return original(payload)

        monkeypatch.setattr(runner_mod, "execute_spec", counting)
        resumed = CampaignRunner(store, CampaignConfig(jobs=1)).run(
            specs, campaign="table1"
        )
        assert len(executed) == len(specs) - 3  # only the unfinished jobs
        assert resumed.executed == len(specs) - 3
        assert len(resumed.cached) == 3

        # ...and the final result equals an uninterrupted run.
        resumed_text = target.assemble_results(
            specs, resumed.results_in_order()
        ).format()
        _, clean_text = _run_table1_campaign(tmp_path / "clean", jobs=1)
        assert resumed_text == clean_text

    def test_transient_failures_are_retried_with_bounded_budget(
        self, tmp_path, monkeypatch
    ):
        import repro.campaign.runner as runner_mod

        attempts: dict[str, int] = {}
        original = runner_mod.execute_spec

        def flaky(payload):
            key = json.dumps(payload["params"], sort_keys=True)
            attempts[key] = attempts.get(key, 0) + 1
            if attempts[key] == 1:
                raise OSError("simulated transient worker failure")
            return original(payload)

        monkeypatch.setattr(runner_mod, "execute_spec", flaky)
        outcome, _ = _run_table1_campaign(
            tmp_path, jobs=1, config={"retries": 2, "backoff": 0.0}
        )
        assert outcome.retried == 11  # each job failed once, then passed
        assert outcome.executed == 11

    def test_retries_exhausted_raise_campaign_error(
        self, tmp_path, monkeypatch
    ):
        import repro.campaign.runner as runner_mod

        def always_broken(payload):
            raise OSError("permanently broken")

        monkeypatch.setattr(runner_mod, "execute_spec", always_broken)
        with pytest.raises(CampaignError, match="failed after"):
            _run_table1_campaign(
                tmp_path, jobs=1, config={"retries": 1, "backoff": 0.0}
            )

    def test_config_errors_are_not_retried(self, tmp_path, monkeypatch):
        import repro.campaign.runner as runner_mod

        calls = {"n": 0}

        def misconfigured(payload):
            calls["n"] += 1
            raise ConfigError("deterministically bad")

        monkeypatch.setattr(runner_mod, "execute_spec", misconfigured)
        with pytest.raises(CampaignError, match="misconfigured"):
            _run_table1_campaign(tmp_path, jobs=1, config={"retries": 5})
        assert calls["n"] == 1

    def test_empty_spec_list_rejected(self, tmp_path):
        runner = CampaignRunner(ResultStore(tmp_path))
        with pytest.raises(ConfigError):
            runner.run([], campaign="empty")

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CampaignConfig(jobs=-1)
        with pytest.raises(ConfigError):
            CampaignConfig(timeout=0)
        with pytest.raises(ConfigError):
            CampaignConfig(retries=-1)
        assert CampaignConfig(jobs=0).jobs >= 1  # 0 = auto

    def test_execute_spec_pins_the_captured_scale(self, monkeypatch):
        """A whole-experiment job must run at its spec's scale even if the
        environment changed between decompose and execution."""
        spec = get_experiment("table2").jobs(refs=TINY_REFS)[0]
        assert spec.scale == pytest.approx(float(TINY_SCALE))
        monkeypatch.setenv("REPRO_SCALE", "777")  # would be minutes of work
        seen: dict[str, float] = {}

        import repro.campaign.registry as registry_mod

        def probe(inner_spec):
            from repro.sim.scale import scale_factor

            seen["scale"] = scale_factor()
            return {"formatted": "stub"}

        monkeypatch.setattr(registry_mod, "execute_job", probe)
        execute_spec(spec.as_payload())
        assert seen["scale"] == pytest.approx(float(TINY_SCALE))
        from repro.sim.scale import scale_factor

        assert scale_factor() == 777  # environment restored afterwards


# --------------------------------------------------------------- telemetry


class TestCampaignTelemetry:
    def test_lifecycle_events_flow_through_the_bus(self, tmp_path):
        sink = RingBufferSink()
        bus = EventBus([sink], epoch_refs=0)
        target = get_experiment("table1")
        specs = target.jobs(refs=1000)
        CampaignRunner(
            ResultStore(tmp_path), CampaignConfig(jobs=1), telemetry=bus
        ).run(specs, campaign="table1")
        events = sink.events()
        submitted = [e for e in events if isinstance(e, JobSubmitted)]
        started = [e for e in events if isinstance(e, JobStarted)]
        completed = [e for e in events if isinstance(e, JobCompleted)]
        assert len(submitted) == len(specs)
        assert len(started) == len(specs)
        assert len(completed) == len(specs)
        assert all(not e.cached for e in completed)
        assert {e.job for e in completed} == {
            s.content_hash() for s in specs
        }

        # resumed campaign: completions arrive flagged as cached
        sink.clear()
        CampaignRunner(
            ResultStore(tmp_path), CampaignConfig(jobs=1), telemetry=bus
        ).run(specs, campaign="table1")
        completed = [e for e in sink.events() if isinstance(e, JobCompleted)]
        assert len(completed) == len(specs)
        assert all(e.cached for e in completed)

    def test_retry_event_emitted(self, tmp_path, monkeypatch):
        import repro.campaign.runner as runner_mod

        original = runner_mod.execute_spec
        state = {"failed": False}

        def fail_once(payload):
            if not state["failed"]:
                state["failed"] = True
                raise OSError("flaky")
            return original(payload)

        monkeypatch.setattr(runner_mod, "execute_spec", fail_once)
        sink = RingBufferSink()
        bus = EventBus([sink], epoch_refs=0)
        _run_table1_campaign(
            tmp_path, jobs=1, telemetry=bus,
            config={"retries": 1, "backoff": 0.0},
        )
        retried = [e for e in sink.events() if isinstance(e, JobRetried)]
        assert len(retried) == 1
        assert retried[0].attempt == 2
        assert "flaky" in retried[0].error

    def test_job_events_round_trip_as_json(self):
        event = JobCompleted(
            campaign="table1", job="abc123", index=4,
            attempts=2, elapsed=1.5, cached=False,
        )
        clone = event_from_dict(json.loads(json.dumps(event.as_dict())))
        assert clone == event
