"""Unit tests for repro.common.bitops."""

import pytest

from repro.common.bitops import (
    align_down,
    align_up,
    bit_slice,
    block_address,
    ilog2,
    is_power_of_two,
    next_power_of_two,
)
from repro.common.errors import ConfigError


class TestIsPowerOfTwo:
    def test_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_power_of_two(value)

    def test_negative(self):
        assert not is_power_of_two(-4)


class TestILog2:
    def test_values(self):
        assert ilog2(1) == 0
        assert ilog2(64) == 6
        assert ilog2(8 * 1024) == 13

    def test_rejects_non_power(self):
        with pytest.raises(ConfigError):
            ilog2(96)

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            ilog2(0)


class TestNextPowerOfTwo:
    def test_exact_power_unchanged(self):
        assert next_power_of_two(64) == 64

    def test_rounds_up(self):
        assert next_power_of_two(65) == 128
        assert next_power_of_two(3) == 4

    def test_one(self):
        assert next_power_of_two(1) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            next_power_of_two(0)


class TestAlign:
    def test_align_down(self):
        assert align_down(127, 64) == 64
        assert align_down(128, 64) == 128
        assert align_down(0, 64) == 0

    def test_align_up(self):
        assert align_up(1, 64) == 64
        assert align_up(64, 64) == 64
        assert align_up(65, 64) == 128

    def test_rejects_non_power_alignment(self):
        with pytest.raises(ConfigError):
            align_down(100, 48)
        with pytest.raises(ConfigError):
            align_up(100, 48)


class TestBitSlice:
    def test_middle_bits(self):
        assert bit_slice(0b110100, 2, 3) == 0b101

    def test_zero_width(self):
        assert bit_slice(0xFFFF, 4, 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            bit_slice(1, -1, 2)


class TestBlockAddress:
    def test_64b_lines(self):
        assert block_address(0, 64) == 0
        assert block_address(63, 64) == 0
        assert block_address(64, 64) == 1
        assert block_address(1 << 20, 64) == 1 << 14

    def test_rejects_bad_block_size(self):
        with pytest.raises(ConfigError):
            block_address(128, 100)
