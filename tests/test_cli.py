"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_size


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("8192") == 8192

    def test_kilobytes(self):
        assert parse_size("512KB") == 512 * 1024
        assert parse_size("512k") == 512 * 1024

    def test_megabytes(self):
        assert parse_size("4MB") == 4 << 20
        assert parse_size("4m") == 4 << 20

    def test_fractional(self):
        assert parse_size("0.5MB") == 512 * 1024

    def test_rejects_garbage(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            parse_size("lots")

    def test_rejects_negative(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="positive"):
            parse_size("-4MB")

    def test_rejects_zero(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="positive"):
            parse_size("0")
        with pytest.raises(ConfigError, match="positive"):
            parse_size("0.4")  # rounds down to zero bytes


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "art" in out and "mcf" in out and "CJPEG" in out

    def test_profile(self, capsys):
        assert main(["profile", "ammp", "--refs", "20000"]) == 0
        out = capsys.readouterr().out
        assert "footprint_blocks" in out
        assert "LRU miss curve" in out

    def test_profile_unknown_model_errors(self, capsys):
        assert main(["profile", "quake3", "--refs", "1000"]) == 2
        assert "error" in capsys.readouterr().err

    def test_power(self, capsys):
        assert main(["power", "--size", "1MB", "--assoc", "2", "--ports", "1"]) == 0
        out = capsys.readouterr().out
        assert "nJ/access" in out and "MHz" in out

    def test_simulate_molecular(self, capsys):
        code = main(
            [
                "simulate", "--size", "1MB", "--refs", "20000",
                "--workloads", "ammp,parser", "--tiles", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "partition sizes" in out
        assert "average deviation" in out

    def test_simulate_setassoc(self, capsys):
        code = main(
            [
                "simulate", "--cache", "setassoc", "--size", "1MB",
                "--assoc", "4", "--refs", "20000", "--workloads", "ammp",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "miss rate" in out

    def test_simulate_empty_workloads_errors(self, capsys):
        assert main(["simulate", "--workloads", "", "--refs", "1000"]) == 2

    def test_experiment_figure5_chart(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        code = main(
            ["experiment", "figure5", "--graph", "B", "--refs", "30000",
             "--chart"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5 graph B" in out
        assert "Molecular (Randy)" in out
        assert "*=" in out  # the chart legend

    def test_simulate_rejects_negative_size(self, capsys):
        code = main(
            ["simulate", "--size=-4MB", "--refs", "1000",
             "--workloads", "ammp"]
        )
        assert code == 2
        assert "positive" in capsys.readouterr().err

    def test_sweep_matches_experiment_byte_for_byte(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["experiment", "table1", "--refs", "1000"]) == 0
        serial_out = capsys.readouterr().out

        out_dir = str(tmp_path / "campaign")
        code = main(
            ["sweep", "table1", "--jobs", "1", "--refs", "1000",
             "--out", out_dir]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out  # stdout is byte-identical
        assert "11 jobs" in captured.err

        # identical re-run with --resume: a pure cache hit
        assert main(
            ["sweep", "table1", "--jobs", "1", "--refs", "1000",
             "--out", out_dir, "--resume"]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "11 cached" in captured.err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestAuditCommands:
    def test_fuzz_clean_cell(self, capsys):
        code = main(
            ["fuzz", "--ops", "400", "--seed", "1",
             "--placement", "randy", "--trigger", "constant"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "clean" in captured.out
        assert "randy/constant" in captured.err

    def test_fuzz_reports_failures(self, capsys, monkeypatch):
        from repro.molecular.placement import (
            LRUDirectPlacement,
            PlacementPolicy,
        )

        monkeypatch.setattr(
            LRUDirectPlacement, "on_evict", PlacementPolicy.on_evict
        )
        code = main(
            ["fuzz", "--ops", "2500", "--seed", "3",
             "--placement", "lru_direct", "--trigger", "constant",
             "--audit", "200", "--no-shrink"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "placement-recency" in out

    def test_simulate_with_audit(self, capsys):
        code = main(
            ["simulate", "--size", "1MB", "--refs", "8000",
             "--workloads", "ammp", "--audit", "2000"]
        )
        assert code == 0
        assert "miss rate" in capsys.readouterr().out

    def test_audit_flag_parsing(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["simulate"]).audit is None
        assert parser.parse_args(["simulate", "--audit"]).audit == 100_000
        assert parser.parse_args(["simulate", "--audit", "5000"]).audit == 5000
        assert parser.parse_args(["sweep", "table1", "--audit"]).audit == 100_000
        assert parser.parse_args(["fuzz"]).audit is None

    def test_sweep_audit_exports_environment(self, monkeypatch, tmp_path,
                                             capsys):
        # setenv (not delenv) so teardown restores the pre-test state even
        # though cmd_sweep mutates os.environ directly.
        monkeypatch.setenv("REPRO_AUDIT", "0")
        import os

        code = main(
            ["sweep", "figure6", "--jobs", "1", "--refs", "1000",
             "--out", str(tmp_path / "store"), "--audit", "500"]
        )
        assert code == 0
        assert os.environ.get("REPRO_AUDIT") == "500"
        capsys.readouterr()


class TestObservabilityCommands:
    def test_simulate_profile(self, capsys):
        code = main(
            ["simulate", "--size", "1MB", "--refs", "20000",
             "--workloads", "ammp,parser", "--profile", "64"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hot-path profile" in out
        assert "remote-search" in out
        assert "per-region sampled share:" in out

    def test_simulate_profile_flag_parsing(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["simulate"]).profile is None
        assert parser.parse_args(["simulate", "--profile"]).profile == 512
        assert parser.parse_args(
            ["simulate", "--profile", "64"]
        ).profile == 64

    def test_simulate_profile_needs_molecular(self, capsys):
        code = main(
            ["simulate", "--cache", "setassoc", "--size", "1MB",
             "--refs", "5000", "--workloads", "ammp", "--profile"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "hot-path profile" not in captured.out
        assert "not profiling" in captured.err

    def test_sweep_spans_and_trace_export(self, capsys, monkeypatch,
                                          tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        trace = tmp_path / "spans.json"
        code = main(
            ["sweep", "table1", "--jobs", "1", "--refs", "1000",
             "--out", str(tmp_path / "campaign"), "--spans", str(trace)]
        )
        assert code == 0
        assert "campaign spans:" in capsys.readouterr().err
        assert trace.exists()

        assert main(["trace-export", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "span trace:" in out
        assert "job" in out

        filtered = tmp_path / "jobs-only.json"
        assert main(
            ["trace-export", str(trace), "--category", "job",
             "--out", str(filtered)]
        ) == 0
        capsys.readouterr()
        import json

        events = json.loads(filtered.read_text())["traceEvents"]
        assert all(
            e.get("cat") == "job" for e in events if e.get("ph") == "X"
        )

    def test_trace_export_missing_file(self, capsys, tmp_path):
        assert main(["trace-export", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestDistributedCli:
    """`repro sweep --distributed` and the standalone `repro worker`."""

    def test_distributed_sweep_matches_serial_stdout(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(
            ["sweep", "table1", "--refs", "1000", "--jobs", "1",
             "--out", str(tmp_path / "serial")]
        ) == 0
        serial = capsys.readouterr().out
        assert main(
            ["sweep", "table1", "--refs", "1000", "--distributed", "3",
             "--ttl", "5", "--out", str(tmp_path / "dist")]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out == serial  # stdout is byte-comparable
        assert "[distributed]" in captured.err

    def test_distributed_one_degrades_to_serial_path(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(
            ["sweep", "table1", "--refs", "1000", "--distributed", "1",
             "--out", str(tmp_path / "one")]
        ) == 0
        captured = capsys.readouterr()
        # Serial campaign bookkeeping, no lease protocol engaged.
        assert "[distributed]" not in captured.err
        assert not (tmp_path / "one" / "leases").exists()

    def test_worker_drains_a_prepared_store(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        from repro.campaign import ResultStore, get_experiment

        target = get_experiment("table1")
        specs = target.jobs(refs=1000)[:3]
        store = ResultStore(tmp_path / "store")
        store.write_manifest("table1", specs, {})
        assert main(["worker", str(tmp_path / "store"), "--ttl", "5"]) == 0
        err = capsys.readouterr().err
        assert "3 committed" in err
        assert len(store.completed([s.content_hash() for s in specs])) == 3

    def test_worker_without_manifest_errors(self, capsys, tmp_path):
        assert main(["worker", str(tmp_path / "empty")]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_bad_worker_chaos_grammar_rejected(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        code = main(
            ["sweep", "table1", "--refs", "1000", "--distributed", "2",
             "--out", str(tmp_path / "x"),
             "--worker-chaos", "explode@3"]
        )
        assert code == 2
        assert "worker-chaos" in capsys.readouterr().err
