"""Tests for the MESI coherence layer (the paper's Cache Coherency Unit)."""

import pytest

from repro.caches.coherence import CoherentL1, MESIState, SnoopingBus
from repro.caches.setassoc import SetAssociativeCache
from repro.common.errors import ConfigError


def make_bus(cores=2, l2_size=1 << 20):
    return SnoopingBus(
        cores,
        SetAssociativeCache(l2_size, 4),
        l1_size_bytes=4096,
        l1_associativity=2,
    )


class TestStateMachine:
    def test_cold_read_loads_exclusive(self):
        bus = make_bus()
        assert not bus.read(0, 5)
        assert bus.l1s[0].state_of(5) is MESIState.EXCLUSIVE

    def test_second_reader_makes_both_shared(self):
        bus = make_bus()
        bus.read(0, 5)
        bus.read(1, 5)
        assert bus.l1s[0].state_of(5) is MESIState.SHARED
        assert bus.l1s[1].state_of(5) is MESIState.SHARED

    def test_write_miss_loads_modified(self):
        bus = make_bus()
        assert not bus.write(0, 5)
        assert bus.l1s[0].state_of(5) is MESIState.MODIFIED

    def test_silent_e_to_m_upgrade(self):
        bus = make_bus()
        bus.read(0, 5)
        before = bus.stats.bus_transactions
        assert bus.write(0, 5)
        assert bus.l1s[0].state_of(5) is MESIState.MODIFIED
        assert bus.stats.bus_transactions == before  # no bus traffic

    def test_write_to_shared_upgrades_and_invalidates(self):
        bus = make_bus()
        bus.read(0, 5)
        bus.read(1, 5)
        assert bus.write(0, 5)
        assert bus.l1s[0].state_of(5) is MESIState.MODIFIED
        assert bus.l1s[1].state_of(5) is MESIState.INVALID
        assert bus.stats.bus_upgrades == 1
        assert bus.stats.invalidations_received == 1

    def test_read_of_modified_line_intervenes(self):
        bus = make_bus()
        bus.write(0, 5)
        bus.read(1, 5)
        assert bus.l1s[0].state_of(5) is MESIState.SHARED
        assert bus.l1s[1].state_of(5) is MESIState.SHARED
        assert bus.stats.interventions == 1
        assert bus.stats.writebacks == 1

    def test_write_invalidates_modified_elsewhere(self):
        bus = make_bus()
        bus.write(0, 5)
        bus.write(1, 5)
        assert bus.l1s[0].state_of(5) is MESIState.INVALID
        assert bus.l1s[1].state_of(5) is MESIState.MODIFIED
        assert bus.stats.writebacks == 1


class TestHitMissAccounting:
    def test_read_hit_states(self):
        bus = make_bus()
        bus.read(0, 5)
        assert bus.read(0, 5)
        assert bus.stats.read_hits == 1
        assert bus.stats.read_misses == 1

    def test_shared_level_sees_only_misses(self):
        bus = make_bus()
        for _ in range(5):
            bus.read(0, 5)
        assert bus.shared.stats.total.accesses == 1

    def test_access_dispatch(self):
        bus = make_bus()
        bus.access(0, 5, write=True)
        assert bus.l1s[0].state_of(5) is MESIState.MODIFIED

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            SnoopingBus(0, SetAssociativeCache(1024, 1))


class TestEvictionInteraction:
    def test_l1_eviction_drops_state(self):
        bus = make_bus()
        l1 = bus.l1s[0]
        sets = l1.cache.num_sets
        # three blocks aliasing into the same 2-way set
        bus.read(0, 0)
        bus.read(0, sets)
        bus.read(0, 2 * sets)
        held = [b for b in (0, sets, 2 * sets) if l1.holds(b)]
        assert len(held) == 2  # one got evicted, state dropped with it
        assert len(l1.states) == l1.cache.occupancy()


class TestMolecularBelowCoherence:
    def test_composes_with_molecular_shared_level(self):
        from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy

        config = MolecularCacheConfig(
            molecule_bytes=1024, molecules_per_tile=4, tiles_per_cluster=2,
            clusters=1, strict=False,
        )
        l2 = MolecularCache(config, resize_policy=ResizePolicy(period=10**9))
        l2.assign_application(7, goal=None, initial_molecules=2)
        bus = SnoopingBus(
            2, l2, l1_size_bytes=1024, l1_associativity=2,
            asid_of_core={0: 7, 1: 7},
        )
        bus.read(0, 5)
        bus.read(1, 5)
        bus.write(0, 5)
        bus.check_invariants()
        assert l2.stats.total.accesses >= 1


class TestInvariantsUnderRandomTraffic:
    def test_swmr_holds(self):
        import random

        rng = random.Random(9)
        bus = make_bus(cores=4)
        for _ in range(3000):
            core = rng.randrange(4)
            block = rng.randrange(64)
            bus.access(core, block, write=rng.random() < 0.3)
            if _ % 100 == 0:
                bus.check_invariants()
        bus.check_invariants()
        # states never reference blocks absent from the data array
        for l1 in bus.l1s:
            resident = set(l1.cache.resident_blocks())
            assert set(l1.states) <= resident
