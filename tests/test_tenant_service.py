"""Cache service, accounting and allocation policies: unit behavior.

Covers the pieces of :mod:`repro.tenants` individually — sampled
hit-rate curves (monotone, cold-capped), SLA ledgers, exact per-tenant
LRU semantics, admission (bootstrap grants and the steal path), policy
output validation, the three allocation policies, Jain's index, and the
structural zero-cost contract: the access path reads ``accounting``
exactly once per reference (``test_prof_zero_cost.py`` style lookup
counting, not wall-clock racing).
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.tenants.accounting import HitRateSampler, TenantAccounting
from repro.tenants.policies import (
    Algorithm1Tenancy,
    AllocationPolicy,
    NeedDriven,
    StaticProportional,
    TenantView,
    jain_index,
    make_policy,
    policy_names,
)
from repro.tenants.service import CacheService
from repro.workloads.tenants import TenantWorkloadSpec


def make_view(
    tenant: int,
    allocation: int,
    epoch_accesses: int = 0,
    epoch_hits: int = 0,
    sampler: HitRateSampler | None = None,
) -> TenantView:
    return TenantView(
        tenant=tenant,
        allocation=allocation,
        occupancy=allocation,
        epoch_accesses=epoch_accesses,
        epoch_hits=epoch_hits,
        sampler=sampler,
        sla_miss_rate=0.4,
    )


# -------------------------------------------------------------- accounting


class TestHitRateSampler:
    def test_curve_monotone_in_capacity(self):
        sampler = HitRateSampler(sample_ratio=1, stack_cap=64)
        for _ in range(50):
            for key in range(16):
                sampler.record(key)
        rates = [sampler.hit_rate_at(c) for c in (1, 2, 4, 8, 16, 32, 64)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        assert 0.0 <= rates[0] and rates[-1] <= 1.0

    def test_cold_misses_cap_the_curve(self):
        sampler = HitRateSampler(sample_ratio=1, stack_cap=64)
        for key in range(32):  # every reference is a first touch
            sampler.record(key)
        assert sampler.cold == 32
        assert sampler.hit_rate_at(10_000) == 0.0

    def test_repeat_key_hits_distance_zero_bucket(self):
        sampler = HitRateSampler(sample_ratio=1, stack_cap=8)
        sampler.record(5)
        sampler.record(5)
        assert sampler.buckets == {0: 1}
        assert sampler.hit_rate_at(1) == pytest.approx(0.5)

    def test_sampling_ratio_filters_keys(self):
        sampler = HitRateSampler(sample_ratio=8, stack_cap=64)
        for key in range(256):
            sampler.record(key)
        assert 0 < sampler.samples < 256

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            HitRateSampler(sample_ratio=0)
        with pytest.raises(ConfigError):
            HitRateSampler(stack_cap=0)


class TestTenantAccounting:
    def test_sla_violation_tracked_per_epoch(self):
        accounting = TenantAccounting(sla_miss_rate=0.4, min_epoch_accesses=4)
        for _ in range(10):  # all misses: miss rate 1.0 > 0.4
            accounting.record(1, 7, hit=False)
        assert accounting.close_epoch(0) == 1
        ledger = accounting.ledgers[1]
        assert ledger.sla_violations == 1
        assert ledger.violation_epochs == [0]
        # Counters reset; an idle epoch does not violate.
        assert accounting.close_epoch(1) == 0

    def test_low_traffic_tenant_not_evaluated(self):
        accounting = TenantAccounting(sla_miss_rate=0.4, min_epoch_accesses=16)
        accounting.record(1, 7, hit=False)
        assert accounting.close_epoch(0) == 0

    def test_hit_rate_curves_rank_by_accesses(self):
        accounting = TenantAccounting(sample_ratio=1)
        for _ in range(20):
            accounting.record(1, 3, hit=True)
        accounting.record(2, 3, hit=True)
        curves = accounting.hit_rate_curves(max_blocks=8, top=1)
        assert list(curves) == [1]


# ----------------------------------------------------------------- service


def build_service(policy=None, accounting=None, **kwargs) -> CacheService:
    return CacheService(
        capacity_blocks=kwargs.pop("capacity_blocks", 64),
        policy=policy or StaticProportional(),
        accounting=accounting,
        epoch_refs=kwargs.pop("epoch_refs", 1_000_000),
        **kwargs,
    )


class TestServiceLRU:
    def test_hit_refreshes_recency(self):
        service = build_service(bootstrap_blocks=2)
        service.access(0, 1)
        service.access(0, 2)
        service.access(0, 1)  # refresh key 1
        service.access(0, 3)  # evicts key 2, the LRU
        assert service.access(0, 1) is True
        assert service.access(0, 2) is False

    def test_partition_respects_allocation(self):
        service = build_service(bootstrap_blocks=4)
        for key in range(10):
            service.access(0, key)
        assert len(service.partitions[0]) == 4

    def test_write_marks_dirty(self):
        service = build_service(bootstrap_blocks=2)
        service.access(0, 1, write=True)
        assert service.partitions[0][1] is True
        service.access(0, 1, write=False)  # a clean hit keeps dirty
        assert service.partitions[0][1] is True


class TestAdmission:
    def test_bootstrap_grant(self):
        service = build_service(bootstrap_blocks=8)
        service.access(3, 1)
        assert service.allocations[3] == 8
        assert service.free_blocks() == 64 - 8

    def test_steal_from_largest_when_pool_dry(self):
        service = build_service(capacity_blocks=16, bootstrap_blocks=8)
        service.access(0, 1)
        service.access(1, 1)  # pool now empty (8 + 8)
        service.access(2, 1)  # must steal from an incumbent
        assert sum(service.allocations.values()) <= 16
        assert service.allocations[2] >= 1
        assert min(service.allocations.values()) >= 1

    def test_admission_fails_when_capacity_exhausted(self):
        service = build_service(capacity_blocks=2, bootstrap_blocks=1)
        service.access(0, 1)
        service.access(1, 1)
        with pytest.raises(ConfigError):
            service.access(2, 1)


class BadPolicy(AllocationPolicy):
    name = "bad"

    def __init__(self, result):
        self.result = result

    def rebalance(self, epoch, capacity, tenants):
        return self.result if not callable(self.result) else self.result(tenants)


class TestRebalanceValidation:
    def run_one_epoch(self, policy) -> CacheService:
        service = build_service(policy=policy, epoch_refs=4)
        for key in range(4):
            service.access(0, key)
        return service

    def test_over_capacity_rejected(self):
        with pytest.raises(ConfigError):
            self.run_one_epoch(BadPolicy(lambda t: {0: 1000}))

    def test_missing_tenant_rejected(self):
        with pytest.raises(ConfigError):
            self.run_one_epoch(BadPolicy(lambda t: {}))

    def test_zero_block_grant_rejected(self):
        with pytest.raises(ConfigError):
            self.run_one_epoch(BadPolicy(lambda t: {0: 0}))

    def test_shrink_below_occupancy_evicts(self):
        service = build_service(
            policy=BadPolicy(lambda t: {0: 2}),
            epoch_refs=8,
            bootstrap_blocks=8,
        )
        for key in range(8):
            service.access(0, key)
        assert service.allocations[0] == 2
        assert len(service.partitions[0]) <= 2


class TestZeroCostContract:
    def test_one_accounting_lookup_per_access(self):
        """The hot path reads ``accounting`` exactly once per reference."""

        class CountingService(CacheService):
            def __init__(self, *args, **kwargs):
                self.accounting_lookups = 0
                self._accounting = None
                super().__init__(*args, **kwargs)

            @property
            def accounting(self):
                self.accounting_lookups += 1
                return self._accounting

            @accounting.setter
            def accounting(self, value):
                self._accounting = value

        service = CountingService(
            capacity_blocks=64,
            policy=StaticProportional(),
            accounting=None,
            epoch_refs=1_000_000,
        )
        service.accounting_lookups = 0
        for key in range(100):
            service.access(0, key)
        assert service.accounting_lookups == 100

    def test_disabled_accounting_result_identical(self):
        spec = TenantWorkloadSpec(
            name="t", tenants=4, footprint_blocks=32, epochs=2
        )
        trace = spec.generate(2_000, seed=5)

        def run(accounting):
            service = CacheService(
                capacity_blocks=64,
                policy=StaticProportional(),
                accounting=accounting,
                epoch_refs=500,
            )
            result = service.run(trace)
            return (
                result.total_hits,
                result.final_allocations,
                result.moved_blocks,
            )

        # StaticProportional ignores accounting, so hit totals and the
        # allocation trajectory must not depend on it being attached.
        assert run(None) == run(TenantAccounting(sla_miss_rate=0.4))


# ---------------------------------------------------------------- policies


class TestStaticProportional:
    def test_equal_split_with_remainder(self):
        policy = StaticProportional()
        views = {t: make_view(t, 1) for t in (0, 1, 2)}
        split = policy.rebalance(0, 10, views)
        assert sorted(split.values(), reverse=True) == [4, 3, 3]
        assert sum(split.values()) == 10

    def test_split_cached_until_churn(self):
        policy = StaticProportional()
        views = {t: make_view(t, 1) for t in (0, 1)}
        first = policy.rebalance(0, 8, views)
        second = policy.rebalance(1, 8, views)
        assert first == second
        views[2] = make_view(2, 1)
        third = policy.rebalance(2, 8, views)
        assert set(third) == {0, 1, 2}


class TestNeedDriven:
    def test_free_pool_flows_to_needy_tenant(self):
        # Cycling 10 keys puts reuse distance 9 in the [8, 16) bucket:
        # growing 8 -> 12 blocks shows positive marginal gain.
        hot = HitRateSampler(sample_ratio=1, stack_cap=64)
        for _ in range(10):
            for key in range(10):
                hot.record(key)
        policy = NeedDriven(quantum=4)
        views = {
            0: make_view(0, 8, epoch_accesses=1000, epoch_hits=100, sampler=hot),
            1: make_view(1, 8),  # idle
        }
        alloc = policy.rebalance(0, 64, views)
        assert alloc[0] > 8
        assert sum(alloc.values()) <= 64

    def test_idle_tenant_donates(self):
        # Reuse distance 19 sits in the [16, 32) bucket, so the hot
        # tenant (allocation 16) still gains from every extra quantum.
        hot = HitRateSampler(sample_ratio=1, stack_cap=64)
        for _ in range(10):
            for key in range(20):
                hot.record(key)
        policy = NeedDriven(quantum=4, max_move_fraction=0.5)
        views = {
            0: make_view(0, 16, epoch_accesses=1000, epoch_hits=100, sampler=hot),
            1: make_view(1, 48),  # idle incumbent hoarding capacity
        }
        alloc = policy.rebalance(0, 64, views)
        assert alloc[0] > 16
        assert alloc[1] < 48
        assert alloc[1] >= 1
        assert sum(alloc.values()) <= 64

    def test_no_signal_no_movement(self):
        policy = NeedDriven()
        views = {t: make_view(t, 8) for t in (0, 1)}
        assert policy.rebalance(0, 64, views) == {0: 8, 1: 8}


class TestAlgorithm1Tenancy:
    def test_missing_tenant_grows_from_free_pool(self):
        policy = Algorithm1Tenancy(quantum=4)
        views = {
            0: make_view(0, 8, epoch_accesses=100, epoch_hits=10),  # panic
            1: make_view(1, 8, epoch_accesses=100, epoch_hits=95),  # happy
        }
        alloc = policy.rebalance(0, 64, views)
        assert alloc[0] > 8
        assert sum(alloc.values()) <= 64

    def test_withdraw_when_well_under_goal(self):
        policy = Algorithm1Tenancy(quantum=2)
        views = {0: make_view(0, 32, epoch_accesses=100, epoch_hits=99)}
        alloc = policy.rebalance(0, 64, views)
        assert alloc[0] < 32
        assert alloc[0] >= 1

    def test_idle_tenant_held(self):
        policy = Algorithm1Tenancy()
        views = {0: make_view(0, 16)}
        assert policy.rebalance(0, 64, views) == {0: 16}


class TestPolicyRegistry:
    def test_names(self):
        assert policy_names() == ["static", "need", "alg1"]

    def test_make_policy(self):
        assert isinstance(make_policy("static"), StaticProportional)
        assert isinstance(make_policy("need"), NeedDriven)
        assert isinstance(make_policy("alg1"), Algorithm1Tenancy)

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_policy("nope")


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_perfectly_unfair(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0


class TestRunResult:
    def test_run_produces_epoch_stats_and_totals(self):
        spec = TenantWorkloadSpec(
            name="t", tenants=6, footprint_blocks=32, churn=0.3,
            idle_fraction=0.25, epochs=4,
        )
        trace = spec.generate(4_000, seed=3)
        service = CacheService(
            capacity_blocks=96,
            policy=make_policy("need"),
            accounting=TenantAccounting(sla_miss_rate=0.4),
            epoch_refs=1_000,
        )
        result = service.run(trace)
        assert result.epochs == 4
        assert result.total_accesses == 4_000
        assert len(result.epoch_stats) == 4
        assert 0.0 <= result.aggregate_hit_rate() <= 1.0
        assert 0.0 < result.mean_jain() <= 1.0
        assert sum(result.tenant_accesses.values()) == 4_000
        assert sum(result.final_allocations.values()) <= 96
