"""Property tests: the columnar engine is byte-identical to the scalar path.

The columnar kernels (`repro.molecular.columnar`) promise exactly the
contract the batched engine pinned in ``test_prop_batched.py``: for any
reference stream the stats dicts, occupancy reports and resize logs are
identical to replaying the same stream through the scalar
``access_block`` reference. These tests force the kernels on
(``force_kernels=True`` disables the size/miss-rate heuristics that
would otherwise route short adversarial streams to the batched loop) and
sweep the dimensions the kernels special-case: placements, resize
triggers, line multipliers, shared regions, migration, faults,
mid-stream scalar interleaving and mid-worklist errors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError, UnknownASIDError
from repro.common.rng import XorShift64
from repro.faults import FaultSpec, apply_fault
from repro.molecular.cache import MolecularCache
from repro.molecular.columnar import ColumnarAccessEngine, RegionMirror
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import RingBufferSink

TRIGGERS = ["constant", "global_adaptive", "per_app_adaptive"]
PLACEMENTS = ["random", "randy", "lru_direct"]


def build_cache(
    placement: str = "randy",
    trigger: str = "global_adaptive",
    multiplier: int = 1,
    shared: bool = False,
) -> MolecularCache:
    config = MolecularCacheConfig(
        molecule_bytes=1024,
        molecules_per_tile=8,
        tiles_per_cluster=2,
        clusters=1,
        strict=False,
    )
    cache = MolecularCache(
        config,
        resize_policy=ResizePolicy(
            period=200, trigger=trigger, min_window_refs=16, period_floor=50
        ),
        placement=placement,
        rng=XorShift64(11),
    )
    cache.assign_application(
        0, goal=0.3, initial_molecules=3, tile_id=0, line_multiplier=multiplier
    )
    cache.assign_application(1, goal=0.3, initial_molecules=3, tile_id=1)
    if shared:
        cache.create_shared_region(tile_id=0, molecules=2)
        cache.assign_shared_application(7, tile_id=0)
    return cache


def assert_equivalent(reference, candidate):
    assert reference.stats == candidate.stats
    assert reference.stats.as_dict() == candidate.stats.as_dict()
    assert reference.occupancy_report() == candidate.occupancy_report()
    assert reference.resizer.log == candidate.resizer.log


def replay_scalar(cache, stream):
    for block, asid, write in stream:
        cache.access_block(block, asid, write)


def replay_columnar(cache, stream):
    blocks = [b for b, _a, _w in stream]
    asids = [a for _b, a, _w in stream]
    writes = [w for _b, _a, w in stream]
    engine = ColumnarAccessEngine(cache, force_kernels=True)
    assert engine.stream(blocks, asids, writes) == len(stream)


stream_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=1),
        st.booleans(),
    ),
    min_size=30,
    max_size=400,
)


class TestKernelEquivalence:
    @pytest.mark.parametrize("trigger", TRIGGERS)
    @pytest.mark.parametrize("placement", PLACEMENTS)
    @settings(max_examples=15, deadline=None)
    @given(stream=stream_strategy)
    def test_matches_scalar(self, placement, trigger, stream):
        reference = build_cache(placement, trigger)
        replay_scalar(reference, stream)
        candidate = build_cache(placement, trigger)
        replay_columnar(candidate, stream)
        assert_equivalent(reference, candidate)

    @pytest.mark.parametrize("multiplier", [2, 4])
    @settings(max_examples=10, deadline=None)
    @given(stream=stream_strategy)
    def test_line_multiplier_units(self, multiplier, stream):
        reference = build_cache(multiplier=multiplier)
        replay_scalar(reference, stream)
        candidate = build_cache(multiplier=multiplier)
        replay_columnar(candidate, stream)
        assert_equivalent(reference, candidate)

    @settings(max_examples=10, deadline=None)
    @given(
        stream=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=400),
                st.sampled_from([0, 1, 7]),
                st.booleans(),
            ),
            min_size=30,
            max_size=400,
        )
    )
    def test_shared_region_hits(self, stream):
        reference = build_cache(shared=True)
        replay_scalar(reference, stream)
        candidate = build_cache(shared=True)
        replay_columnar(candidate, stream)
        assert_equivalent(reference, candidate)

    def test_long_hot_stream_crosses_many_resizes(self):
        # ~30 global-trigger fires land inside one stream() call; the
        # chunk caps must place every fire at exactly the scalar access
        # count.
        rng = XorShift64(3)
        stream = [
            (rng.randrange(120), rng.randrange(2), rng.randrange(8) == 0)
            for _ in range(6000)
        ]
        reference = build_cache()
        replay_scalar(reference, stream)
        candidate = build_cache()
        replay_columnar(candidate, stream)
        assert_equivalent(reference, candidate)
        assert len(candidate.resizer.log) > 0

    def test_scalar_writes_broadcast(self):
        rng = XorShift64(5)
        blocks = [rng.randrange(200) for _ in range(500)]
        reference = build_cache()
        for block in blocks:
            reference.access_block(block, 0, True)
        candidate = build_cache()
        ColumnarAccessEngine(candidate, force_kernels=True).stream(
            blocks, 0, True
        )
        assert_equivalent(reference, candidate)


class TestStructuralInterleaving:
    """Structural ops between stream segments must invalidate mirrors."""

    def segments(self, seed=9, count=4, n=300):
        rng = XorShift64(seed)
        return [
            [
                (rng.randrange(300), rng.randrange(2), rng.randrange(4) == 0)
                for _ in range(n)
            ]
            for _ in range(count)
        ]

    def run_both(self, ops, shared=False, placement="randy"):
        reference = build_cache(placement=placement, shared=shared)
        candidate = build_cache(placement=placement, shared=shared)
        for op in ops:
            if isinstance(op, list):
                replay_scalar(reference, op)
                replay_columnar(candidate, op)
            else:
                op(reference)
                op(candidate)
        assert_equivalent(reference, candidate)

    def test_migration_between_segments(self):
        segments = self.segments()
        self.run_both(
            [
                segments[0],
                lambda cache: cache.migrate_application(0, 1),
                segments[1],
                lambda cache: cache.migrate_application(0, 0),
                segments[2],
            ]
        )

    def test_force_resize_between_segments(self):
        segments = self.segments(seed=17)
        self.run_both(
            [
                segments[0],
                lambda cache: cache.resizer.force_resize(),
                segments[1],
            ]
        )

    @pytest.mark.parametrize("kind", ["hard", "transient", "degraded"])
    def test_faults_between_segments(self, kind):
        # Fault the molecule serving region 0's presence map (hard kills
        # membership, transient drops one line and must still invalidate
        # the mirror via content_version, degraded changes latency only).
        segments = self.segments(seed=23)

        def fault(cache):
            region = cache.regions[0]
            if kind == "degraded":
                # Degraded faults target a tile, not a molecule.
                spec = FaultSpec(kind=kind, at=0, target=0, extra_cycles=4)
            elif kind == "transient":
                target = None
                for molecule in region.molecules():
                    if molecule.resident_blocks():
                        target = molecule.molecule_id
                        break
                if target is None:
                    return
                spec = FaultSpec(kind=kind, at=0, target=target)
            else:
                target = next(iter(region.molecules())).molecule_id
                spec = FaultSpec(kind=kind, at=0, target=target)
            apply_fault(cache, spec)

        self.run_both([segments[0], fault, segments[1], fault, segments[2]])

    def test_scalar_interleave_invalidates_mirror(self):
        # access_block between kernel calls mutates presence without any
        # engine involvement; content_version must catch it.
        segments = self.segments(seed=31, count=2)
        reference = build_cache()
        candidate = build_cache()
        replay_scalar(reference, segments[0])
        replay_columnar(candidate, segments[0])
        extra = [(900 + i, 0, False) for i in range(40)]
        replay_scalar(reference, extra)
        replay_scalar(candidate, extra)
        replay_scalar(reference, segments[1])
        replay_columnar(candidate, segments[1])
        assert_equivalent(reference, candidate)


class TestFallbacksAndRouting:
    def test_routed_access_many_equivalence(self):
        # The production entry point (no force_kernels): hot stream long
        # enough to engage kernels, plus a miss-heavy prefix that takes
        # the bailout — both must match scalar.
        rng = XorShift64(41)
        stream = [(rng.randrange(5000), rng.randrange(2), False) for _ in range(1500)]
        stream += [(rng.randrange(90), rng.randrange(2), rng.randrange(3) == 0) for _ in range(3000)]
        reference = build_cache()
        replay_scalar(reference, stream)
        candidate = build_cache()
        candidate.access_many(
            [b for b, _a, _w in stream],
            [a for _b, a, _w in stream],
            [w for _b, _a, w in stream],
        )
        assert_equivalent(reference, candidate)

    def test_telemetry_bus_forces_fallback_and_matches(self):
        rng = XorShift64(43)
        stream = [
            (rng.randrange(200), rng.randrange(2), rng.randrange(4) == 0)
            for _ in range(800)
        ]

        def attach(cache):
            sink = RingBufferSink(capacity=1_000_000)
            cache.attach_telemetry(
                EventBus(
                    [sink], epoch_refs=100, sample_interval=7,
                    remote_search_sample=2,
                )
            )
            return sink

        reference = build_cache()
        ref_sink = attach(reference)
        replay_scalar(reference, stream)
        candidate = build_cache()
        cand_sink = attach(candidate)
        replay_columnar(candidate, stream)
        assert_equivalent(reference, candidate)
        assert ref_sink.events() == cand_sink.events()

    def test_unknown_asid_matches_scalar_position(self):
        stream = [(i % 60, 0, False) for i in range(200)]
        bad = stream + [(3, 9, False)] + [(4, 0, False)] * 50

        reference = build_cache()
        with pytest.raises(UnknownASIDError):
            replay_scalar(reference, bad)
        candidate = build_cache()
        with pytest.raises(UnknownASIDError):
            replay_columnar(candidate, bad)
        assert_equivalent(reference, candidate)

    @pytest.mark.parametrize("fuse", [0, 3, 25])
    def test_mid_worklist_error_leaves_identical_state(self, fuse):
        # A placement that blows up on its (fuse+1)-th miss raises
        # SimulationError mid-stream; the error must surface at the same
        # reference with identical partial stats on both paths — the
        # columnar engine bulk-accounts the snapshot hits that precede
        # the failing access before re-raising.
        rng = XorShift64(47)
        stream = [
            (rng.randrange(150), rng.randrange(2), rng.randrange(3) == 0)
            for _ in range(400)
        ]

        def arm(cache):
            real = cache.placement.choose
            state = {"misses": 0}

            def choose(region, block, lines_per_molecule, rng):
                state["misses"] += 1
                if state["misses"] > fuse:
                    raise SimulationError("placement bomb")
                return real(region, block, lines_per_molecule, rng)

            cache.placement.choose = choose

        reference = build_cache(trigger="constant")
        arm(reference)
        with pytest.raises(SimulationError):
            replay_scalar(reference, stream)
        candidate = build_cache(trigger="constant")
        arm(candidate)
        with pytest.raises(SimulationError):
            replay_columnar(candidate, stream)
        assert_equivalent(reference, candidate)


class TestMirror:
    def test_mirror_matches_presence_after_churn(self):
        cache = build_cache()
        rng = XorShift64(53)
        stream = [(rng.randrange(500), 0, False) for _ in range(4000)]
        replay_columnar(cache, stream)
        (key,) = [
            k
            for k, m in cache._columnar_mirrors.items()
            if m.region is cache.regions[0]
        ]
        mirror = cache._columnar_mirrors[key]
        assert mirror.fresh()
        region = cache.regions[0]
        for block, molecule in region.presence.items():
            slot, found = mirror._probe(block)
            assert found
            assert mirror.mols[int(mirror.vals[slot])] is molecule

    def test_rebuild_grows_table(self):
        cache = build_cache()
        region = cache.regions[0]
        mirror = RegionMirror(region, None)
        size_before = mirror.mask + 1
        for block in range(3000):
            cache.access_block(block, 0, False)
        assert not mirror.fresh()
        mirror.rebuild()
        assert mirror.fresh()
        assert mirror.mask + 1 >= size_before
        for block in region.presence:
            _slot, found = mirror._probe(block)
            assert found


class TestProfilerContract:
    """``simulate --profile`` on the columnar path.

    With a profiler attached and enabled, ``access_many`` routes every
    reference through the stage-instrumented scalar twin
    (``ProfiledAccessEngine``) instead of the columnar kernels — the
    columnar engine never sees sampled accesses — and the profiler
    report keeps its stages-sum-to-wall invariant. Stats stay
    byte-identical to an unprofiled columnar run of the same ndarray
    columns.
    """

    def _columns(self, n: int = 2000):
        rng = XorShift64(19)
        blocks = np.array([rng.randrange(400) for _ in range(n)], dtype=np.int64)
        # Long same-ASID runs so the routed (non-forced) columnar path
        # picks its kernels rather than delegating short runs.
        asids = np.array([(i // 250) % 2 for i in range(n)], dtype=np.int32)
        writes = np.array(
            [rng.randrange(4) == 0 for _ in range(n)], dtype=np.bool_
        )
        return blocks, asids, writes

    def test_profiled_run_matches_columnar_and_skips_kernels(self):
        from repro.prof import HotPathProfiler

        blocks, asids, writes = self._columns()
        reference = build_cache()
        assert reference.access_many(blocks, asids, writes) == len(blocks)
        assert reference._columnar_mirrors  # the kernels actually ran

        profiled = build_cache()
        profiler = HotPathProfiler(sample_every=5)
        profiled.attach_profiler(profiler)
        assert profiled.access_many(blocks, asids, writes) == len(blocks)

        assert_equivalent(reference, profiled)
        assert profiler.refs == len(blocks)
        assert profiler.samples > 0
        # Sampled accesses went through the scalar twin, never the
        # columnar kernels: no mirror was ever built.
        assert profiled._columnar_mirrors == {}
        # ndarray columns must not leak numpy scalars into presence maps.
        for region in profiled.regions.values():
            assert all(type(block) is int for block in region.presence)

    def test_stages_sum_to_wall_on_ndarray_columns(self):
        from repro.prof import PROFILE_STAGES, HotPathProfiler

        blocks, asids, writes = self._columns()
        cache = build_cache()
        profiler = HotPathProfiler(sample_every=4)
        cache.attach_profiler(profiler)
        cache.access_many(blocks, asids, writes)

        report = profiler.report()
        assert report["refs"] == len(blocks)
        assert report["samples"] > 0
        assert set(report["stages"]) == set(PROFILE_STAGES)
        stage_total = sum(info["time_s"] for info in report["stages"].values())
        attributed = stage_total + report["resize"]["time_s"]
        assert attributed == pytest.approx(report["wall_s"], rel=1e-9)

    def test_disabled_profiler_restores_columnar_routing(self):
        from repro.prof import HotPathProfiler

        blocks, asids, writes = self._columns(500)
        cache = build_cache()
        profiler = HotPathProfiler(sample_every=5)
        profiler.enabled = False
        cache.attach_profiler(profiler)
        cache.access_many(blocks, asids, writes)
        assert cache._columnar_mirrors  # columnar kernels ran
        assert profiler.refs == 0
