"""Hot-path profiler: equivalence, attribution and report shape.

The profiled access paths promise the engine's own equivalence contract:
byte-identical stats, resize logs, occupancy and telemetry streams to an
unprofiled run of the same references. On top of that the report must
attribute the measured wall clock: stage times sum to the wall by
construction, resize fires are timed exactly, and per-region shares
cover every sampled access.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import XorShift64
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.prof import PROFILE_STAGES, HotPathProfiler
from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import RingBufferSink


def build_cache(placement: str = "randy") -> MolecularCache:
    config = MolecularCacheConfig(
        molecule_bytes=1024,
        molecules_per_tile=8,
        tiles_per_cluster=2,
        clusters=1,
        strict=False,
    )
    cache = MolecularCache(
        config,
        resize_policy=ResizePolicy(
            period=200,
            trigger="global_adaptive",
            min_window_refs=16,
            period_floor=50,
        ),
        placement=placement,
        rng=XorShift64(11),
    )
    cache.assign_application(0, goal=0.3, initial_molecules=3, tile_id=0)
    cache.assign_application(1, goal=0.3, initial_molecules=3, tile_id=1)
    return cache


def make_stream(n: int = 600):
    rng = XorShift64(7)
    return [
        (rng.randrange(400), rng.randrange(2), rng.randrange(4) == 0)
        for _ in range(n)
    ]


def attach_bus(cache) -> RingBufferSink:
    sink = RingBufferSink(capacity=1_000_000)
    cache.attach_telemetry(
        EventBus([sink], epoch_refs=100, sample_interval=7, remote_search_sample=2)
    )
    return sink


def assert_equivalent(reference, candidate, ref_sink=None, cand_sink=None):
    assert reference.stats == candidate.stats
    assert reference.stats.as_dict() == candidate.stats.as_dict()
    assert reference.occupancy_report() == candidate.occupancy_report()
    assert reference.resizer.log == candidate.resizer.log
    if ref_sink is not None:
        assert ref_sink.events() == cand_sink.events()


class TestProfiledEquivalence:
    @pytest.mark.parametrize("sample_every", [1, 7, 512])
    def test_profiled_stream_matches_plain(self, sample_every):
        stream = make_stream()
        blocks = [b for b, _a, _w in stream]
        asids = [a for _b, a, _w in stream]
        writes = [w for _b, _a, w in stream]

        plain = build_cache()
        plain_sink = attach_bus(plain)
        plain.access_many(blocks, asids, writes)

        profiled = build_cache()
        profiled_sink = attach_bus(profiled)
        profiler = HotPathProfiler(sample_every=sample_every)
        profiled.attach_profiler(profiler)
        assert profiled.access_many(blocks, asids, writes) == len(stream)

        assert_equivalent(plain, profiled, plain_sink, profiled_sink)
        assert profiler.refs == len(stream)
        # The stream path samples the last reference of each
        # sample_every-sized segment (including the final partial one).
        assert profiler.samples == -(-len(stream) // sample_every)
        assert profiler.streams == 1
        assert profiler.wall_s > 0

    def test_profiled_session_matches_plain(self):
        stream = make_stream()
        plain = build_cache()
        plain_sink = attach_bus(plain)
        access = plain.access_session().access
        for block, asid, write in stream:
            access(block, asid, write)

        profiled = build_cache()
        profiled_sink = attach_bus(profiled)
        profiler = HotPathProfiler(sample_every=5)
        profiled.attach_profiler(profiler)
        access = profiled.access_session().access
        for block, asid, write in stream:
            access(block, asid, write)

        assert_equivalent(plain, profiled, plain_sink, profiled_sink)
        assert profiler.refs == len(stream)
        assert profiler.samples == len(stream) // 5

    def test_disabled_profiler_is_ignored(self):
        stream = make_stream(200)
        cache = build_cache()
        profiler = HotPathProfiler()
        profiler.enabled = False
        cache.attach_profiler(profiler)
        cache.access_many(*zip(*stream))
        assert profiler.refs == 0
        assert profiler.samples == 0

    def test_detach_profiler(self):
        cache = build_cache()
        profiler = HotPathProfiler()
        cache.attach_profiler(profiler)
        assert cache.profiler is profiler
        cache.detach_profiler()
        assert cache.profiler is None

    def test_scalar_asid_and_write_args(self):
        # The profiled stream path must handle scalar asids/writes the
        # way the plain engine does.
        blocks = [b for b, _a, _w in make_stream(300)]
        plain = build_cache()
        plain.access_many(blocks, 0, False)
        profiled = build_cache()
        profiled.attach_profiler(HotPathProfiler(sample_every=3))
        profiled.access_many(blocks, 0, False)
        assert_equivalent(plain, profiled)


class TestReport:
    def test_stages_sum_to_wall(self):
        cache = build_cache()
        profiler = HotPathProfiler(sample_every=4)
        cache.attach_profiler(profiler)
        stream = make_stream(2000)
        cache.access_many(*zip(*stream))

        report = profiler.report()
        assert report["refs"] == len(stream)
        assert report["samples"] > 0
        stage_total = sum(
            info["time_s"] for info in report["stages"].values()
        )
        attributed = stage_total + report["resize"]["time_s"]
        assert attributed == pytest.approx(report["wall_s"], rel=1e-9)
        assert set(report["stages"]) == set(PROFILE_STAGES)
        shares = [info["share"] for info in report["stages"].values()]
        assert sum(shares) == pytest.approx(1.0)
        assert all(share >= 0 for share in shares)

    def test_resize_fires_timed_exactly(self):
        cache = build_cache()
        profiler = HotPathProfiler(sample_every=64)
        cache.attach_profiler(profiler)
        cache.access_many(*zip(*make_stream(2000)))
        # The resizer logs one entry per *decision*; fires are rounds.
        assert profiler.resize_fires > 0
        assert len(cache.resizer.log) > 0
        assert profiler.resize_s > 0

    def test_region_attribution_covers_samples(self):
        cache = build_cache()
        profiler = HotPathProfiler(sample_every=3)
        cache.attach_profiler(profiler)
        cache.access_many(*zip(*make_stream(900)))
        report = profiler.report()
        assert set(report["regions"]) == {0, 1}
        assert (
            sum(info["samples"] for info in report["regions"].values())
            == profiler.samples
        )

    def test_wall_override_for_sessions(self):
        profiler = HotPathProfiler()
        profiler.add_sample(0, 0.1, 0.0, 0.1, 0.0, 0.2)
        profiler.refs = 100
        report = profiler.report(wall_s=2.0)
        assert report["wall_s"] == 2.0
        assert report["refs_per_sec"] == pytest.approx(50.0)
        stage_total = sum(info["time_s"] for info in report["stages"].values())
        assert stage_total == pytest.approx(2.0)

    def test_format_report_renders(self):
        cache = build_cache()
        profiler = HotPathProfiler(sample_every=8)
        cache.attach_profiler(profiler)
        cache.access_many(*zip(*make_stream(800)))
        text = profiler.format_report()
        assert "hot-path profile" in text
        assert "remote-search" in text
        assert "resize" in text
        assert "per-region sampled share:" in text

    def test_reset(self):
        profiler = HotPathProfiler()
        profiler.add_sample(0, 1, 1, 1, 1, 1)
        profiler.add_stream(10, 0.5)
        profiler.add_resize(0.1)
        profiler.reset()
        assert profiler.samples == 0
        assert profiler.refs == 0
        assert profiler.wall_s == 0.0
        assert profiler.resize_fires == 0

    def test_bad_sample_every(self):
        with pytest.raises(ConfigError):
            HotPathProfiler(sample_every=0)

    def test_empty_report(self):
        report = HotPathProfiler().report()
        assert report["refs"] == 0
        assert report["refs_per_sec"] == 0.0
        assert all(
            info["share"] == 0.0 for info in report["stages"].values()
        )
