"""Property-based tests for the MESI bus against a reference model.

The reference: with working sets small enough that L1s never evict, a
core's access hits iff the core has touched the block before and no other
core has *written* it since the core's last touch. Any MESI implementation
must agree with this, access by access.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.coherence import MESIState, SnoopingBus
from repro.caches.setassoc import SetAssociativeCache

# 8 blocks over a 64-line L1: no capacity/conflict evictions possible.
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # core
        st.integers(min_value=0, max_value=7),  # block
        st.booleans(),  # write?
    ),
    min_size=1,
    max_size=200,
)


class ReferenceModel:
    """Hit/miss oracle under the no-eviction assumption."""

    def __init__(self, cores: int) -> None:
        self.valid = [set() for _ in range(cores)]

    def access(self, core: int, block: int, write: bool) -> bool:
        hit = block in self.valid[core]
        if write:
            for other, valid in enumerate(self.valid):
                if other != core:
                    valid.discard(block)
        self.valid[core].add(block)
        return hit


def build_bus() -> SnoopingBus:
    return SnoopingBus(
        3,
        SetAssociativeCache(1 << 20, 4),
        l1_size_bytes=4096,  # 64 lines >> 8 blocks
        l1_associativity=4,
    )


class TestAgainstReference:
    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_hit_miss_matches_reference(self, ops):
        bus = build_bus()
        reference = ReferenceModel(3)
        for core, block, write in ops:
            expected = reference.access(core, block, write)
            actual = bus.access(core, block, write)
            assert actual == expected, (core, block, write)

    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_swmr_invariant_throughout(self, ops):
        bus = build_bus()
        for core, block, write in ops:
            bus.access(core, block, write)
            bus.check_invariants()

    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_writer_always_ends_modified(self, ops):
        bus = build_bus()
        for core, block, write in ops:
            bus.access(core, block, write)
            if write:
                assert bus.l1s[core].state_of(block) is MESIState.MODIFIED

    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_states_match_validity_sets(self, ops):
        bus = build_bus()
        reference = ReferenceModel(3)
        for core, block, write in ops:
            reference.access(core, block, write)
            bus.access(core, block, write)
        for core in range(3):
            held = {
                block
                for block, state in bus.l1s[core].states.items()
                if state is not MESIState.INVALID
            }
            assert held == reference.valid[core]
