"""Unit tests for trace interleaving."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.trace.container import Trace
from repro.trace.interleave import interleave_random, interleave_round_robin


def make_trace(asid: int, n: int) -> Trace:
    return Trace(np.arange(n) * 64 + (asid << 30), asids=asid)


class TestRoundRobin:
    def test_alternates_sources(self):
        merged = interleave_round_robin([make_trace(0, 4), make_trace(1, 4)])
        assert merged.asids.tolist() == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_quantum(self):
        merged = interleave_round_robin(
            [make_trace(0, 4), make_trace(1, 4)], quantum=2
        )
        assert merged.asids.tolist() == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_preserves_per_source_order(self):
        a, b = make_trace(0, 6), make_trace(1, 6)
        merged = interleave_round_robin([a, b], quantum=3)
        ours = merged.addresses[merged.asids == 0]
        assert ours.tolist() == a.addresses.tolist()

    def test_truncates_to_shortest(self):
        merged = interleave_round_robin([make_trace(0, 10), make_trace(1, 4)])
        # 4 full rounds of 1+1
        assert len(merged) == 8

    def test_drain_consumes_everything(self):
        merged = interleave_round_robin(
            [make_trace(0, 10), make_trace(1, 4)], drain=True
        )
        assert len(merged) == 14
        assert (merged.asids == 0).sum() == 10

    def test_rejects_empty_source(self):
        with pytest.raises(ConfigError):
            interleave_round_robin([make_trace(0, 4), Trace([])])

    def test_rejects_no_sources(self):
        with pytest.raises(ConfigError):
            interleave_round_robin([])

    def test_rejects_bad_quantum(self):
        with pytest.raises(ConfigError):
            interleave_round_robin([make_trace(0, 4)], quantum=0)

    def test_quantum_longer_than_shortest_rejected(self):
        with pytest.raises(ConfigError):
            interleave_round_robin([make_trace(0, 2)], quantum=3)


class TestRandom:
    def test_deterministic_given_seed(self):
        sources = [make_trace(0, 100), make_trace(1, 100)]
        a = interleave_random(sources, seed=3)
        b = interleave_random(sources, seed=3)
        assert a == b

    def test_preserves_per_source_order(self):
        sources = [make_trace(0, 200), make_trace(1, 200)]
        merged = interleave_random(sources, seed=1)
        ours = merged.addresses[merged.asids == 0]
        assert ours.tolist() == sources[0].addresses[: len(ours)].tolist()

    def test_weights_shift_mix(self):
        sources = [make_trace(0, 3000), make_trace(1, 3000)]
        merged = interleave_random(sources, weights=[9, 1], seed=2)
        share0 = (merged.asids == 0).sum() / len(merged)
        assert share0 > 0.75

    def test_stops_before_any_source_overruns(self):
        sources = [make_trace(0, 10), make_trace(1, 1000)]
        merged = interleave_random(sources, seed=4)
        assert (merged.asids == 0).sum() <= 10
        assert (merged.asids == 1).sum() <= 1000

    def test_rejects_weight_count_mismatch(self):
        with pytest.raises(ConfigError):
            interleave_random([make_trace(0, 4)], weights=[1, 2])

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ConfigError):
            interleave_random(
                [make_trace(0, 4), make_trace(1, 4)], weights=[1, 0]
            )
