"""Unit tests for tile clusters and the Ulmo controller."""

import pytest

from repro.common.errors import ConfigError
from repro.molecular.cluster import TileCluster
from repro.molecular.region import CacheRegion


def make_cluster(tiles=2, molecules=4, lines=16) -> TileCluster:
    return TileCluster(
        cluster_id=0,
        tile_count=tiles,
        molecules_per_tile=molecules,
        lines_per_molecule=lines,
    )


class TestStructure:
    def test_tile_ids(self):
        cluster = TileCluster(1, 3, 2, 16, first_tile_id=4, first_molecule_id=100)
        assert [t.tile_id for t in cluster.tiles] == [4, 5, 6]
        assert cluster.tile(5).tile_id == 5
        ids = [m.molecule_id for t in cluster.tiles for m in t.molecules]
        assert ids == list(range(100, 106))

    def test_unknown_tile_rejected(self):
        with pytest.raises(ConfigError):
            make_cluster().tile(99)

    def test_counts(self):
        cluster = make_cluster(tiles=2, molecules=4)
        assert cluster.molecule_count == 8
        assert cluster.free_count == 8

    def test_rejects_zero_tiles(self):
        with pytest.raises(ConfigError):
            make_cluster(tiles=0)


class TestUlmoAllocation:
    def test_prefers_home_tile(self):
        cluster = make_cluster(tiles=2, molecules=4)
        granted = cluster.ulmo.allocate(asid=1, count=3, home_tile_id=1)
        assert all(m.tile_id == 1 for m in granted)

    def test_spills_to_other_tiles(self):
        cluster = make_cluster(tiles=2, molecules=4)
        granted = cluster.ulmo.allocate(asid=1, count=6, home_tile_id=0)
        assert len(granted) == 6
        assert {m.tile_id for m in granted} == {0, 1}
        # home tile fully used first
        assert sum(1 for m in granted if m.tile_id == 0) == 4

    def test_partial_grant_and_shortfall_stat(self):
        cluster = make_cluster(tiles=2, molecules=2)
        granted = cluster.ulmo.allocate(asid=1, count=10, home_tile_id=0)
        assert len(granted) == 4
        assert cluster.ulmo.stats.allocation_shortfalls == 1
        assert cluster.ulmo.stats.allocations == 4

    def test_exhausted_cluster_grants_nothing(self):
        cluster = make_cluster(tiles=1, molecules=2)
        cluster.ulmo.allocate(asid=1, count=2, home_tile_id=0)
        assert cluster.ulmo.allocate(asid=2, count=1, home_tile_id=0) == []


class TestUlmoSearch:
    def _region_spanning(self, cluster: TileCluster) -> CacheRegion:
        region = CacheRegion(asid=1, goal=None, home_tile_id=0)
        for molecule in cluster.ulmo.allocate(1, 6, home_tile_id=0):
            region.add_molecule(molecule, None)
        return region

    def test_remote_probe_cost_stops_at_found_tile(self):
        cluster = make_cluster(tiles=3, molecules=4)
        region = self._region_spanning(cluster)  # 4 in tile 0, 2 in tile 1
        assert region.molecules_by_tile == {0: 4, 1: 2}
        assert cluster.ulmo.remote_probe_cost(region, found_tile=1) == 2

    def test_remote_probe_cost_global_miss_probes_all_remote(self):
        cluster = make_cluster(tiles=3, molecules=4)
        region = CacheRegion(asid=1, goal=None, home_tile_id=0)
        for molecule in cluster.ulmo.allocate(1, 10, home_tile_id=0):
            region.add_molecule(molecule, None)
        # 4 in tile 0 (home), 4 in tile 1, 2 in tile 2
        assert cluster.ulmo.remote_probe_cost(region, found_tile=None) == 6

    def test_home_only_region_has_no_remote_cost(self):
        cluster = make_cluster(tiles=2, molecules=4)
        region = CacheRegion(asid=1, goal=None, home_tile_id=0)
        for molecule in cluster.ulmo.allocate(1, 2, home_tile_id=0):
            region.add_molecule(molecule, None)
        assert cluster.ulmo.remote_probe_cost(region, None) == 0
