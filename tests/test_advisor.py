"""Tests for the reuse-distance resize advisor (paper future work)."""

import pytest

from repro.common.errors import ConfigError
from repro.molecular.advisor import StackDistanceAdvisor
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.molecular.region import CacheRegion
from repro.molecular.cache import MolecularCache


def make_region(goal=0.1):
    return CacheRegion(asid=0, goal=goal, home_tile_id=0)


def feed(advisor, region, blocks):
    for block in blocks:
        advisor.observe(region, block)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            StackDistanceAdvisor(0)
        with pytest.raises(ConfigError):
            StackDistanceAdvisor(16, sampling_ratio=0)
        with pytest.raises(ConfigError):
            StackDistanceAdvisor(16, min_samples=0)

    def test_policy_validates_advisor_name(self):
        with pytest.raises(ConfigError):
            ResizePolicy(advisor="oracle")


class TestSampling:
    def test_unmanaged_regions_not_sampled(self):
        advisor = StackDistanceAdvisor(16, sampling_ratio=1)
        region = CacheRegion(asid=0, goal=None, home_tile_id=0)
        feed(advisor, region, range(100))
        assert advisor.samples_for(0) == 0

    def test_sampling_ratio_reduces_samples(self):
        dense = StackDistanceAdvisor(16, sampling_ratio=1)
        sparse = StackDistanceAdvisor(16, sampling_ratio=8)
        region = make_region()
        feed(dense, region, range(4000))
        feed(sparse, region, range(4000))
        assert dense.samples_for(0) == 4000
        assert 0 < sparse.samples_for(0) < 1500

    def test_reset_drops_profile(self):
        advisor = StackDistanceAdvisor(16, sampling_ratio=1)
        region = make_region()
        feed(advisor, region, range(100))
        advisor.reset(0)
        assert advisor.samples_for(0) == 0


class TestSizing:
    def test_no_answer_before_min_samples(self):
        advisor = StackDistanceAdvisor(16, sampling_ratio=1, min_samples=1000)
        region = make_region()
        feed(advisor, region, range(10))
        assert advisor.target_molecules(region) is None

    def test_loop_working_set_sized_correctly(self):
        # A loop over 160 blocks with run-length-1 reuse: capacity 160
        # blocks = 10 molecules of 16 lines meets any goal.
        advisor = StackDistanceAdvisor(16, sampling_ratio=1, min_samples=100)
        region = make_region(goal=0.05)
        stream = list(range(160)) * 40
        # interleave so distances are 159 not a scan pattern issue —
        # plain cyclic scan has distance 159 for every warm ref.
        feed(advisor, region, stream)
        target = advisor.target_molecules(region)
        assert target is not None
        assert 10 <= target <= 11

    def test_two_tier_working_set_prefers_small_tier_for_loose_goal(self):
        # 90% of refs hit a 32-block hot set (2 molecules), 10% sweep a
        # 3200-block ring. A 15% goal only needs the hot tier.
        import random

        rng = random.Random(1)
        advisor = StackDistanceAdvisor(16, sampling_ratio=1, min_samples=500)
        region = make_region(goal=0.15)
        stream = [
            rng.randrange(32) if rng.random() < 0.9 else 10_000 + rng.randrange(3200)
            for _ in range(20_000)
        ]
        feed(advisor, region, stream)
        target = advisor.target_molecules(region)
        assert target is not None
        assert target <= 8  # nowhere near the 200 molecules of the full ring

    def test_cold_miss_compensation(self):
        # A pure streaming workload (every block new) has a 100% cold miss
        # rate that no capacity fixes; with compensation the advisor
        # reports a tiny target instead of infinity.
        advisor = StackDistanceAdvisor(16, sampling_ratio=1, min_samples=100)
        region = make_region(goal=0.10)
        feed(advisor, region, [0] * 50)  # seed one warm block
        feed(advisor, region, range(1, 5000))
        target = advisor.target_molecules(region)
        assert target is not None
        assert target <= 2

    def test_scaled_sampling_recovers_magnitude(self):
        # With 1-in-8 spatial sampling the estimated capacity stays within
        # a factor ~2 of the dense estimate.
        stream = list(range(320)) * 30
        region = make_region(goal=0.05)
        dense = StackDistanceAdvisor(16, sampling_ratio=1, min_samples=100)
        sparse = StackDistanceAdvisor(16, sampling_ratio=8, min_samples=50)
        feed(dense, region, stream)
        feed(sparse, region, stream)
        dense_target = dense.target_molecules(region)
        sparse_target = sparse.target_molecules(region)
        assert dense_target is not None and sparse_target is not None
        assert 0.4 < sparse_target / dense_target < 2.5


class TestResizerIntegration:
    def _cache(self, advisor):
        config = MolecularCacheConfig(
            molecule_bytes=1024, molecules_per_tile=8, tiles_per_cluster=2,
            clusters=1, strict=False,
        )
        policy = ResizePolicy(
            period=500, trigger="constant", advisor=advisor,
            min_window_refs=16, min_molecules=1,
        )
        return MolecularCache(config, resize_policy=policy)

    def test_stack_advisor_attached(self):
        cache = self._cache("stack")
        assert cache.resizer.advisor is not None
        cache = self._cache("linear")
        assert cache.resizer.advisor is None

    def test_stack_advisor_rightsizes_oversized_partition(self):
        cache = self._cache("stack")
        region = cache.assign_application(0, goal=0.10, initial_molecules=12)
        # hot set of 32 blocks = 2 molecules; far noise ~5%
        import random

        rng = random.Random(2)
        for _ in range(8000):
            block = rng.randrange(32) if rng.random() < 0.95 else 50_000 + rng.randrange(100_000)
            cache.access_block(block, 0)
        assert region.molecule_count <= 6
        cache.resizer.check_consistency()

    def test_stack_advisor_grows_undersized_partition(self):
        cache = self._cache("stack")
        region = cache.assign_application(0, goal=0.10, initial_molecules=2)
        import random

        rng = random.Random(3)
        for _ in range(8000):
            cache.access_block(rng.randrange(120), 0)  # needs ~8 molecules
        assert region.molecule_count >= 7
