"""Campaign span tracing: recorder, runner wiring, export and analysis.

The recorder's output must be Chrome trace-event JSON (``traceEvents``
with ``ph: "X"`` complete spans in microseconds) so a recorded campaign
loads directly in Perfetto / ``chrome://tracing``. The runner must
record job/store spans on both execution paths, queue/chunk spans on the
pool path, retry markers on failures — and tolerate monkeypatched
workers whose outcomes carry no timestamps.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignConfig, CampaignRunner, ResultStore
from repro.campaign import runner as runner_mod
from repro.campaign.registry import get_experiment
from repro.common.errors import ConfigError
from repro.prof import SpanRecorder, load_trace, summarize_trace
from repro.prof.spans import DISPATCHER_TID, filter_trace

TINY_REFS = 20_000


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.02")


def run_campaign(tmp_path, jobs: int) -> SpanRecorder:
    spans = SpanRecorder()
    target = get_experiment("table1")
    specs = target.jobs(refs=TINY_REFS)
    runner = CampaignRunner(
        ResultStore(tmp_path / "store"),
        CampaignConfig(jobs=jobs, resume=False),
        spans=spans,
    )
    runner.run(specs, campaign="table1")
    return spans


class TestSpanRecorder:
    def test_span_and_instant_shape(self):
        recorder = SpanRecorder()
        recorder.name_track(DISPATCHER_TID, "dispatcher")
        recorder.span("work", "job", 10.0, 10.5, tid=7, args={"k": 1})
        recorder.instant("retry", "retry", 10.25)
        events = recorder.trace_events()
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert meta[0]["args"]["name"] == "dispatcher"
        assert len(spans) == 1 and len(instants) == 1
        # Times are normalised to µs from the earliest event.
        assert spans[0]["ts"] == 0.0
        assert spans[0]["dur"] == pytest.approx(0.5e6)
        assert instants[0]["ts"] == pytest.approx(0.25e6)
        assert spans[0]["args"] == {"k": 1}

    def test_negative_duration_clamped(self):
        recorder = SpanRecorder()
        recorder.span("backwards", "job", 5.0, 4.0)
        assert recorder.trace_events()[0]["dur"] == 0.0

    def test_export_load_round_trip(self, tmp_path):
        recorder = SpanRecorder()
        recorder.span("a", "job", 0.0, 1.0)
        path = recorder.export(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert load_trace(path) == payload["traceEvents"]

    def test_load_bare_array_form(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text('[{"ph": "X", "cat": "job", "ts": 0, "dur": 1}]')
        assert len(load_trace(path)) == 1

    def test_load_rejects_garbage(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ConfigError):
            load_trace(missing)
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(ConfigError):
            load_trace(broken)
        wrong_shape = tmp_path / "shape.json"
        wrong_shape.write_text('{"no_events": 1}')
        with pytest.raises(ConfigError):
            load_trace(wrong_shape)

    def test_filter_keeps_metadata(self):
        recorder = SpanRecorder()
        recorder.name_track(3, "worker 3")
        recorder.span("a", "job", 0.0, 1.0, tid=3)
        recorder.span("b", "store", 1.0, 2.0)
        events = filter_trace(recorder.trace_events(), "job")
        assert {e["ph"] for e in events} == {"M", "X"}
        assert all(e["cat"] == "job" for e in events if e["ph"] == "X")


class TestRunnerSpans:
    def test_serial_campaign_records_spans(self, tmp_path):
        spans = run_campaign(tmp_path, jobs=1)
        events = spans.trace_events()
        cats = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert {"campaign", "job", "store"} <= cats
        jobs = [e for e in events if e.get("cat") == "job"]
        assert len(jobs) == 11  # table1's job count
        # Every span lands inside the campaign span.
        campaign = next(e for e in events if e.get("cat") == "campaign")
        end = campaign["ts"] + campaign["dur"]
        for e in events:
            if e.get("ph") == "X":
                assert e["ts"] >= campaign["ts"] - 1e-3
                assert e["ts"] + e["dur"] <= end + 1e-3

    def test_pool_campaign_records_queue_spans(self, tmp_path):
        spans = run_campaign(tmp_path, jobs=2)
        events = spans.trace_events()
        cats = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert {"campaign", "job", "chunk", "queue", "store"} <= cats
        # Worker tracks are named after their pids.
        names = {
            e["args"]["name"] for e in events if e.get("ph") == "M"
        }
        assert "dispatcher" in names
        assert any(name.startswith("worker ") for name in names)

    def test_retry_marker_on_failure(self, tmp_path, monkeypatch):
        calls = {"n": 0}

        def flaky(payload):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return {"result": calls["n"], "elapsed": 0.0}

        monkeypatch.setattr(runner_mod, "execute_spec", flaky)
        spans = SpanRecorder()
        specs = get_experiment("table1").jobs(refs=TINY_REFS)[:2]
        runner = CampaignRunner(
            ResultStore(tmp_path / "store"),
            CampaignConfig(jobs=1, resume=False, backoff=0.0),
            spans=spans,
        )
        runner.run(specs, campaign="table1")
        events = spans.trace_events()
        retries = [
            e for e in events
            if e.get("ph") == "i" and e.get("cat") == "retry"
        ]
        assert len(retries) == 1
        # The fake outcome has no started/ended: job spans are skipped,
        # store spans still recorded.
        assert not any(e.get("cat") == "job" for e in events)
        assert sum(1 for e in events if e.get("cat") == "store") == 2

    def test_no_recorder_means_no_overhead_paths(self, tmp_path):
        # spans=None must leave outcomes untouched (the default path).
        specs = get_experiment("table1").jobs(refs=TINY_REFS)[:1]
        runner = CampaignRunner(
            ResultStore(tmp_path / "store"),
            CampaignConfig(jobs=1, resume=False),
        )
        result = runner.run(specs, campaign="table1")
        assert result.executed == 1


class TestSummarize:
    def test_summary_reports_categories_and_markers(self):
        recorder = SpanRecorder()
        recorder.span("j1", "job", 0.0, 1.0, tid=5)
        recorder.span("j2", "job", 1.0, 3.0, tid=5)
        recorder.span("q", "queue", 0.0, 0.5)
        recorder.instant("retry", "retry", 2.0)
        text = summarize_trace(recorder.trace_events())
        assert "3 spans" in text
        assert "job" in text and "queue" in text
        assert "queue-wait / execute ratio" in text
        assert "retry:retry: 1" in text

    def test_campaign_trace_summarises(self, tmp_path):
        spans = run_campaign(tmp_path, jobs=2)
        path = spans.export(tmp_path / "trace.json")
        text = summarize_trace(load_trace(path))
        assert "span trace:" in text
        assert "campaign" in text
