"""Tests for the internals inspectors."""

from repro.molecular.inspect import render_replacement_view, render_tile_map
from tests.conftest import make_cache


class TestReplacementView:
    def test_renders_rows_and_counters(self, tiny_config):
        cache = make_cache(tiny_config, placement="randy")
        region = cache.assign_application(0, goal=0.2, initial_molecules=3)
        cache.access_block(1, 0)
        text = render_replacement_view(region)
        assert "region asid=0" in text
        assert text.count("row ") == 3
        assert "misses" in text
        assert "m0[" in text

    def test_max_rows_truncation(self, tiny_config):
        cache = make_cache(tiny_config, placement="randy")
        region = cache.assign_application(0, initial_molecules=4)
        text = render_replacement_view(region, max_rows=2)
        assert text.count("row ") == 2
        assert "2 more rows" in text

    def test_occupancy_percentages(self, tiny_config):
        cache = make_cache(tiny_config, placement="randy")
        region = cache.assign_application(0, initial_molecules=1)
        molecule = region.rows[0][0]
        for block in range(molecule.n_lines // 2):
            molecule.fill(block)
        text = render_replacement_view(region)
        assert "[ 50%]" in text


class TestTileMap:
    def test_shows_ownership(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0, initial_molecules=2)
        cache.assign_application(1, tile_id=1, initial_molecules=1)
        text = render_tile_map(cache)
        assert "tile   0: 00.." in text
        assert "tile   1: 1..." in text

    def test_shows_shared_molecules(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.create_shared_region(0, 2)
        text = render_tile_map(cache)
        assert "SS.." in text

    def test_free_count_in_header(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, initial_molecules=3)
        text = render_tile_map(cache)
        assert "free 5/8" in text
