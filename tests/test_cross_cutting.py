"""Cross-cutting consistency tests: statistics, energy and structure must
agree with each other after realistic end-to-end runs."""

import pytest

from repro.common.errors import (
    AllocationError,
    ConfigError,
    ReproError,
    SimulationError,
    UnknownASIDError,
)
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.power import CactiModel, MolecularEnergyModel
from repro.sim import CMPRunConfig, CMPRunner
from repro.workloads import get_model


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (ConfigError, SimulationError, AllocationError, UnknownASIDError):
            assert issubclass(exc, ReproError)

    def test_config_error_is_value_error(self):
        assert issubclass(ConfigError, ValueError)

    def test_unknown_asid_is_key_error(self):
        assert issubclass(UnknownASIDError, KeyError)


@pytest.fixture(scope="module")
def loaded_cache():
    """A molecular cache after a realistic two-application run."""
    config = MolecularCacheConfig(
        molecule_bytes=8 * 1024,
        molecules_per_tile=32,
        tiles_per_cluster=4,
        clusters=1,
    )
    cache = MolecularCache(config, resize_policy=ResizePolicy())
    cache.assign_application(0, goal=0.10, tile_id=0)
    cache.assign_application(1, goal=0.10, tile_id=1)
    traces = {
        0: get_model("ammp").generate(60_000, seed=3, asid=0),
        1: get_model("parser").generate(60_000, seed=3, asid=1),
    }
    CMPRunner(cache, CMPRunConfig(miss_penalty=10, warmup_refs=0)).run(traces)
    return cache


class TestStatisticsConsistency:
    def test_structural_invariants(self, loaded_cache):
        loaded_cache.resizer.check_consistency()

    def test_per_asid_sums_to_total(self, loaded_cache):
        stats = loaded_cache.stats
        assert sum(c.accesses for c in stats.per_asid.values()) == stats.total.accesses
        assert sum(c.hits for c in stats.per_asid.values()) == stats.total.hits

    def test_region_counters_match_global(self, loaded_cache):
        stats = loaded_cache.stats
        for asid, region in loaded_cache.regions.items():
            assert region.total_accesses == stats.per_asid[asid].accesses
            assert region.total_misses == stats.per_asid[asid].misses

    def test_probe_counts_plausible(self, loaded_cache):
        stats = loaded_cache.stats
        # every access probes at least one molecule, at most a cluster
        assert stats.molecules_probed >= stats.total.accesses
        per_access = stats.mean_molecules_probed()
        assert 1.0 <= per_access <= loaded_cache.config.total_molecules

    def test_asid_comparisons_at_least_tile_per_access(self, loaded_cache):
        stats = loaded_cache.stats
        assert stats.asid_comparisons >= (
            stats.total.accesses * 1
        )  # every access fires the home tile's comparators

    def test_lines_fetched_equals_misses_at_unit_line(self, loaded_cache):
        stats = loaded_cache.stats
        assert stats.lines_fetched == stats.total.misses

    def test_latency_accumulates_sanely(self, loaded_cache):
        mean = loaded_cache.stats.mean_latency_cycles()
        model = loaded_cache.latency_model
        assert model.local_hit_cycles() <= mean
        assert mean <= model.params.memory_cycles + 100

    def test_molecule_occupancy_matches_presence(self, loaded_cache):
        for region in loaded_cache.regions.values():
            occupancy = sum(m.occupancy() for m in region.molecules())
            assert occupancy == len(region.presence)


class TestEnergyConsistency:
    def test_average_power_below_worst_case(self, loaded_cache):
        energy = MolecularEnergyModel(loaded_cache.config, CactiModel())
        average = energy.average_energy_nj(loaded_cache.stats)
        assert 0 < average <= energy.worst_case_energy_nj() * 1.01

    def test_energy_scales_with_frequency(self, loaded_cache):
        energy = MolecularEnergyModel(loaded_cache.config, CactiModel())
        p100 = energy.average_power_w(loaded_cache.stats, 100.0)
        p200 = energy.average_power_w(loaded_cache.stats, 200.0)
        assert p200 == pytest.approx(2 * p100)


class TestDeterminism:
    def test_identical_runs_identical_stats(self):
        def one_run():
            config = MolecularCacheConfig(
                molecule_bytes=8 * 1024, molecules_per_tile=32,
                tiles_per_cluster=4, clusters=1,
            )
            cache = MolecularCache(config, resize_policy=ResizePolicy())
            cache.assign_application(0, goal=0.2, tile_id=0)
            trace = get_model("crafty").generate(30_000, seed=8, asid=0)
            CMPRunner(cache, CMPRunConfig(10, 0)).run({0: trace})
            return (
                cache.stats.total.accesses,
                cache.stats.total.hits,
                cache.stats.molecules_probed,
                cache.stats.latency_cycles,
                cache.partition_sizes(),
            )

        assert one_run() == one_run()
