"""Tests for the trace characterisation toolkit."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.trace.analyze import TraceProfile, profile_by_asid, profile_trace
from repro.trace.container import Trace
from repro.workloads.model import BenchmarkModel, RingComponent


class TestProfileTrace:
    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            profile_trace(Trace([]))

    def test_basic_counts(self):
        trace = Trace([0, 64, 128, 0], writes=[True, False, False, False])
        profile = profile_trace(trace, curve_capacities=(4,))
        assert profile.references == 4
        assert profile.footprint_blocks == 3
        assert profile.write_fraction == pytest.approx(0.25)

    def test_sequential_fraction(self):
        # 0,1,2,3 then a jump: 3 of 4 deltas are +1
        trace = Trace(np.array([0, 1, 2, 3, 100]) * 64)
        profile = profile_trace(trace, curve_capacities=(4,))
        assert profile.sequential_fraction == pytest.approx(3 / 4)
        assert profile.mean_run_length == pytest.approx(5 / 2)  # runs of 4 and 1

    def test_streaming_model_profiles_sequential(self):
        model = BenchmarkModel(
            name="s",
            components=(RingComponent(weight=1.0, blocks=5_000, run_length=16),),
        )
        profile = profile_trace(model.generate(20_000, seed=1))
        assert profile.sequential_fraction > 0.8
        assert profile.mean_run_length > 8

    def test_miss_curve_monotone(self):
        model = BenchmarkModel(
            name="m",
            components=(
                RingComponent(weight=0.7, blocks=500),
                RingComponent(weight=0.3, blocks=20_000),
            ),
        )
        profile = profile_trace(
            model.generate(30_000, seed=2), curve_capacities=(256, 1024, 32768)
        )
        curve = profile.miss_curve
        assert curve[256] >= curve[1024] >= curve[32768]

    def test_as_dict(self):
        trace = Trace([0, 64])
        snapshot = profile_trace(trace, curve_capacities=(4,)).as_dict()
        assert snapshot["references"] == 2
        assert snapshot["footprint_bytes"] == 128
        assert 4 in snapshot["miss_curve"]


class TestProfileByAsid:
    def test_splits_applications(self):
        trace = Trace([0, 64, 1 << 20, 0], asids=[1, 1, 2, 1])
        profiles = profile_by_asid(trace, curve_capacities=(4,))
        assert set(profiles) == {1, 2}
        assert profiles[1].references == 3
        assert profiles[2].references == 1

    def test_profiles_are_trace_profiles(self):
        trace = Trace([0, 64], asids=[0, 1])
        profiles = profile_by_asid(trace, curve_capacities=(4,))
        assert all(isinstance(p, TraceProfile) for p in profiles.values())
