"""Unit tests for the two-level cache hierarchy."""

import pytest

from repro.caches.hierarchy import CacheHierarchy
from repro.caches.setassoc import SetAssociativeCache
from repro.common.errors import ConfigError


def make_hierarchy(cores=2, l1_size=1024, l2_size=8192):
    return CacheHierarchy(
        l1_factory=lambda: SetAssociativeCache(l1_size, 2, 64),
        l2=SetAssociativeCache(l2_size, 4, 64),
        cores=cores,
    )


class TestRouting:
    def test_default_asid_to_core_mapping(self):
        h = make_hierarchy(cores=2)
        assert h.core_for(0) == 0
        assert h.core_for(1) == 1
        assert h.core_for(2) == 0

    def test_explicit_mapping(self):
        h = CacheHierarchy(
            l1_factory=lambda: SetAssociativeCache(1024, 2, 64),
            l2=SetAssociativeCache(8192, 4, 64),
            cores=2,
            asid_to_core={7: 1},
        )
        assert h.core_for(7) == 1

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            make_hierarchy(cores=0)


class TestFiltering:
    def test_l1_hit_never_reaches_l2(self):
        h = make_hierarchy()
        h.access_block(5, asid=0)
        before = h.l2_accesses
        result = h.access_block(5, asid=0)
        assert result.hit
        assert h.l2_accesses == before

    def test_l1_miss_goes_to_l2(self):
        h = make_hierarchy()
        h.access_block(5, asid=0)
        assert h.l2_accesses == 1

    def test_l2_hit_after_remote_core_fill(self):
        # Core 0 brings a block into the shared L2; core 1's L1 misses but
        # the L2 hits.
        h = make_hierarchy()
        h.access_block(5, asid=0)
        result = h.access_block(5, asid=1)
        assert result.hit
        assert result.extra.get("l1_miss")

    def test_private_l1s_do_not_share(self):
        h = make_hierarchy()
        h.access_block(5, asid=0)
        assert h.l1s[1].stats.total.accesses == 0

    def test_run_helper(self):
        h = make_hierarchy()
        h.run([1, 1, 2], [0, 0, 1])
        assert h.l1s[0].stats.total.accesses == 2
        assert h.l2_accesses == 2

    def test_l1_miss_rate_filtering_effect(self):
        h = make_hierarchy()
        for _ in range(10):
            h.access_block(3, asid=0)
        assert h.l1s[0].stats.miss_rate() == pytest.approx(0.1)
        assert h.l2.stats.total.accesses == 1
