"""Unit tests for the core value types."""

from repro.common.types import Access, AccessResult, AccessType


class TestAccess:
    def test_defaults_to_read(self):
        access = Access(address=0x1000)
        assert access.kind is AccessType.READ
        assert not access.is_write
        assert access.asid == 0

    def test_write(self):
        access = Access(0x40, asid=3, kind=AccessType.WRITE)
        assert access.is_write
        assert access.asid == 3

    def test_frozen(self):
        access = Access(0x40)
        try:
            access.address = 1  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("Access should be immutable")

    def test_equality(self):
        assert Access(1, 2) == Access(1, 2)
        assert Access(1, 2) != Access(1, 3)


class TestAccessResult:
    def test_hit(self):
        result = AccessResult(hit=True)
        assert not result.miss
        assert result.molecules_probed == 0

    def test_miss_with_probes(self):
        result = AccessResult(
            hit=False, molecules_probed_local=3, molecules_probed_remote=2
        )
        assert result.miss
        assert result.molecules_probed == 5

    def test_eviction_metadata(self):
        result = AccessResult(hit=False, evicted_block=99, writeback=True)
        assert result.evicted_block == 99
        assert result.writeback

    def test_lines_filled_default(self):
        assert AccessResult(hit=False).lines_filled == 1
