"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.rng import XorShift64
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy


@pytest.fixture
def rng() -> XorShift64:
    return XorShift64(seed=42)


@pytest.fixture
def tiny_config() -> MolecularCacheConfig:
    """A deliberately small geometry for fast unit tests.

    4 molecules of 1 KB (16 lines of 64 B) per tile, 2 tiles per cluster,
    1 cluster — 8 molecules, 8 KB total.
    """
    return MolecularCacheConfig(
        molecule_bytes=1024,
        line_bytes=64,
        molecules_per_tile=4,
        tiles_per_cluster=2,
        clusters=1,
        strict=False,
    )


@pytest.fixture
def small_config() -> MolecularCacheConfig:
    """A mid-size geometry: 16 molecules of 8 KB per tile, 4 tiles,
    1 cluster — 512 KB total."""
    return MolecularCacheConfig(
        molecule_bytes=8 * 1024,
        molecules_per_tile=16,
        tiles_per_cluster=4,
        clusters=1,
        strict=False,
    )


@pytest.fixture
def no_resize_policy() -> ResizePolicy:
    """A resize policy that effectively never fires."""
    return ResizePolicy(period=10**9, trigger="constant")


def make_cache(
    config: MolecularCacheConfig,
    placement: str = "randy",
    resize: ResizePolicy | None = None,
) -> MolecularCache:
    return MolecularCache(
        config,
        resize_policy=resize or ResizePolicy(period=10**9, trigger="constant"),
        placement=placement,
        rng=XorShift64(seed=7),
    )
