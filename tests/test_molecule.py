"""Unit tests for the Molecule building block."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.molecular.molecule import FREE, Molecule


def make_molecule(n_lines=16) -> Molecule:
    return Molecule(molecule_id=0, tile_id=0, cluster_id=0, n_lines=n_lines)


class TestConfiguration:
    def test_starts_free(self):
        assert make_molecule().is_free

    def test_configure_claims(self):
        m = make_molecule()
        m.configure(asid=3)
        assert not m.is_free
        assert m.asid == 3

    def test_double_configure_rejected(self):
        m = make_molecule()
        m.configure(asid=3)
        with pytest.raises(SimulationError):
            m.configure(asid=4)

    def test_negative_asid_rejected_unless_shared(self):
        m = make_molecule()
        with pytest.raises(ConfigError):
            m.configure(asid=-5)

    def test_shared_configuration(self):
        m = make_molecule()
        m.configure(asid=-2, shared=True)
        assert m.shared
        assert not m.is_free

    def test_release_flushes_and_frees(self):
        m = make_molecule()
        m.configure(asid=1)
        m.fill(5, dirty=True)
        flushed = m.release()
        assert flushed == [(5, True)]
        assert m.is_free
        assert m.occupancy() == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            Molecule(0, 0, 0, n_lines=10)
        with pytest.raises(ConfigError):
            Molecule(0, 0, 0, n_lines=1)


class TestDirectMappedArray:
    def test_index_of(self):
        m = make_molecule(n_lines=16)
        assert m.index_of(0) == 0
        assert m.index_of(16) == 0
        assert m.index_of(21) == 5

    def test_probe_miss_then_hit(self):
        m = make_molecule()
        assert not m.probe(5)
        m.fill(5)
        assert m.probe(5)

    def test_aliasing_blocks_conflict(self):
        m = make_molecule(n_lines=16)
        m.fill(3)
        evicted = m.fill(19)  # 19 % 16 == 3
        assert evicted == (3, False)
        assert not m.probe(3)
        assert m.probe(19)

    def test_refill_same_block_not_eviction(self):
        m = make_molecule()
        m.fill(3)
        assert m.fill(3) is None

    def test_dirty_bit_lifecycle(self):
        m = make_molecule(n_lines=16)
        m.fill(3)
        m.mark_dirty(3)
        assert m.fill(19) == (3, True)

    def test_mark_dirty_requires_residency(self):
        m = make_molecule()
        with pytest.raises(SimulationError):
            m.mark_dirty(3)

    def test_invalidate(self):
        m = make_molecule()
        m.fill(3, dirty=True)
        assert m.invalidate(3) is True  # was dirty
        assert not m.probe(3)
        assert m.invalidate(3) is False  # already gone

    def test_flush_returns_all_lines(self):
        m = make_molecule(n_lines=16)
        m.fill(1)
        m.fill(2, dirty=True)
        flushed = dict(m.flush())
        assert flushed == {1: False, 2: True}
        assert m.occupancy() == 0

    def test_resident_blocks_and_occupancy(self):
        m = make_molecule(n_lines=16)
        for block in (1, 2, 3):
            m.fill(block)
        assert sorted(m.resident_blocks()) == [1, 2, 3]
        assert m.occupancy() == 3

    def test_fill_counter(self):
        m = make_molecule()
        m.fill(1)
        m.fill(2)
        assert m.fills == 2
