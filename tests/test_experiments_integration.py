"""Integration tests: every experiment harness runs end-to-end at small
scale and yields sane, shape-correct results.

These use tiny reference counts — the benches run the real thing; here we
only verify the plumbing and the coarse qualitative properties.
"""

import pytest

from repro.analysis.metrics import DeviationMode
from repro.sim.experiments import (
    run_figure5,
    run_figure6,
    run_table1,
    run_table2,
    run_table4,
    run_table5,
)
from repro.sim.experiments.figure5 import goals_for_graph
from repro.common.errors import ConfigError


@pytest.fixture(autouse=True)
def no_external_scale(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)


class TestTable1:
    def test_small_run_shape(self):
        result = run_table1(refs_per_app=40_000)
        assert len(result.combos) == 4 + 6 + 1
        # interference: parser worse with all four than alone
        alone = result.miss_rate(("parser",), "parser")
        shared = result.miss_rate(("art", "mcf", "ammp", "parser"), "parser")
        assert shared > alone
        # formatting runs
        assert "Table 1" in result.format()

    def test_mcf_always_bad(self):
        result = run_table1(refs_per_app=40_000)
        for combo, rates in result.combos.items():
            if "mcf" in combo:
                assert rates["mcf"] > 0.4


class TestFigure5:
    def test_goals_for_graphs(self):
        assert goals_for_graph("A") == {0: 0.1, 1: 0.1, 2: 0.1, 3: 0.1}
        graph_b = goals_for_graph("B")
        assert graph_b[3] is None  # mcf unmanaged
        with pytest.raises(ConfigError):
            goals_for_graph("C")

    def test_small_sweep_shape(self):
        result = run_figure5(
            graph="B", refs_per_app=60_000, sizes_mb=(1, 4)
        )
        assert set(result.series) == {
            "Direct Mapped", "2-way", "4-way", "8-way",
            "Molecular (Random)", "Molecular (Randy)",
        }
        for series in result.series.values():
            assert len(series) == 2
            assert all(0.0 <= value <= 1.0 for value in series)
        # the paper's threshold behaviour: molecular improves with size
        randy = result.series["Molecular (Randy)"]
        assert randy[1] < randy[0]
        # traditional: bigger and more associative helps
        assert result.series["4-way"][1] <= result.series["Direct Mapped"][0]
        assert "Figure 5" in result.format()


class TestTable2AndFriends:
    @pytest.fixture(scope="class")
    def table2(self):
        return run_table2(refs_per_app=40_000)

    def test_all_configs_present(self, table2):
        assert set(table2.deviations) == {
            "4MB 4way", "4MB 8way", "8MB 4way", "8MB 8way",
            "6MB Molecular Randy", "6MB Molecular Random",
        }
        assert all(0 <= v <= 1 for v in table2.deviations.values())
        assert "Table 2" in table2.format()

    def test_molecular_runs_recorded(self, table2):
        assert set(table2.molecular_runs) == {"randy", "random"}
        run = table2.molecular_runs["randy"]
        assert run.cache.stats.total.accesses > 0

    def test_figure6_from_table2(self, table2):
        result = run_figure6(table2=table2)
        assert set(result.hpm) == {"randy", "random"}
        assert len(result.hpm["randy"]) == 12
        assert all(value >= 0 for value in result.hpm["randy"].values())
        assert result.mean_molecules["randy"] > 0
        assert "Figure 6" in result.format()

    def test_table5_from_table2(self, table2):
        result = run_table5(table2=table2)
        assert {row.cache_type for row in result.rows} == {"8MB 4way", "8MB 8way"}
        for row in result.rows:
            assert row.traditional_pdp > 0
            assert row.molecular_pdp > 0
        assert "Table 5" in result.format()

    def test_table4_with_stats(self, table2):
        stats = table2.molecular_runs["randy"].cache.stats
        result = run_table4(mixed_stats=stats)
        assert len(result.rows) == 4
        row8 = result.row("8MB 8way")
        # the headline: molecular saves power vs the 8-way baseline
        assert row8.molecular_worst_power_w < row8.traditional_power_w
        assert 0.1 < result.headline_advantage < 0.5
        # average (measured) power never exceeds worst case
        for row in result.rows:
            assert row.molecular_average_power_w <= row.molecular_worst_power_w * 1.05
        assert "Table 4" in result.format()


class TestDeviationModes:
    def test_excess_only_leq_absolute(self):
        absolute = run_figure5(
            graph="B", refs_per_app=30_000, sizes_mb=(1,),
            deviation_mode=DeviationMode.ABSOLUTE,
        )
        excess = run_figure5(
            graph="B", refs_per_app=30_000, sizes_mb=(1,),
            deviation_mode=DeviationMode.EXCESS_ONLY,
        )
        for name in absolute.series:
            assert excess.series[name][0] <= absolute.series[name][0] + 1e-9
