"""Unit tests for cache regions and the replacement view."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.molecular.molecule import Molecule
from repro.molecular.region import CacheRegion


def make_molecule(mid=0, tile=0, lines=16) -> Molecule:
    m = Molecule(mid, tile, 0, lines)
    m.configure(asid=1)
    return m


def make_region(molecules=4, rows_of_one=True, lines=16, **kwargs) -> CacheRegion:
    defaults = dict(asid=1, goal=0.1, home_tile_id=0)
    defaults.update(kwargs)
    region = CacheRegion(**defaults)
    for index in range(molecules):
        region.add_molecule(
            make_molecule(index, lines=lines), None if rows_of_one else (0 if index else None)
        )
    return region


class TestValidation:
    def test_rejects_bad_goal(self):
        with pytest.raises(ConfigError):
            CacheRegion(asid=1, goal=1.5, home_tile_id=0)

    def test_rejects_bad_line_multiplier(self):
        with pytest.raises(ConfigError):
            CacheRegion(asid=1, goal=None, home_tile_id=0, line_multiplier=3)

    def test_rejects_foreign_molecule(self):
        region = CacheRegion(asid=1, goal=None, home_tile_id=0)
        foreign = Molecule(0, 0, 0, 16)
        foreign.configure(asid=2)
        with pytest.raises(SimulationError):
            region.add_molecule(foreign, None)


class TestReplacementView:
    def test_rows_of_one(self):
        region = make_region(4)
        assert region.row_max == 4
        assert region.molecule_count == 4
        assert [len(r) for r in region.rows] == [1, 1, 1, 1]

    def test_single_row(self):
        region = make_region(4, rows_of_one=False)
        assert region.row_max == 1
        assert len(region.rows[0]) == 4

    def test_row_of_formula(self):
        region = make_region(4, lines=16)
        # row = (block // lines_per_molecule) % row_max
        assert region.row_of(0, 16) == 0
        assert region.row_of(16, 16) == 1
        assert region.row_of(64, 16) == 0

    def test_row_of_empty_region_rejected(self):
        region = CacheRegion(asid=1, goal=None, home_tile_id=0)
        with pytest.raises(SimulationError):
            region.row_of(0, 16)

    def test_add_to_specific_row(self):
        region = make_region(2)
        extra = make_molecule(9)
        region.add_molecule(extra, 1)
        assert len(region.rows[1]) == 2

    def test_add_out_of_range_row_rejected(self):
        region = make_region(2)
        with pytest.raises(SimulationError):
            region.add_molecule(make_molecule(9), 5)

    def test_detach_shrinks_view(self):
        region = make_region(3)
        victim = region.rows[1][0]
        region.detach_molecule(victim)
        assert region.row_max == 2
        assert region.molecule_count == 2

    def test_detach_unknown_rejected(self):
        region = make_region(2)
        with pytest.raises(SimulationError):
            region.detach_molecule(make_molecule(42))

    def test_detach_flushes_presence(self):
        region = make_region(2)
        molecule = region.rows[0][0]
        region.install(0, molecule, 0, write=True)
        flushed = region.detach_molecule(molecule)
        assert (0, True) in flushed
        assert region.lookup(0) is None


class TestLookupAndInstall:
    def test_install_then_lookup(self):
        region = make_region(2)
        molecule = region.rows[0][0]
        region.install(5, molecule, 0, write=False)
        assert region.lookup(5) is molecule
        assert region.lookup_by_probe(5) is molecule

    def test_install_eviction_updates_presence(self):
        region = make_region(1, lines=16)
        molecule = region.rows[0][0]
        region.install(3, molecule, 0, write=False)
        evicted = region.install(19, molecule, 0, write=False)  # aliases 3
        assert (3, False) in evicted
        assert region.lookup(3) is None
        assert region.lookup(19) is molecule

    def test_install_supersedes_copy_in_other_molecule(self):
        region = make_region(2, lines=16)
        first, second = region.rows[0][0], region.rows[1][0]
        region.install(5, first, 0, write=True)
        region.install(5, second, 1, write=False)
        assert region.lookup(5) is second
        assert not first.probe(5)

    def test_row_miss_counters(self):
        region = make_region(2)
        region.install(0, region.rows[0][0], 0, write=False)
        region.install(1, region.rows[1][0], 1, write=False)
        region.install(2, region.rows[1][0], 1, write=False)
        assert region.row_misses == [1, 2]

    def test_contributing_tiles_home_first(self):
        region = CacheRegion(asid=1, goal=None, home_tile_id=2)
        region.add_molecule(make_molecule(0, tile=0), None)
        region.add_molecule(make_molecule(1, tile=2), None)
        region.add_molecule(make_molecule(2, tile=3), None)
        assert region.contributing_tiles() == [2, 0, 3]

    def test_contributing_tiles_cache_invalidated_on_change(self):
        region = make_region(1)
        assert region.contributing_tiles() == [0]
        region.add_molecule(make_molecule(5, tile=7), None)
        assert region.contributing_tiles() == [0, 7]


class TestVariableLineSize:
    def test_unit_fetch_fills_siblings(self):
        region = make_region(1, lines=16, line_multiplier=4)
        molecule = region.rows[0][0]
        region.install(5, molecule, 0, write=False)
        # the aligned group [4..7] is resident
        for block in (4, 5, 6, 7):
            assert region.lookup(block) is molecule
        assert region.lookup(3) is None

    def test_write_marks_only_target_dirty(self):
        region = make_region(1, lines=16, line_multiplier=2)
        molecule = region.rows[0][0]
        region.install(5, molecule, 0, write=True)
        assert molecule.dirty[molecule.index_of(5)]
        assert not molecule.dirty[molecule.index_of(4)]

    def test_unit_replacement_evicts_group(self):
        region = make_region(1, lines=8, line_multiplier=2)
        molecule = region.rows[0][0]
        region.install(0, molecule, 0, write=False)  # blocks 0,1
        evicted = region.install(8, molecule, 0, write=False)  # aliases 0,1
        evicted_blocks = {b for b, _ in evicted}
        assert evicted_blocks == {0, 1}


class TestAccounting:
    def test_record_access_window_and_total(self):
        region = make_region(2)
        region.record_access(hit=True)
        region.record_access(hit=False)
        assert region.window_accesses == 2
        assert region.window_misses == 1
        assert region.miss_rate == pytest.approx(0.5)
        region.reset_window()
        assert region.window_accesses == 0
        assert region.total_accesses == 2

    def test_window_miss_rate_empty(self):
        assert make_region(1).window_miss_rate == 0.0

    def test_mean_molecules_integral(self):
        region = make_region(2)
        region.record_access(hit=True)
        region.add_molecule(make_molecule(9), 0)
        region.record_access(hit=True)
        assert region.mean_molecules == pytest.approx((2 + 3) / 2)

    def test_hits_per_molecule(self):
        region = make_region(2)
        for _ in range(4):
            region.record_access(hit=True)
        # hit rate 1.0, mean molecules 2 -> HPM 0.5
        assert region.hits_per_molecule() == pytest.approx(0.5)

    def test_hpm_empty_region(self):
        assert make_region(1).hits_per_molecule() == 0.0
