"""Unit tests for the set-associative cache simulator."""

import pytest

from repro.caches.setassoc import SetAssociativeCache
from repro.common.errors import ConfigError
from repro.common.types import Access, AccessType


def make_cache(size=4096, assoc=2, line=64, policy="lru"):
    return SetAssociativeCache(size, assoc, line, policy)


class TestValidation:
    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ConfigError):
            make_cache(size=3000)

    def test_rejects_bad_line(self):
        with pytest.raises(ConfigError):
            make_cache(line=48)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ConfigError):
            make_cache(assoc=0)

    def test_rejects_assoc_exceeding_lines(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(128, 4, 64)

    def test_geometry(self):
        cache = make_cache(size=4096, assoc=2, line=64)
        assert cache.num_sets == 32

    def test_fully_associative_geometry(self):
        cache = SetAssociativeCache(1024, 16, 64)
        assert cache.num_sets == 1


class TestBasicBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        assert cache.access_block(5).miss
        assert cache.access_block(5).hit

    def test_different_blocks_independent(self):
        cache = make_cache()
        cache.access_block(5)
        assert cache.access_block(6).miss

    def test_access_by_address(self):
        cache = make_cache()
        assert cache.access(Access(0x1000)).miss
        assert cache.access(Access(0x1000 + 63)).hit  # same line
        assert cache.access(Access(0x1040)).miss  # next line

    def test_occupancy_grows_to_capacity(self):
        cache = make_cache(size=1024, assoc=2)  # 16 lines
        for block in range(100):
            cache.access_block(block)
        assert cache.occupancy() == 16

    def test_contains_block(self):
        cache = make_cache()
        cache.access_block(9)
        assert cache.contains_block(9)
        assert not cache.contains_block(10)

    def test_resident_blocks(self):
        cache = make_cache()
        for block in (1, 2, 3):
            cache.access_block(block)
        assert sorted(cache.resident_blocks()) == [1, 2, 3]


class TestEviction:
    def test_lru_eviction_within_set(self):
        cache = make_cache(size=1024, assoc=2)  # 8 sets
        sets = cache.num_sets
        a, b, c = 0, sets, 2 * sets  # all map to set 0
        cache.access_block(a)
        cache.access_block(b)
        cache.access_block(a)  # refresh a
        result = cache.access_block(c)  # evicts b
        assert result.evicted_block == b
        assert cache.contains_block(a)
        assert not cache.contains_block(b)

    def test_direct_mapped_conflicts(self):
        cache = make_cache(size=1024, assoc=1)
        sets = cache.num_sets
        cache.access_block(0)
        assert cache.access_block(sets).evicted_block == 0
        assert cache.access_block(0).miss

    def test_eviction_counted_per_owner_asid(self):
        cache = make_cache(size=1024, assoc=1)
        sets = cache.num_sets
        cache.access_block(0, asid=1)
        cache.access_block(sets, asid=2)  # evicts asid 1's line
        assert cache.stats.per_asid[1].evictions == 1

    def test_fifo_differs_from_lru(self):
        size, assoc = 1024, 2
        lru = make_cache(size, assoc, policy="lru")
        fifo = make_cache(size, assoc, policy="fifo")
        sets = lru.num_sets
        pattern = [0, sets, 0, 2 * sets, 0]
        lru_hits = sum(lru.access_block(b).hit for b in pattern)
        fifo_hits = sum(fifo.access_block(b).hit for b in pattern)
        # LRU keeps block 0 alive (3 touches); FIFO evicts it.
        assert lru_hits > fifo_hits


class TestWriteback:
    def test_dirty_eviction_reports_writeback(self):
        cache = make_cache(size=1024, assoc=1)
        sets = cache.num_sets
        cache.access_block(0, write=True)
        assert cache.access_block(sets).writeback

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(size=1024, assoc=1)
        sets = cache.num_sets
        cache.access_block(0, write=False)
        assert not cache.access_block(sets).writeback

    def test_write_hit_marks_dirty(self):
        cache = make_cache(size=1024, assoc=1)
        sets = cache.num_sets
        cache.access_block(0)
        cache.access_block(0, write=True)
        assert cache.access_block(sets).writeback

    def test_flush_reports_dirty_lines(self):
        cache = make_cache()
        cache.access_block(1, write=True)
        cache.access_block(2, write=False)
        assert cache.flush() == 1
        assert cache.occupancy() == 0


class TestStatsIntegration:
    def test_miss_rate(self):
        cache = make_cache()
        for _ in range(3):
            cache.access_block(7)
        assert cache.stats.miss_rate() == pytest.approx(1 / 3)

    def test_per_asid_rates(self):
        cache = make_cache()
        cache.access_block(1, asid=1)
        cache.access_block(1, asid=1)
        cache.access_block(2, asid=2)
        assert cache.stats.miss_rate(1) == pytest.approx(0.5)
        assert cache.stats.miss_rate(2) == pytest.approx(1.0)

    def test_occupancy_by_asid(self):
        cache = make_cache()
        cache.access_block(1, asid=1)
        cache.access_block(2, asid=2)
        cache.access_block(3, asid=2)
        assert cache.occupancy_by_asid() == {1: 1, 2: 2}

    def test_run_helper(self):
        cache = make_cache()
        stats = cache.run([1, 2, 1, 2])
        assert stats.total.accesses == 4
        assert stats.total.hits == 2

    def test_run_with_parallel_columns(self):
        cache = make_cache()
        cache.run([1, 1], asids=[1, 2], writes=[False, True])
        assert cache.stats.per_asid[1].accesses == 1
        assert cache.stats.per_asid[2].accesses == 1


class TestLRUStackProperty:
    def test_bigger_lru_cache_never_worse(self):
        """LRU inclusion: hits(size) is monotone in size for same assoc
        ratio — checked on a concrete pseudo-random stream."""
        import random

        rng = random.Random(7)
        stream = [rng.randrange(600) for _ in range(6000)]
        hits = []
        for size in (1024, 2048, 4096, 8192):
            cache = SetAssociativeCache(size, size // 64, 64, "lru")  # fully assoc
            hits.append(sum(cache.access_block(b).hit for b in stream))
        assert hits == sorted(hits)
