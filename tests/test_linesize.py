"""Tests for the variable (per-region) line size — paper section 3.2."""

import pytest

from repro.molecular.config import ResizePolicy
from repro.workloads.model import BenchmarkModel, RingComponent
from tests.conftest import make_cache


class TestUnitFetch:
    def test_miss_fetches_whole_unit(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, line_multiplier=4, initial_molecules=2)
        result = cache.access_block(5, 0)
        assert result.miss
        assert result.lines_filled == 4
        for sibling in (4, 5, 6, 7):
            assert cache.access_block(sibling, 0).hit
        assert cache.access_block(8, 0).miss  # next unit

    def test_lines_fetched_stat(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, line_multiplier=2, initial_molecules=2)
        cache.access_block(0, 0)
        cache.access_block(10, 0)
        assert cache.stats.lines_fetched == 4

    def test_hits_still_base_line_granularity(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, line_multiplier=2, initial_molecules=2)
        cache.access_block(0, 0)
        hit = cache.access_block(1, 0)
        assert hit.hit
        assert hit.lines_filled == 1

    def test_regions_may_differ_in_line_size(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, line_multiplier=1, initial_molecules=2)
        cache.assign_application(1, line_multiplier=4, initial_molecules=2)
        cache.access_block(0, 0)
        assert cache.access_block(1, 0).miss  # k=1: sibling not fetched
        cache.access_block(16, 1)
        assert cache.access_block(17, 1).hit  # k=4: sibling fetched


class TestLineSizeBenefit:
    def test_larger_lines_help_streaming_workload(self, small_config):
        """High spatial locality -> fewer misses with a bigger line, the
        behaviour motivating section 3.2."""
        stream = BenchmarkModel(
            name="stream",
            components=(RingComponent(weight=1.0, blocks=60_000, run_length=32),),
        )
        trace = stream.generate(30_000, seed=2)
        rates = {}
        for multiplier in (1, 4):
            cache = make_cache(small_config)
            cache.assign_application(
                0, line_multiplier=multiplier, initial_molecules=16
            )
            for block in trace.blocks().tolist():
                cache.access_block(block, 0)
            rates[multiplier] = cache.stats.miss_rate(0)
        assert rates[4] < rates[1] * 0.5

    def test_larger_lines_hurt_strided_access(self, small_config):
        """Anti-spatial access (stride 8) -> the 7 prefetched sibling lines
        of each unit are dead weight and big lines waste capacity."""
        import random

        rng = random.Random(5)
        # 700 isolated blocks: one used block per aligned 8-block group,
        # at a random offset so direct-mapped indices stay dense.
        used = [group * 8 + rng.randrange(8) for group in rng.sample(range(8192), 700)]
        stream = [rng.choice(used) for _ in range(30_000)]
        rates = {}
        for multiplier in (1, 8):
            cache = make_cache(small_config)
            cache.assign_application(
                0, line_multiplier=multiplier, initial_molecules=8
            )
            for block in stream:
                cache.access_block(block, 0)
            rates[multiplier] = cache.stats.miss_rate(0)
        # 900 used blocks fit in 8 molecules (1024 lines) at k=1; at k=8
        # only ~128 useful blocks fit.
        assert rates[8] > rates[1] * 2
