"""Zero-overhead contract: profiling off costs nothing per reference.

Mirrors the audit subsystem's structural guard: instead of racing the
clock, count the ``cache.profiler`` attribute lookups the access paths
make. The contract is one lookup per ``access_many``/``access_session``
*call* — never one per reference — so the lookup count must not grow
with the trace length. With no profiler attached (or a disabled one),
the dispatched engine must be the ordinary ``AccessEngine``, not the
instrumented twin.
"""

from __future__ import annotations

from repro.common.rng import XorShift64
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.molecular.engine import AccessEngine
from repro.prof import HotPathProfiler
from repro.prof.engine import ProfiledAccessEngine


class CountingCache(MolecularCache):
    """A MolecularCache that counts reads of its ``profiler`` attribute."""

    def __init__(self, *args, **kwargs):
        self.profiler_lookups = 0
        self._profiler = None
        super().__init__(*args, **kwargs)

    @property
    def profiler(self):
        self.profiler_lookups += 1
        return self._profiler

    @profiler.setter
    def profiler(self, value):
        self._profiler = value


def build_cache() -> CountingCache:
    config = MolecularCacheConfig(
        molecule_bytes=1024,
        molecules_per_tile=8,
        tiles_per_cluster=2,
        clusters=1,
        strict=False,
    )
    cache = CountingCache(
        config,
        resize_policy=ResizePolicy(period=200, min_window_refs=16),
        rng=XorShift64(3),
    )
    cache.assign_application(0, goal=0.3, initial_molecules=3, tile_id=0)
    return cache


def make_blocks(n: int) -> list[int]:
    rng = XorShift64(9)
    return [rng.randrange(400) for _ in range(n)]


def count_resize_fires(monkeypatch) -> list[int]:
    """Patch the resizer so every round appends to the returned list."""
    from repro.molecular import resize as resize_mod

    fires: list[int] = []
    real_all = resize_mod.Resizer._resize_all
    real_one = resize_mod.Resizer._resize_one

    def counting_all(self, total_accesses):
        fires.append(1)
        return real_all(self, total_accesses)

    def counting_one(self, region, total_accesses):
        fires.append(1)
        return real_one(self, region, total_accesses)

    monkeypatch.setattr(resize_mod.Resizer, "_resize_all", counting_all)
    monkeypatch.setattr(resize_mod.Resizer, "_resize_one", counting_one)
    return fires


def run_counted(n: int, session: bool, monkeypatch) -> tuple[int, int]:
    """(profiler lookups, resize fires) for an n-reference run."""
    cache = build_cache()
    fires = count_resize_fires(monkeypatch)
    before = cache.profiler_lookups
    if session:
        access = cache.access_session().access
        for block in make_blocks(n):
            access(block, 0)
    else:
        cache.access_many(make_blocks(n), 0)
    return cache.profiler_lookups - before, len(fires)


def test_stream_lookups_independent_of_trace_length(monkeypatch):
    # One lookup per access_many call for dispatch plus one per resize
    # fire (epochs, not references) — never one per reference.
    for n in (100, 5_000):
        lookups, fires = run_counted(n, session=False, monkeypatch=monkeypatch)
        assert lookups <= 1 + fires, (
            f"{lookups} profiler lookups for {n} refs with {fires} resize "
            "fires — the disabled check leaked into the per-reference path"
        )


def test_session_lookups_independent_of_access_count(monkeypatch):
    for n in (100, 5_000):
        lookups, fires = run_counted(n, session=True, monkeypatch=monkeypatch)
        assert lookups <= 1 + fires


def test_scalar_path_never_checks_the_profiler(monkeypatch):
    cache = build_cache()
    fires = count_resize_fires(monkeypatch)
    before = cache.profiler_lookups
    for block in make_blocks(500):
        cache.access_block(block, 0)
    # access_block predates the profiler and must stay untouched; only
    # the resizer may peek (once per fire, not per reference).
    assert cache.profiler_lookups - before <= len(fires)


def test_disabled_profiler_dispatches_plain_engine():
    cache = build_cache()
    session = cache.access_session()
    assert type(session) is AccessEngine

    profiler = HotPathProfiler()
    profiler.enabled = False
    cache.attach_profiler(profiler)
    assert type(cache.access_session()) is AccessEngine

    profiler.enabled = True
    assert type(cache.access_session()) is ProfiledAccessEngine
