"""Tests for the ASCII chart renderer."""

import pytest

from repro.common.errors import ConfigError
from repro.sim.plot import ascii_chart


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            ["1MB", "2MB"], {"lru": [0.4, 0.2], "mol": [0.5, 0.1]}
        )
        assert "*" in chart and "o" in chart
        assert "*=lru" in chart and "o=mol" in chart
        assert "1MB" in chart and "2MB" in chart

    def test_title_first_line(self):
        chart = ascii_chart(["a"], {"s": [1.0]}, title="My Chart")
        assert chart.splitlines()[0] == "My Chart"

    def test_extremes_at_top_and_bottom(self):
        chart = ascii_chart(["lo", "hi"], {"s": [0.0, 1.0]}, height=5)
        lines = chart.splitlines()
        # highest value appears on the first plot row, lowest on the last
        assert "*" in lines[0]
        assert "*" in lines[4]

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart(["a", "b"], {"s": [0.5, 0.5]})
        plot_rows = [l for l in chart.splitlines() if "|" in l]
        assert sum(row.count("*") for row in plot_rows) == 2

    def test_height_rows(self):
        chart = ascii_chart(["a"], {"s": [1.0]}, height=7)
        plot_rows = [l for l in chart.splitlines() if "|" in l]
        assert len(plot_rows) == 7

    def test_rejects_empty_series(self):
        with pytest.raises(ConfigError):
            ascii_chart(["a"], {})

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigError):
            ascii_chart(["a", "b"], {"s": [1.0]})

    def test_rejects_tiny_height(self):
        with pytest.raises(ConfigError):
            ascii_chart(["a"], {"s": [1.0]}, height=2)

    def test_rejects_too_many_series(self):
        series = {f"s{i}": [0.1] for i in range(9)}
        with pytest.raises(ConfigError):
            ascii_chart(["a"], series)
