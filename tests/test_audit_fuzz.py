"""Differential oracle and fuzz harness tests.

The centrepiece is the reintroduced-bug meta-test: monkeypatching the
LRU-Direct eviction hook back to a no-op (the exact leak this PR fixes)
must make the fuzzer fail with a ``placement-recency`` violation and
shrink the failing stream — proof the harness would have flushed the bug
out on its own.
"""

from __future__ import annotations

import random

import pytest

from repro.audit.fuzz import (
    ALL_PLACEMENTS,
    ALL_TRIGGERS,
    fuzz,
    generate_ops,
    generate_scenario,
    shrink_ops,
)
from repro.audit.oracle import (
    PATHS,
    AppSpec,
    PathResult,
    Scenario,
    diff_results,
    replay,
    run_oracle,
)
from repro.common.errors import ConfigError
from repro.molecular.placement import LRUDirectPlacement, PlacementPolicy


def small_scenario(placement: str = "randy", **overrides) -> Scenario:
    params = dict(
        apps=(
            AppSpec(asid=0, goal=0.2, tile_id=0, initial_molecules=2),
            AppSpec(asid=1, goal=0.3, tile_id=1, line_multiplier=2,
                    initial_molecules=2),
            AppSpec(asid=2, tile_id=2, shared=True),
        ),
        shared_tiles=((2, 2),),
        placement=placement,
    )
    params.update(overrides)
    return Scenario(**params)


def mixed_ops(count: int = 1200, seed: int = 4) -> list:
    rng = random.Random(seed)
    ops = []
    for index in range(count):
        if index and index % 300 == 0:
            ops.append(("force_resize",))
        if index == count // 2:
            ops.append(("migrate", 0, 1))
        asid = rng.choice((0, 1, 2))
        block = 1 + asid * 100_000 + rng.randrange(150)
        ops.append(("access", asid, block, rng.random() < 0.3))
    return ops


class TestOracle:
    @pytest.mark.parametrize("placement", ALL_PLACEMENTS)
    def test_all_paths_agree(self, placement):
        report = run_oracle(
            small_scenario(placement), mixed_ops(), audit_every=250
        )
        assert report.divergences == []
        assert set(report.results) == set(PATHS)
        # All four paths saw identical stats down to the last counter.
        stats = [r.stats for r in report.results.values()]
        assert all(s == stats[0] for s in stats)

    def test_replay_scalar_matches_brute(self):
        scenario = small_scenario("lru_direct", trigger="per_app_adaptive")
        ops = mixed_ops(600, seed=9)
        scalar = replay(scenario, ops, "scalar")
        brute = replay(scenario, ops, "brute")
        assert scalar.error is None and brute.error is None
        assert diff_results(scalar, brute) == []

    def test_replay_rejects_unknown_path(self):
        with pytest.raises(ConfigError, match="unknown oracle path"):
            replay(small_scenario(), [], "quantum")

    def test_invalid_migration_is_skipped_everywhere(self):
        # Tile 5 does not exist / crosses no cluster — every path must
        # treat the op identically (skip), not diverge.
        ops = [("access", 0, 10, False), ("migrate", 0, 99),
               ("access", 0, 11, False)]
        report = run_oracle(small_scenario(), ops, audit_every=1)
        assert report.ok

    def test_diff_results_flags_divergence(self):
        a = PathResult("scalar", {"x": 1}, {"o": 1}, [(1, 0, "grow", 1)], [])
        b = PathResult("batched", {"x": 2}, {"o": 2}, [], [{"kind": "e"}])
        diffs = diff_results(a, b)
        assert any("stats['x']" in d for d in diffs)
        assert any("occupancy" in d for d in diffs)
        assert any("resize log" in d for d in diffs)
        assert any("telemetry" in d for d in diffs)

    def test_diff_results_error_mismatch_short_circuits(self):
        a = PathResult("scalar", {"x": 1}, {}, [], [])
        b = PathResult("brute", {"x": 2}, {}, [], [], error="AuditError: boom")
        diffs = diff_results(a, b)
        assert len(diffs) == 1 and "AuditError" in diffs[0]


class TestGenerators:
    def test_ops_are_deterministic_in_the_seed(self):
        one = generate_ops(random.Random("k"), small_scenario(), 500)
        two = generate_ops(random.Random("k"), small_scenario(), 500)
        assert one == two

    def test_ops_cover_every_op_kind(self):
        rng = random.Random(1)
        scenario = small_scenario()
        ops = generate_ops(rng, scenario, 30_000)
        kinds = {op[0] for op in ops}
        assert kinds == {"access", "force_resize", "migrate"}
        assert any(op[3] for op in ops if op[0] == "access")  # writes
        asids = {op[1] for op in ops if op[0] == "access"}
        assert asids == {0, 1, 2}

    def test_scenarios_span_the_cell_axes(self):
        scenarios = [
            generate_scenario(random.Random(i), "randy", "constant", i)
            for i in range(24)
        ]
        assert {s.shared_tiles for s in scenarios} == {(), ((2, 2),)}
        multipliers = {
            app.line_multiplier for s in scenarios for app in s.apps
        }
        assert multipliers == {1, 2, 4}


class TestFuzz:
    def test_small_sweep_is_clean(self):
        report = fuzz(
            ops=600,
            seed=2,
            placements=("randy", "lru_direct"),
            triggers=("constant", "per_app_adaptive"),
        )
        assert report.ok, report.failures
        assert len(report.cells) == 4
        assert report.operations == 2400
        assert "clean" in report.summary()

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigError):
            fuzz(ops=0)
        with pytest.raises(ConfigError):
            fuzz(placements=("voodoo",))
        with pytest.raises(ConfigError):
            fuzz(triggers=("sometimes",))
        with pytest.raises(ConfigError):
            fuzz(audit_every=-5)

    def test_reintroduced_lru_leak_is_caught_and_shrunk(self, monkeypatch):
        # Reintroduce the pre-fix behaviour: evictions never prune the
        # LRU-Direct touch map.
        monkeypatch.setattr(
            LRUDirectPlacement, "on_evict", PlacementPolicy.on_evict
        )
        report = fuzz(
            ops=3000,
            seed=3,
            placements=("lru_direct",),
            triggers=("constant",),
            audit_every=200,
        )
        assert not report.ok
        failure = report.failures[0]
        assert any(
            "placement-recency" in d for d in failure.divergences
        ), failure.divergences
        assert len(failure.ops) < failure.original_ops
        # The minimal stream is a genuine subsequence of the original
        # (regenerated the way fuzz() does: scenario draws first, then
        # the stream, off one cell RNG).
        cell_rng = random.Random("3/lru_direct/constant")
        regenerated = generate_scenario(cell_rng, "lru_direct", "constant", 3)
        assert regenerated == failure.scenario
        original = generate_ops(cell_rng, regenerated, 3000)
        iterator = iter(original)
        assert all(op in iterator for op in failure.ops)

    def test_shrink_preserves_failure(self, monkeypatch):
        monkeypatch.setattr(
            LRUDirectPlacement, "on_evict", PlacementPolicy.on_evict
        )
        scenario = small_scenario("lru_direct")
        ops = mixed_ops(800, seed=6)
        assert not run_oracle(scenario, ops, audit_every=100).ok
        minimal = shrink_ops(scenario, list(ops), 100)
        assert minimal
        assert len(minimal) <= len(ops)
        assert not run_oracle(scenario, minimal, audit_every=100).ok
