"""Unit tests for the placement policies (Random / Randy / LRU-Direct)."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import XorShift64
from repro.molecular.molecule import Molecule
from repro.molecular.placement import (
    LRUDirectPlacement,
    RandomPlacement,
    RandyPlacement,
    make_placement_policy,
)
from repro.molecular.region import CacheRegion

LINES = 16


def make_molecule(mid, tile=0):
    m = Molecule(mid, tile, 0, LINES)
    m.configure(asid=1)
    return m


def region_with(policy, molecules=4):
    region = CacheRegion(asid=1, goal=0.1, home_tile_id=0)
    for index in range(molecules):
        region.add_molecule(make_molecule(index), policy.initial_row_index(region))
    return region


class TestFactory:
    def test_builds_each(self):
        assert make_placement_policy("random").name == "random"
        assert make_placement_policy("RANDY").name == "randy"
        assert make_placement_policy("lru_direct").name == "lru_direct"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_placement_policy("fifo")


class TestRandom:
    def test_initial_view_is_single_row(self):
        region = region_with(RandomPlacement())
        assert region.row_max == 1
        assert len(region.rows[0]) == 4

    def test_choose_any_molecule_row_zero(self):
        policy = RandomPlacement()
        region = region_with(policy)
        rng = XorShift64(1)
        chosen = {policy.choose(region, b, LINES, rng)[0].molecule_id for b in range(200)}
        assert len(chosen) == 4  # all molecules get picked
        rows = {policy.choose(region, b, LINES, rng)[1] for b in range(20)}
        assert rows == {0}

    def test_choose_empty_region_rejected(self):
        policy = RandomPlacement()
        region = CacheRegion(asid=1, goal=None, home_tile_id=0)
        with pytest.raises(SimulationError):
            policy.choose(region, 0, LINES, XorShift64(1))

    def test_add_row_keeps_single_row(self):
        policy = RandomPlacement()
        region = region_with(policy)
        assert policy.add_row_index(region) == 0

    def test_withdraw_prefers_fewest_replacement_misses(self):
        policy = RandomPlacement()
        region = region_with(policy)
        for molecule in region.rows[0]:
            molecule.replacement_misses = 5
        region.rows[0][2].replacement_misses = 1
        assert policy.choose_withdrawal(region).molecule_id == 2

    def test_reset_counters(self):
        policy = RandomPlacement()
        region = region_with(policy)
        region.rows[0][0].replacement_misses = 9
        region.row_misses[0] = 4
        policy.reset_counters(region)
        assert region.rows[0][0].replacement_misses == 0
        assert region.row_misses == [0]


class TestRandy:
    def test_initial_view_is_rows_of_one(self):
        region = region_with(RandyPlacement())
        assert region.row_max == 4
        assert all(len(row) == 1 for row in region.rows)

    def test_choose_follows_row_formula(self):
        policy = RandyPlacement()
        region = region_with(policy)
        rng = XorShift64(1)
        for block in range(0, 4 * LINES, LINES):
            molecule, row = policy.choose(region, block, LINES, rng)
            assert row == (block // LINES) % region.row_max
            assert molecule in region.rows[row]

    def test_add_row_targets_hot_pressure(self):
        policy = RandyPlacement()
        region = region_with(policy)
        region.row_misses = [0, 10, 3, 0]
        assert policy.add_row_index(region) == 1

    def test_add_row_spreads_within_grant(self):
        # After adding a molecule to the hottest row, misses-per-molecule
        # halves and the next pick moves on.
        policy = RandyPlacement()
        region = region_with(policy)
        region.row_misses = [0, 10, 6, 0]
        first = policy.add_row_index(region)
        assert first == 1
        region.add_molecule(make_molecule(10), first)
        assert policy.add_row_index(region) == 2

    def test_withdraw_prefers_cold_rows_with_spare_assoc(self):
        policy = RandyPlacement()
        region = region_with(policy)
        region.add_molecule(make_molecule(9), 2)  # row 2 has 2 molecules
        region.row_misses = [0, 5, 1, 7]
        victim = policy.choose_withdrawal(region)
        # row 0 is coldest but has a single molecule; row 2 has spare
        # associativity and is nearly as cold.
        assert victim in region.rows[2]

    def test_withdraw_takes_last_molecule_as_last_resort(self):
        policy = RandyPlacement()
        region = region_with(policy, molecules=2)
        region.row_misses = [1, 9]
        victim = policy.choose_withdrawal(region)
        assert victim in region.rows[0]


class TestLRUDirect:
    def test_prefers_empty_slot(self):
        policy = LRUDirectPlacement()
        region = region_with(policy, molecules=2)
        region.add_molecule(make_molecule(10), 0)  # row 0: 2 molecules
        first = region.rows[0][0]
        region.install(0, first, 0, write=False)
        chosen, row = policy.choose(region, 0, LINES, XorShift64(1))
        assert row == 0
        assert chosen is region.rows[0][1]  # empty slot preferred

    def test_evicts_least_recently_touched(self):
        policy = LRUDirectPlacement()
        region = region_with(policy, molecules=1)
        region.add_molecule(make_molecule(10), 0)
        a, b = region.rows[0]
        # blocks 0 and 4*LINES both map to row 0, index 0
        alias = 4 * LINES
        region.install(0, a, 0, write=False)
        region.install(alias, b, 0, write=False)
        policy.on_hit(region, 0)  # touch a's occupant most recently... then b older
        chosen, _ = policy.choose(region, 8 * LINES, LINES, XorShift64(1))
        assert chosen is b  # b's occupant was never touched

    def test_on_hit_clock_advances(self):
        policy = LRUDirectPlacement()
        region = region_with(policy, molecules=1)
        policy.on_hit(region, 1)
        policy.on_hit(region, 2)
        touches = policy._touches(region)
        assert touches[2] > touches[1]
