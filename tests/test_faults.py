"""Fault injection: spec grammar, fault semantics, retirement and repair.

Covers the :mod:`repro.faults` subsystem end to end — the ``--faults``
grammar, :func:`apply_fault` against every fault kind, the resizer's
repair path, the trace drivers' scheduling, and the differential oracle
with fault ops mixed into the stream.
"""

from __future__ import annotations

import pytest

from repro.audit.invariants import assert_invariants, audit_cache
from repro.audit.oracle import AppSpec, Scenario, run_oracle
from repro.common.errors import ConfigError
from repro.common.rng import XorShift64
from repro.faults import FaultInjector, FaultPlan, FaultSpec, apply_fault
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.sim.driver import run_trace
from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import RingBufferSink
from repro.trace.container import Trace


def build_cache(
    trigger: str = "constant",
    shared: bool = False,
    telemetry: bool = False,
    goal: float = 0.2,
):
    config = MolecularCacheConfig(
        molecule_bytes=512,
        line_bytes=64,
        molecules_per_tile=6,
        tiles_per_cluster=3,
        clusters=1,
        strict=False,
    )
    policy = ResizePolicy(
        period=200, trigger=trigger, min_window_refs=16, period_floor=50
    )
    cache = MolecularCache(config, policy, placement="randy", rng=XorShift64(11))
    sink = None
    if telemetry:
        sink = RingBufferSink(capacity=4096)
        cache.attach_telemetry(EventBus(sinks=[sink], epoch_refs=0))
    if shared:
        cache.create_shared_region(2, 2)
    cache.assign_application(0, goal=goal, tile_id=0, initial_molecules=2)
    cache.assign_application(1, goal=0.3, tile_id=1, initial_molecules=2)
    if shared:
        cache.assign_shared_application(2, 2)
    return cache, sink


def drive(cache, count: int = 400, seed: int = 5) -> None:
    rng = XorShift64(seed)
    asids = sorted(cache.regions)
    for index in range(count):
        asid = asids[index % len(asids)]
        block = 1 + asid * 100_000 + rng.randrange(200)
        cache.access_block(block, asid, rng.randrange(3) == 0)


def region_molecule(cache, asid: int):
    """A molecule currently owned by ``asid``'s region."""
    return next(cache.regions[asid].molecules())


# ----------------------------------------------------------------- grammar


class TestSpecGrammar:
    def test_parse_round_trip(self):
        text = "hard@5000:m3,transient@8000:m3,degraded@10000:t1+8"
        plan = FaultPlan.parse(text)
        assert str(plan) == text
        assert FaultPlan.from_payload(plan.as_payload()) == plan

    def test_plan_sorts_by_firing_time(self):
        plan = FaultPlan.parse("hard@900:m1,transient@100:m2")
        assert [spec.at for spec in plan] == [100, 900]

    @pytest.mark.parametrize("bad", [
        "meltdown@5:m1",        # unknown kind
        "hard@5:t1",            # hard targets a molecule, not a tile
        "degraded@5:m1+8",      # degraded targets a tile
        "hard@5:m1+8",          # +cycles only for degraded
        "degraded@5:t1",        # degraded needs +cycles
        "hard@5",               # missing target
        "",                     # no specs at all
    ])
    def test_rejects_bad_grammar(self, bad):
        with pytest.raises(ConfigError):
            FaultPlan.parse(bad)

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="hard", at=-1, target=0)
        with pytest.raises(ConfigError):
            FaultSpec(kind="transient", at=0, target=0, extra_cycles=4)
        with pytest.raises(ConfigError):
            FaultSpec(kind="degraded", at=0, target=0)


# ------------------------------------------------------------- hard faults


class TestHardFaults:
    def test_retirement_removes_the_molecule_from_its_region(self):
        cache, _ = build_cache()
        drive(cache)
        molecule = region_molecule(cache, 0)
        before = cache.regions[0].molecule_count
        assert apply_fault(
            cache, FaultSpec(kind="hard", at=0, target=molecule.molecule_id)
        )
        assert molecule.failed
        assert not molecule.is_free
        assert cache.regions[0].molecule_count == before - 1
        assert cache.regions[0].pending_repair == 1
        assert cache.stats.molecules_retired == 1
        assert cache.tile_of(molecule.tile_id).failed_count == 1
        assert assert_invariants(cache, counters=True).ok

    def test_retirement_flushes_dirty_lines_to_memory(self):
        cache, _ = build_cache()
        cache.access_block(1, 0, write=True)  # dirty line in region 0
        victim = cache.regions[0].lookup(1)
        before = cache.stats.writebacks_to_memory
        apply_fault(cache, FaultSpec(kind="hard", at=0, target=victim.molecule_id))
        flushed = cache.stats.writebacks_to_memory - before
        assert flushed >= 1
        assert cache.stats.flush_writebacks >= flushed

    def test_free_pool_molecule_retires_without_repair(self):
        cache, _ = build_cache()
        free = next(
            m
            for tile in cache._tiles.values()
            for m in tile.molecules
            if m.is_free
        )
        apply_fault(cache, FaultSpec(kind="hard", at=0, target=free.molecule_id))
        assert free.failed and not free.is_free
        assert all(r.pending_repair == 0 for r in cache.regions.values())
        assert assert_invariants(cache, counters=True).ok

    def test_refused_at_region_minimum_size(self):
        cache, _ = build_cache()
        region = cache.regions[0]
        while region.molecule_count > 1:
            target = next(region.molecules()).molecule_id
            apply_fault(cache, FaultSpec(kind="hard", at=0, target=target))
        last = next(region.molecules())
        assert not apply_fault(
            cache, FaultSpec(kind="hard", at=0, target=last.molecule_id)
        )
        assert not last.failed
        assert region.molecule_count == 1

    def test_refused_when_already_retired(self):
        cache, _ = build_cache()
        molecule = region_molecule(cache, 0)
        spec = FaultSpec(kind="hard", at=0, target=molecule.molecule_id)
        assert apply_fault(cache, spec)
        assert not apply_fault(cache, spec)
        assert cache.stats.molecules_retired == 1
        assert cache.stats.faults_injected == 2  # attempts are still counted

    def test_retired_molecule_stops_its_comparator(self):
        cache, _ = build_cache()
        drive(cache, 100)
        region = cache.regions[0]
        owned = list(region.molecules())
        victim = owned[0]
        tile = cache.tile_of(victim.tile_id)
        live = len(tile.molecules)
        # A block resident in a *surviving* molecule: both measured
        # accesses below hit, so the only delta is the comparator count.
        block = next(
            m.resident_blocks()[0]
            for m in owned[1:]
            if m.resident_blocks()
        )

        before = cache.stats.asid_comparisons
        assert cache.access_block(block, 0).hit
        full = cache.stats.asid_comparisons - before

        apply_fault(cache, FaultSpec(kind="hard", at=0, target=victim.molecule_id))
        before = cache.stats.asid_comparisons
        assert cache.access_block(block, 0).hit
        reduced = cache.stats.asid_comparisons - before
        assert full - reduced == 1
        assert tile.active_count == live - 1

    def test_shared_region_retirement_has_no_repair(self):
        cache, _ = build_cache(shared=True)
        drive(cache, 300)
        shared = cache._shared_regions[2]
        target = next(shared.molecules()).molecule_id
        apply_fault(cache, FaultSpec(kind="hard", at=0, target=target))
        assert shared.pending_repair == 0
        assert assert_invariants(cache, counters=True).ok


# -------------------------------------------------------------- repair


class TestRepair:
    def test_resizer_repairs_the_region_next_epoch(self):
        cache, _ = build_cache()
        drive(cache, 300)
        molecule = region_molecule(cache, 0)
        apply_fault(cache, FaultSpec(kind="hard", at=0, target=molecule.molecule_id))
        assert cache.regions[0].pending_repair == 1
        cache.resizer.force_resize()
        assert cache.regions[0].pending_repair == 0
        assert cache.stats.molecules_repaired == 1
        assert any(e[2] == "repair" for e in cache.resizer.log)
        assert assert_invariants(cache, counters=True).ok

    def test_repair_denied_when_the_free_pool_is_exhausted(self):
        cache, _ = build_cache()
        drive(cache, 300)
        # Retire every free molecule, then one of region 0's.
        for tile in cache._tiles.values():
            for molecule in list(tile.molecules):
                if molecule.is_free:
                    apply_fault(
                        cache,
                        FaultSpec(kind="hard", at=0, target=molecule.molecule_id),
                    )
        victim = region_molecule(cache, 0)
        apply_fault(cache, FaultSpec(kind="hard", at=0, target=victim.molecule_id))
        cache.resizer.force_resize()
        assert cache.regions[0].pending_repair == 1  # still owed
        assert any(e[2] == "repair-denied" for e in cache.resizer.log)
        assert assert_invariants(cache, counters=True).ok

    def test_repair_does_not_disturb_last_allocation(self):
        cache, _ = build_cache()
        drive(cache, 300)
        region = cache.regions[0]
        last = region.last_allocation
        apply_fault(
            cache,
            FaultSpec(
                kind="hard", at=0, target=next(region.molecules()).molecule_id
            ),
        )
        cache.resizer._repair(region, cache.stats.total.accesses)
        assert region.last_allocation == last


# ------------------------------------------------- transient and degraded


class TestTransientFaults:
    def test_dropped_line_refetches_as_a_miss(self):
        cache, _ = build_cache()
        cache.access_block(1, 0, write=True)
        molecule = cache.regions[0].lookup(1)
        block = molecule.resident_blocks()[0]
        writebacks = cache.stats.writebacks_to_memory
        assert apply_fault(
            cache, FaultSpec(kind="transient", at=0, target=molecule.molecule_id)
        )
        assert cache.stats.lines_invalidated == 1
        # Dirty data is *lost*, not written back.
        assert cache.stats.writebacks_to_memory == writebacks
        assert not cache.access_block(block, 0).hit
        assert assert_invariants(cache, counters=True).ok

    def test_no_resident_lines_is_a_no_op(self):
        cache, _ = build_cache()
        molecule = region_molecule(cache, 0)
        assert not apply_fault(
            cache, FaultSpec(kind="transient", at=0, target=molecule.molecule_id)
        )
        assert cache.stats.lines_invalidated == 0


class TestDegradedTiles:
    def test_home_accesses_pay_the_extra_cycles(self):
        cache, _ = build_cache()
        cache.access_block(1, 0)
        before = cache.stats.latency_cycles
        cache.access_block(1, 0)  # hit, clean port
        clean = cache.stats.latency_cycles - before

        assert apply_fault(
            cache, FaultSpec(kind="degraded", at=0, target=0, extra_cycles=9)
        )
        before = cache.stats.latency_cycles
        cache.access_block(1, 0)  # same hit, degraded port
        degraded = cache.stats.latency_cycles - before
        assert degraded - clean == 9
        assert assert_invariants(cache, counters=True).ok

    def test_reapplying_the_same_degradation_is_a_no_op(self):
        cache, _ = build_cache()
        spec = FaultSpec(kind="degraded", at=0, target=1, extra_cycles=4)
        assert apply_fault(cache, spec)
        assert not apply_fault(cache, spec)


# ------------------------------------------------------ auditor integration


class TestFaultInvariants:
    def test_retired_molecule_inside_a_region_is_flagged(self):
        cache, _ = build_cache()
        molecule = region_molecule(cache, 0)
        molecule.failed = True  # corrupt: failed but still attached
        cache.tile_of(molecule.tile_id).failed_count += 1
        slugs = {
            v.invariant for v in audit_cache(cache).violations
        }
        assert "fault-retirement" in slugs

    def test_failed_count_mismatch_is_flagged(self):
        cache, _ = build_cache()
        cache.tile_of(0).failed_count = 2  # no molecule actually failed
        slugs = {
            v.invariant for v in audit_cache(cache).violations
        }
        assert "fault-retirement" in slugs


# -------------------------------------------------------- driver scheduling


class TestDriverScheduling:
    def make_trace(self, refs: int = 3000) -> Trace:
        rng = XorShift64(3)
        return Trace([rng.randrange(220) * 64 for _ in range(refs)])

    def plan(self) -> FaultPlan:
        return FaultPlan.parse("hard@500:m0,transient@900:m1,degraded@1500:t1+8")

    def test_batched_and_scalar_paths_agree_under_faults(self):
        cache_a, _ = build_cache()
        cache_b, _ = build_cache()
        trace = self.make_trace()
        run_trace(cache_a, trace, faults=self.plan())

        blocks = trace.block_list(64)
        injector = FaultInjector(cache_b, self.plan())
        for index, block in enumerate(blocks):
            injector.fire_due(index)
            cache_b.access_block(block, 0, False)
        assert cache_a.stats.as_dict() == cache_b.stats.as_dict()
        assert cache_a.stats.molecules_retired == 1
        assert cache_a.stats.lines_invalidated == 1

    def test_fault_at_or_past_the_trace_end_never_fires(self):
        cache, _ = build_cache()
        trace = self.make_trace(100)
        run_trace(cache, trace, faults=FaultPlan.parse("hard@100:m0"))
        assert cache.stats.faults_injected == 0

    def test_faults_need_a_molecular_cache(self):
        from repro.caches.setassoc import SetAssociativeCache

        cache = SetAssociativeCache(1 << 14, 2)
        with pytest.raises(ConfigError, match="molecular"):
            run_trace(cache, self.make_trace(10), faults=FaultPlan.parse("hard@1:m0"))

    def test_injector_fires_in_order_and_once(self):
        cache, _ = build_cache()
        plan = FaultPlan.parse("degraded@10:t0+4,degraded@10:t1+4,degraded@50:t2+4")
        injector = FaultInjector(cache, plan)
        assert injector.next_at == 10
        assert injector.fire_due(9) == 0
        assert injector.fire_due(10) == 2
        assert injector.next_at == 50
        assert injector.fire_due(200) == 1
        assert injector.exhausted
        assert injector.fire_due(1000) == 0


# -------------------------------------------------------------- telemetry


class TestFaultTelemetry:
    def test_events_cover_injection_retirement_and_repair(self):
        cache, sink = build_cache(telemetry=True)
        drive(cache, 300)
        molecule = region_molecule(cache, 0)
        apply_fault(cache, FaultSpec(kind="hard", at=0, target=molecule.molecule_id))
        cache.resizer.force_resize()
        cache.telemetry.flush_epoch()
        kinds = [event.kind for event in sink]
        assert "fault_injected" in kinds
        assert "molecule_retired" in kinds
        assert "region_repaired" in kinds
        retired = next(e for e in sink if e.kind == "molecule_retired")
        assert retired.molecule == molecule.molecule_id
        assert retired.asid == 0


# ------------------------------------------------------------------ oracle


class TestOracleFaultOps:
    def scenario(self) -> Scenario:
        return Scenario(
            apps=(
                AppSpec(asid=0, goal=0.2, tile_id=0, initial_molecules=2),
                AppSpec(asid=1, goal=0.3, tile_id=1, initial_molecules=2),
            ),
            placement="randy",
            trigger="constant",
            seed=7,
        )

    def test_all_paths_agree_under_fault_ops(self):
        rng = XorShift64(17)
        ops = []
        for index in range(1200):
            asid = index % 2
            ops.append(
                ("access", asid, 1 + asid * 100_000 + rng.randrange(180),
                 rng.randrange(4) == 0)
            )
        ops[300] = ("fault", "hard", 0)
        ops[500] = ("fault", "transient", 7)
        ops[700] = ("fault", "degraded", 1, 8)
        ops[900] = ("force_resize",)
        report = run_oracle(self.scenario(), ops, audit_every=250)
        assert report.ok, report.divergences

    def test_fuzz_with_fault_schedules_is_clean(self):
        from repro.audit.fuzz import fuzz

        report = fuzz(
            ops=4000,
            seed=3,
            placements=("randy",),
            triggers=("constant",),
            faults=True,
        )
        assert report.ok, [f.summary() for f in report.failures]
        # The generator actually mixed faults into the stream.
        cell_ops = report.operations
        assert cell_ops == 4000
