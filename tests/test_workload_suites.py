"""Unit tests for the SPEC and mixed workload suites."""

import pytest

from repro.workloads.mixed import MIXED_GOAL, MIXED_SUITE, mixed_groups, mixed_model
from repro.workloads.registry import available_models, get_model
from repro.workloads.spec import SPEC_QUARTET, spec_model


class TestSpecSuite:
    def test_quartet_members(self):
        assert set(SPEC_QUARTET) == {"art", "mcf", "ammp", "parser"}

    def test_models_build(self):
        for name in SPEC_QUARTET:
            model = spec_model(name)
            assert model.name == name
            assert abs(sum(model.weights) - 1.0) < 1e-9

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            spec_model("gobbledygook")

    def test_relative_footprints_match_narrative(self):
        # mcf is the capacity hog; ammp is tiny (excluding the shared
        # compulsory-miss FAR ring present in every model).
        def cacheable(name):
            m = spec_model(name)
            return sum(c.blocks for c in m.components if c.blocks < 1 << 20)

        assert cacheable("mcf") > cacheable("art") > cacheable("ammp")
        assert cacheable("parser") > cacheable("ammp")

    def test_art_fits_one_megabyte_alone(self):
        art = spec_model("art")
        assert art.expected_miss_rate(1 << 14) < 0.10  # 1MB = 16384 blocks

    def test_mcf_starved_at_one_megabyte(self):
        mcf = spec_model("mcf")
        assert mcf.expected_miss_rate(1 << 14) > 0.5


class TestMixedSuite:
    def test_twelve_benchmarks(self):
        assert len(MIXED_SUITE) == 12
        assert len(set(MIXED_SUITE)) == 12

    def test_goal(self):
        assert MIXED_GOAL == 0.25

    def test_all_models_build(self):
        for name in MIXED_SUITE:
            model = mixed_model(name)
            assert model.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            mixed_model("quake")

    def test_groups_of_four(self):
        groups = mixed_groups()
        assert len(groups) == 3
        assert all(len(g) == 4 for g in groups)
        assert tuple(n for g in groups for n in g) == MIXED_SUITE

    def test_paper_membership(self):
        for name in ("crafty", "gcc", "gzip", "parser", "twolf",
                     "CRC", "DRR", "NAT", "CJPEG", "decode", "epic", "gap"):
            assert name in MIXED_SUITE

    def test_group_goal_demand_fits_cluster(self):
        # Each group of four must be able to meet the 25% goal within a
        # 2MB (32768-block) cluster — the property behind Table 2's
        # molecular win. Estimated via the analytic model: capacity at
        # which expected miss <= goal.
        for group in mixed_groups():
            demand = 0
            for name in group:
                model = mixed_model(name)
                for capacity in range(0, 40_000, 500):
                    if model.expected_miss_rate(capacity) <= MIXED_GOAL:
                        demand += capacity
                        break
            assert demand <= 34_000, f"group {group} demands {demand} blocks"


class TestRegistry:
    def test_lists_all(self):
        names = available_models()
        assert "art" in names and "CJPEG" in names
        # parser is in both suites but listed once
        assert names.count("parser") == 1

    def test_lookup_spec(self):
        assert get_model("mcf").name == "mcf"

    def test_lookup_mixed(self):
        assert get_model("epic").name == "epic"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_model("doom")
