"""Property-based tests for molecular-cache invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import XorShift64
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy


def build_cache(placement: str, resize_period=400) -> MolecularCache:
    config = MolecularCacheConfig(
        molecule_bytes=1024,
        molecules_per_tile=8,
        tiles_per_cluster=2,
        clusters=1,
        strict=False,
    )
    return MolecularCache(
        config,
        resize_policy=ResizePolicy(
            period=resize_period,
            trigger="global_adaptive",
            min_window_refs=16,
            period_floor=100,
        ),
        placement=placement,
        rng=XorShift64(11),
    )


def assert_invariants(cache: MolecularCache) -> None:
    cache.resizer.check_consistency()
    for region in cache.regions.values():
        # presence map == brute-force probe, both directions
        for block, molecule in region.presence.items():
            assert molecule.probe(block)
        brute = {}
        for molecule in region.molecules():
            for block in molecule.resident_blocks():
                brute[block] = molecule
        assert brute == dict(region.presence)
        # replacement view structure
        assert all(row for row in region.rows)
        assert len(region.row_misses) == len(region.rows)
        # every molecule is owned by this region's asid
        for molecule in region.molecules():
            assert molecule.asid == region.asid
    # no molecule is in two regions, and free accounting matches
    seen = set()
    owned = 0
    for region in cache.regions.values():
        for molecule in region.molecules():
            assert molecule.molecule_id not in seen
            seen.add(molecule.molecule_id)
            owned += 1
    assert cache.free_molecules() == cache.config.total_molecules - owned


streams = st.lists(st.integers(min_value=0, max_value=300), min_size=20, max_size=600)


class TestMolecularInvariants:
    @given(stream=streams, placement=st.sampled_from(["random", "randy", "lru_direct"]))
    @settings(max_examples=25, deadline=None)
    def test_single_app_invariants_hold_under_traffic(self, stream, placement):
        cache = build_cache(placement)
        cache.assign_application(0, goal=0.3, initial_molecules=4)
        for block in stream:
            cache.access_block(block, 0)
        assert_invariants(cache)

    @given(stream=streams, placement=st.sampled_from(["random", "randy"]))
    @settings(max_examples=25, deadline=None)
    def test_two_apps_fully_isolated(self, stream, placement):
        cache = build_cache(placement)
        cache.assign_application(0, goal=0.3, initial_molecules=3, tile_id=0)
        cache.assign_application(1, goal=0.3, initial_molecules=3, tile_id=1)
        for block in stream:
            cache.access_block(block, 0)
            cache.access_block(block, 1)
        assert_invariants(cache)
        # identical streams but private regions: block sets disjoint per
        # molecule ownership
        r0, r1 = cache.regions[0], cache.regions[1]
        for molecule in r0.molecules():
            assert molecule.asid == 0
        for molecule in r1.molecules():
            assert molecule.asid == 1

    @given(stream=streams)
    @settings(max_examples=25, deadline=None)
    def test_resident_block_hits(self, stream):
        cache = build_cache("randy")
        cache.assign_application(0, goal=None, initial_molecules=4)
        seen = set()
        for block in stream:
            result = cache.access_block(block, 0)
            if block in seen and cache.regions[0].lookup(block) is not None:
                pass  # may have been evicted between touches
            seen.add(block)
            # immediately after an access the block must be resident
            assert cache.regions[0].lookup(block) is not None
            assert cache.access_block(block, 0).hit

    @given(
        stream=streams,
        multiplier=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=25, deadline=None)
    def test_variable_line_size_invariants(self, stream, multiplier):
        cache = build_cache("randy")
        cache.assign_application(
            0, goal=None, initial_molecules=4, line_multiplier=multiplier
        )
        for block in stream:
            cache.access_block(block, 0)
            # whole aligned unit resident in one molecule
            base = block - block % multiplier
            region = cache.regions[0]
            home = region.lookup(block)
            for offset in range(multiplier):
                assert region.lookup(base + offset) is home
        assert_invariants(cache)

    @given(stream=streams)
    @settings(max_examples=15, deadline=None)
    def test_probe_counts_bounded_by_region_size(self, stream):
        cache = build_cache("randy")
        cache.assign_application(0, goal=0.2, initial_molecules=4)
        for block in stream:
            before = cache.regions[0].molecule_count
            result = cache.access_block(block, 0)
            assert result.molecules_probed <= before
