"""Unit tests for the experiment-harness plumbing (no long simulations)."""

import pytest

from repro.common.errors import ConfigError
from repro.molecular.stats import MolecularStats
from repro.sim.experiments.common import build_traces, warmup_for
from repro.sim.experiments.figure5 import Figure5Result
from repro.sim.experiments.table1 import PAPER_TABLE1, Table1Result
from repro.sim.experiments.table2 import PAPER_TABLE2, molecular_6mb_config
from repro.sim.experiments.table4 import TABLE3_MOLECULAR, run_table4
from repro.sim.experiments.table5 import PAPER_TABLE5


class TestCommonHelpers:
    def test_build_traces_asid_order(self):
        traces = build_traces(["ammp", "crafty"], 1_000, seed=2)
        assert set(traces) == {0, 1}
        assert set(traces[1].asids.tolist()) == {1}

    def test_build_traces_rejects_empty(self):
        with pytest.raises(ConfigError):
            build_traces([], 1_000)

    def test_warmup_fraction(self):
        assert warmup_for(100_000, 4) == 25_000


class TestPaperReferenceData:
    def test_table1_reference_complete(self):
        # 4 alones + 6 pairs + all-four
        assert len(PAPER_TABLE1) == 11
        assert PAPER_TABLE1[("art",)]["art"] == 0.064
        all_four = PAPER_TABLE1[("art", "mcf", "ammp", "parser")]
        assert all_four["art"] == 0.734

    def test_table2_reference(self):
        assert PAPER_TABLE2["6MB Molecular Randy"] == 0.222075
        assert PAPER_TABLE2["6MB Molecular Random"] == 0.356923

    def test_table5_reference(self):
        assert PAPER_TABLE5["8MB 8way"] == (0.870, 0.425)


class TestConfigurations:
    def test_table3_is_the_paper_configuration(self):
        assert TABLE3_MOLECULAR.total_bytes == 8 << 20
        assert TABLE3_MOLECULAR.molecule_bytes == 8 * 1024
        assert TABLE3_MOLECULAR.tile_bytes == 512 * 1024
        assert TABLE3_MOLECULAR.clusters == 4
        assert TABLE3_MOLECULAR.strict  # inside every paper range

    def test_6mb_molecular_configuration(self):
        config = molecular_6mb_config("randy")
        assert config.total_bytes == 6 << 20
        assert config.clusters == 3
        assert config.tile_bytes == 512 * 1024


class TestResultFormatting:
    def test_table1_format_includes_paper_column(self):
        result = Table1Result(cache_label="1MB 4-way L2")
        result.combos[("art",)] = {"art": 0.05}
        text = result.format()
        assert "0.050" in text and "0.064" in text

    def test_figure5_accessors(self):
        result = Figure5Result(graph="A", sizes_mb=(1, 2))
        result.series["4-way"] = [0.3, 0.2]
        assert result.deviation("4-way", 2) == 0.2
        assert "Figure 5 graph A" in result.format()

    def test_table4_pure_model_run(self):
        """Table 4 with explicit stats runs in milliseconds and keeps
        the worst-case/average relationship."""
        stats = MolecularStats()
        for _ in range(100):
            stats.record_access(0, hit=True)
        stats.molecules_probed_local = 3_000  # 30/access < 64 worst case
        stats.asid_comparisons = 6_400
        result = run_table4(mixed_stats=stats)
        for row in result.rows:
            assert row.molecular_average_power_w < row.molecular_worst_power_w
        assert result.row("8MB DM").frequency_mhz > result.row("8MB 8way").frequency_mhz
