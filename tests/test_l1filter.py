"""Unit tests for the L1 miss filter."""

import numpy as np

from repro.trace.container import Trace
from repro.trace.l1filter import L1Filter, filter_through_l1


class TestL1Filter:
    def test_repeated_block_filtered(self):
        trace = Trace([0, 0, 0, 64, 64])
        filtered = L1Filter(size_bytes=1024, associativity=2).filter(trace)
        # first touch of each block misses; repeats hit in L1
        assert filtered.addresses.tolist() == [0, 64]

    def test_capacity_misses_pass_through(self):
        # 1 KB 1-way L1 = 16 lines; a 32-block loop never fits
        blocks = list(range(32)) * 3
        trace = Trace(np.array(blocks) * 64)
        filtered = L1Filter(size_bytes=1024, associativity=1).filter(trace)
        assert len(filtered) == len(trace)  # every access misses

    def test_separate_l1_per_asid(self):
        # Two apps touching the same block each miss once (private L1s).
        trace = Trace([0, 0], asids=[1, 2])
        filtered = L1Filter(size_bytes=1024, associativity=2).filter(trace)
        assert len(filtered) == 2

    def test_miss_rate_reporting(self):
        trace = Trace([0] * 10)
        f = L1Filter(size_bytes=1024, associativity=2)
        f.filter(trace)
        assert f.miss_rate(0) == 0.1
        assert f.miss_rate() == 0.1
        assert f.miss_rate(99) == 0.0

    def test_write_flags_preserved(self):
        trace = Trace([0, 64], writes=[True, False])
        filtered = filter_through_l1(trace, size_bytes=1024, associativity=2)
        assert filtered.writes.tolist() == [True, False]

    def test_filtered_trace_keeps_asids(self):
        trace = Trace([0, 64, 128], asids=[4, 4, 4])
        filtered = filter_through_l1(trace)
        assert set(filtered.asids.tolist()) == {4}
