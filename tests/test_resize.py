"""Unit tests for the resize engine (Algorithm 1 and its triggers)."""

import pytest

from repro.common.errors import ConfigError
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy


def make_cache(policy: ResizePolicy, placement="randy", molecules_per_tile=8):
    config = MolecularCacheConfig(
        molecule_bytes=1024,
        molecules_per_tile=molecules_per_tile,
        tiles_per_cluster=2,
        clusters=1,
        strict=False,
    )
    return MolecularCache(config, resize_policy=policy, placement=placement)


def feed(cache, asid, blocks):
    for block in blocks:
        cache.access_block(block, asid)


class TestPolicyValidation:
    def test_rejects_unknown_trigger(self):
        with pytest.raises(ConfigError):
            ResizePolicy(trigger="sometimes")

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigError):
            ResizePolicy(period=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            ResizePolicy(initial_fraction_of_tile=0.0)

    def test_rejects_bad_margin(self):
        with pytest.raises(ConfigError):
            ResizePolicy(withdraw_margin=0.0)

    def test_rejects_inverted_clamp(self):
        with pytest.raises(ConfigError):
            ResizePolicy(period_floor=100, period_cap=10)


class TestAlgorithmOne:
    def test_panic_branch_grows_by_max_allocation(self):
        policy = ResizePolicy(period=100, trigger="constant", max_allocation=3,
                              min_window_refs=10)
        cache = make_cache(policy)
        region = cache.assign_application(0, goal=0.10, initial_molecules=2)
        # all-miss stream (fresh block every access, > 50% miss rate)
        feed(cache, 0, range(10_000, 10_200))
        assert region.molecule_count > 2
        grows = [e for e in cache.resizer.log if e[2] == "grow"]
        # the panic branch first clamps max_allocation down to the last
        # grant (the 2-molecule initial allocation), then grows by it
        assert grows and grows[0][3] == 2

    def test_withdraw_branch_when_below_goal(self):
        policy = ResizePolicy(period=200, trigger="constant", min_molecules=2,
                              min_window_refs=10, withdraw_margin=1.0)
        cache = make_cache(policy)
        region = cache.assign_application(0, goal=0.50, initial_molecules=8)
        # tiny working set -> miss rate ~0 -> well below the 50% goal
        feed(cache, 0, [0, 1, 2, 3] * 300)
        assert region.molecule_count < 8
        assert any(e[2] == "withdraw" for e in cache.resizer.log)

    def test_withdraw_respects_min_molecules(self):
        policy = ResizePolicy(period=50, trigger="constant", min_molecules=3,
                              min_window_refs=10, withdraw_margin=1.0)
        cache = make_cache(policy)
        region = cache.assign_application(0, goal=0.9, initial_molecules=6)
        feed(cache, 0, [0, 1] * 2000)
        assert region.molecule_count >= 3

    def test_withdraw_margin_hysteresis(self):
        # With margin 0.5 and goal 0.5, a miss rate of ~0.4 (between
        # margin*goal and goal) must not trigger withdrawal.
        policy = ResizePolicy(period=500, trigger="constant", min_window_refs=10,
                              withdraw_margin=0.5)
        cache = make_cache(policy)
        region = cache.assign_application(0, goal=0.50, initial_molecules=4)
        import itertools
        fresh = itertools.count(10_000)
        stream = []
        for _ in range(1000):
            stream += [0, 1, 2, next(fresh), 0]  # ~20% compulsory misses... tune
        # construct ~40% miss: 2 fresh blocks per 5 accesses
        stream = []
        for _ in range(1000):
            stream += [0, 1, 0, next(fresh), next(fresh)]
        feed(cache, 0, stream)
        assert region.molecule_count == 4

    def test_no_growth_when_worsening_by_default(self):
        policy = ResizePolicy(period=100, trigger="constant", min_window_refs=10,
                              panic_miss_rate=0.99)
        cache = make_cache(policy)
        region = cache.assign_application(0, goal=0.01, initial_molecules=2)
        # Stationary ~30% miss stream (goal unreachable; never improving
        # beyond noise, never above the 99% panic threshold).
        import itertools
        fresh = itertools.count(100_000)
        stream = []
        for _ in range(700):
            stream += [0, 1, next(fresh), 0, 1, 0, 1, 0, 1, 0]
        feed(cache, 0, stream)
        grows = [e for e in cache.resizer.log if e[2] == "grow"]
        # the miss rate is flat, so growth happens at most on noisy windows
        # where mr dipped below last_mr — roughly half the rounds, and the
        # amount is bounded by the linear-model cap each time.
        assert region.molecule_count <= 2 + 30 * policy.max_allocation

    def test_min_window_refs_skips_noise(self):
        policy = ResizePolicy(period=50, trigger="constant", min_window_refs=10_000)
        cache = make_cache(policy)
        region = cache.assign_application(0, goal=0.5, initial_molecules=4)
        feed(cache, 0, [0, 1] * 500)
        assert region.molecule_count == 4
        assert not cache.resizer.log

    def test_unmanaged_region_untouched(self):
        policy = ResizePolicy(period=50, trigger="constant", min_window_refs=10)
        cache = make_cache(policy)
        region = cache.assign_application(0, goal=None, initial_molecules=4)
        feed(cache, 0, [0, 1] * 500)
        assert region.molecule_count == 4


class TestTriggers:
    def test_constant_period_fixed(self):
        policy = ResizePolicy(period=100, trigger="constant", min_window_refs=1)
        cache = make_cache(policy)
        cache.assign_application(0, goal=0.5, initial_molecules=4)
        feed(cache, 0, [0, 1] * 300)
        assert cache.resizer.global_period == 100
        assert cache.stats.resize_events == 6

    def test_global_adaptive_doubles_when_meeting_goal(self):
        policy = ResizePolicy(period=100, trigger="global_adaptive",
                              min_window_refs=1, period_cap=10_000,
                              withdraw_margin=1.0, min_molecules=1)
        cache = make_cache(policy)
        cache.assign_application(0, goal=0.9, initial_molecules=4)
        feed(cache, 0, [0, 1] * 400)
        assert cache.resizer.global_period > 100

    def test_global_adaptive_shrinks_when_missing_goal(self):
        policy = ResizePolicy(period=1000, trigger="global_adaptive",
                              min_window_refs=1, period_floor=10)
        cache = make_cache(policy)
        cache.assign_application(0, goal=0.01, initial_molecules=4)
        feed(cache, 0, range(50_000, 51_050))  # all misses; one resize round
        assert cache.resizer.global_period == 100

    def test_period_clamped_to_floor(self):
        policy = ResizePolicy(period=100, trigger="global_adaptive",
                              min_window_refs=1, period_floor=80)
        cache = make_cache(policy)
        cache.assign_application(0, goal=0.01, initial_molecules=4)
        feed(cache, 0, range(50_000, 51_000))
        assert cache.resizer.global_period == 80

    def test_per_app_adaptive_periods_independent(self):
        policy = ResizePolicy(period=100, trigger="per_app_adaptive",
                              min_window_refs=1, period_floor=10,
                              withdraw_margin=1.0, min_molecules=1)
        cache = make_cache(policy)
        meeting = cache.assign_application(0, goal=0.9, initial_molecules=2, tile_id=0)
        missing = cache.assign_application(1, goal=0.01, initial_molecules=2, tile_id=1)
        for index in range(2000):
            cache.access_block(index % 2, 0)          # ~always hits
            cache.access_block(60_000 + index, 1)     # always misses
        assert meeting.resize_period > 100
        assert missing.resize_period == 10

    def test_resize_event_accounting(self):
        policy = ResizePolicy(period=100, trigger="constant", min_window_refs=1)
        cache = make_cache(policy)
        cache.assign_application(0, goal=0.5)
        feed(cache, 0, [0] * 250)
        assert cache.stats.resize_events == 2
        assert cache.stats.resize_compute_cycles == 2 * 1500


class TestBookkeeping:
    @staticmethod
    def _low_miss_stream(rounds: int):
        """~25% miss rate: one fresh block per three hot hits (the sqrt
        withdraw amount is zero for an all-hit stream)."""
        import itertools

        fresh = itertools.count(500_000)
        stream = []
        for _ in range(rounds):
            stream += [0, 1, 0, next(fresh)]
        return stream

    def test_withdrawn_molecules_return_to_pool(self):
        policy = ResizePolicy(period=100, trigger="constant", min_window_refs=10,
                              withdraw_margin=1.0, min_molecules=1)
        cache = make_cache(policy)
        region = cache.assign_application(0, goal=0.9, initial_molecules=8)
        free_before = cache.free_molecules()
        feed(cache, 0, self._low_miss_stream(500))
        withdrawn = 8 - region.molecule_count
        assert withdrawn > 0
        assert cache.free_molecules() == free_before + withdrawn
        cache.resizer.check_consistency()

    def test_force_resize_hook(self):
        policy = ResizePolicy(period=10**9, trigger="constant", min_window_refs=1,
                              withdraw_margin=1.0, min_molecules=1)
        cache = make_cache(policy)
        region = cache.assign_application(0, goal=0.9, initial_molecules=6)
        feed(cache, 0, self._low_miss_stream(50))
        cache.resizer.force_resize()
        assert region.molecule_count < 6

    def test_growth_denied_when_pool_empty(self):
        policy = ResizePolicy(period=100, trigger="constant", min_window_refs=10)
        cache = make_cache(policy, molecules_per_tile=4)
        # two apps claim the whole cache (2 tiles x 4 molecules)
        cache.assign_application(0, goal=0.001, initial_molecules=4, tile_id=0)
        cache.assign_application(1, goal=0.001, initial_molecules=4, tile_id=1)
        for index in range(2000):
            cache.access_block(70_000 + index, 0)
            cache.access_block(90_000 + index, 1)
        denied = [e for e in cache.resizer.log if e[2] == "grow-denied"]
        assert denied
