"""Resize-mechanism tests: flush byte-identity and the chash backend.

Two suites:

* **Byte identity** — the refactor that extracted
  :class:`~repro.molecular.resize.ResizeMechanism` from the resizer must
  not change the flush backend's observable behaviour. A
  ``_LegacyMechanism`` embeds the pre-refactor ``_grow`` / ``_withdraw``
  / ``_repair`` bodies verbatim (commit ``bae4421``) and replays the
  same stream as the current flush backend across placements, triggers
  and fault injection; stats, occupancy, resize logs and telemetry must
  match. Two deliberate deltas are excluded: the new data-movement
  counters (``resize_blocks_moved`` / ``resize_spill_writebacks`` /
  ``resize_remap_work`` — the legacy resizer never counted displaced
  lines) and the ``withdraw-denied`` log entries the legacy resizer
  silently dropped (the ISSUE's bugfix).
* **chash** — ring determinism and probing, victim selection,
  occupancy-preserving withdrawal, differential-oracle agreement across
  all access paths, and the experiment's headline verdict.
"""

import random

import pytest

from repro.audit.invariants import assert_invariants
from repro.audit.oracle import AppSpec, Scenario, run_oracle
from repro.common.errors import ConfigError
from repro.faults.injector import apply_fault
from repro.faults.spec import FaultSpec
from repro.molecular.cache import MolecularCache
from repro.molecular.chash import (
    PROBE_LIMIT,
    ConsistentHashMechanism,
    MoleculeRing,
    mix64,
    ring_points,
)
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.molecular.resize import ResizeMechanism
from repro.sim.experiments.resize_mechanism import run_resize_mechanism_cell
from repro.telemetry.bus import EventBus
from repro.telemetry.events import (
    MoleculeGranted,
    MoleculeRemapped,
    MoleculeWithdrawn,
    RegionRepaired,
    event_from_dict,
)
from repro.telemetry.sinks import RingBufferSink

#: Counters the refactor introduced — the legacy resizer never kept
#: them, so the byte-identity comparison excludes exactly this set.
NEW_STATS_KEYS = frozenset(
    {"resize_blocks_moved", "resize_spill_writebacks", "resize_remap_work"}
)


class _LegacyMechanism(ResizeMechanism):
    """The pre-refactor resizer actions, bodies verbatim from bae4421.

    ``self.log`` became ``self.resizer.log`` (the only mechanical
    adaptation); behaviour — including the silent fully-denied
    withdrawal — is otherwise untouched.
    """

    def grow(self, region, amount, total_accesses):
        if amount <= 0:
            return
        cluster = self.cache.cluster_of_tile(region.home_tile_id)
        granted = cluster.ulmo.allocate(region.asid, amount, region.home_tile_id)
        for molecule in granted:
            row = self.cache.placement.add_row_index(region)
            region.add_molecule(molecule, row)
        if granted:
            region.last_allocation = len(granted)
            self.cache.stats.molecules_granted += len(granted)
            self.resizer.log.append((total_accesses, region.asid, "grow", len(granted)))
            bus = getattr(self.cache, "telemetry", None)
            if bus is not None:
                bus.emit(
                    MoleculeGranted(
                        accesses=total_accesses,
                        asid=region.asid,
                        count=len(granted),
                        tiles=sorted({m.tile_id for m in granted}),
                        molecules=region.molecule_count,
                    )
                )
        else:
            self.resizer.log.append((total_accesses, region.asid, "grow-denied", amount))

    def repair(self, region, total_accesses):
        wanted = region.pending_repair
        if wanted <= 0:
            return
        cluster = self.cache.cluster_of_tile(region.home_tile_id)
        granted = cluster.ulmo.allocate(region.asid, wanted, region.home_tile_id)
        for molecule in granted:
            row = self.cache.placement.add_row_index(region)
            region.add_molecule(molecule, row)
        if granted:
            region.pending_repair -= len(granted)
            self.cache.stats.molecules_repaired += len(granted)
            self.resizer.log.append((total_accesses, region.asid, "repair", len(granted)))
            bus = getattr(self.cache, "telemetry", None)
            if bus is not None:
                bus.emit(
                    RegionRepaired(
                        accesses=total_accesses,
                        asid=region.asid,
                        requested=wanted,
                        granted=len(granted),
                        tiles=sorted({m.tile_id for m in granted}),
                        molecules=region.molecule_count,
                    )
                )
        else:
            self.resizer.log.append((total_accesses, region.asid, "repair-denied", wanted))

    def withdraw(self, region, amount, total_accesses):
        withdrawn = 0
        dirty_flushed = 0
        for _ in range(amount):
            if region.molecule_count <= self.policy.min_molecules:
                break
            molecule = self.cache.placement.choose_withdrawal(region)
            flushed = region.detach_molecule(molecule)
            tile = self.cache.tile_of(molecule.tile_id)
            tile.release(molecule)
            dirty = 0
            for block, was_dirty in flushed:
                if was_dirty:
                    dirty += 1
                self.cache.placement.on_evict(region, block)
            self.cache.stats.writebacks_to_memory += dirty
            self.cache.stats.flush_writebacks += dirty
            dirty_flushed += dirty
            withdrawn += 1
        if withdrawn:
            self.cache.stats.molecules_withdrawn += withdrawn
            self.resizer.log.append((total_accesses, region.asid, "withdraw", withdrawn))
            bus = getattr(self.cache, "telemetry", None)
            if bus is not None:
                bus.emit(
                    MoleculeWithdrawn(
                        accesses=total_accesses,
                        asid=region.asid,
                        count=withdrawn,
                        writebacks=dirty_flushed,
                        molecules=region.molecule_count,
                    )
                )


# ------------------------------------------------------------ byte identity


def _identity_cache(placement: str, trigger: str):
    config = MolecularCacheConfig(
        molecule_bytes=512,
        line_bytes=64,
        molecules_per_tile=8,
        tiles_per_cluster=2,
        clusters=1,
        strict=False,
    )
    policy = ResizePolicy(
        period=300,
        trigger=trigger,
        period_floor=100,
        min_window_refs=16,
        max_allocation=4,
        mechanism="flush",
    )
    cache = MolecularCache(config, policy, placement=placement)
    cache.assign_application(0, goal=0.2, tile_id=0)
    cache.assign_application(1, goal=0.2, tile_id=1)
    sink = RingBufferSink(capacity=100_000)
    cache.attach_telemetry(EventBus([sink], epoch_refs=1_000))
    return cache, sink


def _identity_ops(count: int, seed: int, faults: bool):
    """A phased, write-heavy stream that grows, shrinks and (optionally)
    faults — plus direct floor-withdrawals to exercise the denied path."""
    rng = random.Random(f"{seed}/resize-identity")
    ops = []
    for index in range(count):
        if faults and index in (count // 3, 2 * count // 3):
            ops.append(("fault", rng.randrange(16)))
        if index and index % (count // 4) == 0:
            # A deliberate over-withdrawal: at or near the floor the
            # current backend logs withdraw-denied, the legacy one says
            # nothing — the comparison filters exactly that entry.
            ops.append(("force_withdraw", rng.randrange(2), 8))
        phase = index // 400
        asid = rng.randrange(2)
        base = 1 + asid * 100_000
        span = 96 if (phase + asid) % 2 else 12
        if rng.random() < 0.85:
            block = base + rng.randrange(span)
        else:
            block = base + span + rng.randrange(span * 4)
        ops.append(("access", asid, block, rng.random() < 0.5))
    return ops


def _drive_identity(cache, ops):
    for op in ops:
        if op[0] == "access":
            cache.access_block(op[2], op[1], op[3])
        elif op[0] == "fault":
            apply_fault(cache, FaultSpec(kind="hard", at=0, target=op[1]))
        elif op[0] == "force_withdraw":
            region = cache.regions.get(op[1])
            if region is not None and region.goal is not None:
                cache.resizer._withdraw(
                    region, op[2], cache.stats.total.accesses
                )


@pytest.mark.parametrize("placement", ["random", "randy", "lru_direct"])
@pytest.mark.parametrize(
    "trigger", ["constant", "global_adaptive", "per_app_adaptive"]
)
@pytest.mark.parametrize("faults", [False, True])
def test_flush_backend_is_byte_identical_to_legacy(placement, trigger, faults):
    ops = _identity_ops(2_500, seed=7, faults=faults)

    current, current_sink = _identity_cache(placement, trigger)
    legacy, legacy_sink = _identity_cache(placement, trigger)
    legacy.resizer.mechanism = _LegacyMechanism(legacy.resizer)

    _drive_identity(current, ops)
    _drive_identity(legacy, ops)

    current_stats = {
        k: v for k, v in current.stats.as_dict().items()
        if k not in NEW_STATS_KEYS
    }
    legacy_stats = {
        k: v for k, v in legacy.stats.as_dict().items()
        if k not in NEW_STATS_KEYS
    }
    assert current_stats == legacy_stats
    assert current.occupancy_report() == legacy.occupancy_report()
    current_log = [
        entry for entry in current.resizer.log
        if entry[2] != "withdraw-denied"
    ]
    assert current_log == list(legacy.resizer.log)
    assert [e.as_dict() for e in current_sink] == [
        e.as_dict() for e in legacy_sink
    ]
    assert_invariants(current, counters=True)
    assert_invariants(legacy, counters=True)


# ------------------------------------------------------------------- ring


class _FakeMolecule:
    __slots__ = ("molecule_id",)

    def __init__(self, molecule_id):
        self.molecule_id = molecule_id


class TestRing:
    def test_mix64_is_deterministic_and_64_bit(self):
        assert mix64(0) == mix64(0)
        for value in (0, 1, 2**40, 2**63):
            assert 0 <= mix64(value) < 2**64
        assert len({mix64(v) for v in range(1_000)}) == 1_000

    def test_ring_points_count(self):
        assert len(ring_points(3)) == 32
        assert ring_points(3) == ring_points(3)
        assert ring_points(3) != ring_points(4)

    def test_identical_membership_builds_identical_rings(self):
        molecules = [_FakeMolecule(i) for i in range(6)]
        a = MoleculeRing(molecules)
        b = MoleculeRing(reversed(molecules))
        assert a.points == b.points
        assert [m.molecule_id for m in a.owners] == [
            m.molecule_id for m in b.owners
        ]

    def test_no_key_moves_between_survivors_on_growth(self):
        """The consistent-hashing property the migration pass relies on."""
        old = MoleculeRing([_FakeMolecule(i) for i in range(5)])
        new = MoleculeRing([_FakeMolecule(i) for i in range(6)])
        for key in range(2_000):
            before = old.owner(key).molecule_id
            after = new.owner(key).molecule_id
            if after != before:
                assert after == 5  # moved keys only ever land on the newcomer

    def test_slices_are_reasonably_balanced(self):
        ring = MoleculeRing([_FakeMolecule(i) for i in range(8)])
        counts = {i: 0 for i in range(8)}
        for key in range(8_000):
            counts[ring.owner(key).molecule_id] += 1
        assert min(counts.values()) > 0
        assert max(counts.values()) / min(counts.values()) < 4.0

    def test_owners_from_yields_each_molecule_once(self):
        molecules = [_FakeMolecule(i) for i in range(7)]
        ring = MoleculeRing(molecules)
        for key in (0, 17, 99_991):
            sequence = [m.molecule_id for m in ring.owners_from(key)]
            assert sequence[0] == ring.owner(key).molecule_id
            assert len(sequence) == 7
            assert sorted(sequence) == list(range(7))

    def test_probe_limit_is_sane(self):
        assert 1 <= PROBE_LIMIT <= 64


# ------------------------------------------------------------ chash backend


def _chash_cache(mechanism="chash", trigger="constant", molecules_per_tile=8):
    config = MolecularCacheConfig(
        molecule_bytes=512,
        line_bytes=64,
        molecules_per_tile=molecules_per_tile,
        tiles_per_cluster=2,
        clusters=1,
        strict=False,
    )
    policy = ResizePolicy(
        period=10_000_000,  # resizes only via direct calls
        trigger=trigger,
        mechanism=mechanism,
    )
    cache = MolecularCache(config, policy, placement="randy")
    cache.assign_application(0, goal=0.2, tile_id=0)
    return cache


class TestDropCleanLine:
    def test_drops_clean_occupant_and_returns_it(self):
        cache = _chash_cache(mechanism="flush")
        region = cache.regions[0]
        cache.access_block(5, 0, write=False)  # clean resident line
        molecule = region.presence[5]
        index = molecule.index_of(5)
        assert region.drop_clean_line(molecule, index) == 5
        assert 5 not in region.presence
        assert molecule.lines[index] is None

    def test_refuses_dirty_occupant(self):
        cache = _chash_cache(mechanism="flush")
        region = cache.regions[0]
        cache.access_block(5, 0, write=True)
        molecule = region.presence[5]
        assert region.drop_clean_line(molecule, molecule.index_of(5)) is None
        assert 5 in region.presence

    def test_refuses_empty_slot(self):
        cache = _chash_cache(mechanism="flush")
        region = cache.regions[0]
        molecule = next(iter(region.molecules()))
        assert region.drop_clean_line(molecule, 0) is None

    def test_bumps_content_version(self):
        cache = _chash_cache(mechanism="flush")
        region = cache.regions[0]
        cache.access_block(5, 0, write=False)
        molecule = region.presence[5]
        before = region.content_version
        region.drop_clean_line(molecule, molecule.index_of(5))
        assert region.content_version == before + 1


class TestChashWithdraw:
    def _fill(self, cache, blocks, write=True):
        for block in blocks:
            cache.access_block(block, 0, write=write)

    def test_withdraw_remaps_instead_of_flushing(self):
        """A lightly loaded region loses no dirty data on withdrawal."""
        cache = _chash_cache()
        region = cache.regions[0]
        self._fill(cache, range(1, 9))  # 8 dirty lines, region half-full
        resident_before = set(region.presence)
        cache.resizer._withdraw(region, 2, cache.stats.total.accesses)
        assert cache.stats.molecules_withdrawn == 2
        # With survivor slots available (and PROBE_LIMIT probing) every
        # dirty line must be adopted on-chip, not written back.
        assert set(region.presence) == resident_before
        assert cache.stats.flush_writebacks == 0
        assert cache.stats.resize_spill_writebacks == 0
        assert_invariants(cache, counters=True)

    def test_reclaim_adopts_a_loaded_molecules_lines(self):
        """Emptying a molecule with resident dirty data spills nothing."""
        cache = _chash_cache()
        region = cache.regions[0]
        self._fill(cache, range(1, 9))
        molecule = region.presence[5]
        resident = sum(1 for line in molecule.lines if line is not None)
        assert resident > 0
        writebacks, moved = cache.resizer.mechanism._reclaim(region, molecule)
        assert (writebacks, moved) == (0, resident)
        assert cache.stats.resize_blocks_moved == resident
        assert 5 in region.presence  # adopted by a survivor, still dirty
        assert region.presence[5].dirty[region.presence[5].index_of(5)]

    def test_flush_withdraw_writes_back_what_chash_keeps(self):
        def dirty_resident(cache):
            return sum(
                1
                for m in cache.regions[0].molecules()
                for i, line in enumerate(m.lines)
                if line is not None and m.dirty[i]
            )

        chash = _chash_cache(mechanism="chash")
        flush = _chash_cache(mechanism="flush")
        for cache in (chash, flush):
            # Fill the region completely; the %3 stride keeps each
            # direct-mapped index a clean/dirty mix so swap-adoption
            # (drop a clean occupant, keep the dirty line) can fire.
            for block in range(1, 33):
                cache.access_block(block, 0, write=(block % 3 == 0))
            region = cache.regions[0]
            cache.resizer._withdraw(region, 2, cache.stats.total.accesses)
        assert chash.stats.flush_writebacks < flush.stats.flush_writebacks
        assert dirty_resident(chash) > dirty_resident(flush)

    def test_victim_selection_prefers_emptiest_molecule(self):
        cache = _chash_cache()
        region = cache.regions[0]
        for block in range(1, 30):
            cache.access_block(block, 0, write=True)
        mechanism = cache.resizer.mechanism
        assert isinstance(mechanism, ConsistentHashMechanism)
        victim = mechanism._choose_victim(region)
        lightest = min(
            sum(1 for line in m.lines if line is not None)
            + sum(
                1
                for i, line in enumerate(m.lines)
                if line is not None and m.dirty[i]
            )
            for m in region.molecules()
        )
        cost = sum(
            1 for line in victim.lines if line is not None
        ) + sum(
            1
            for i, line in enumerate(victim.lines)
            if line is not None and victim.dirty[i]
        )
        assert cost == lightest

    def test_grow_migrates_only_dirty_remapped_lines(self):
        cache = _chash_cache()
        region = cache.regions[0]
        for block in range(1, 50):
            cache.access_block(block, 0, write=(block % 2 == 0))
        moved_before = cache.stats.resize_blocks_moved
        cache.resizer._grow(region, 4, cache.stats.total.accesses)
        migrated = cache.stats.resize_blocks_moved - moved_before
        dirty_total = sum(
            1
            for m in region.molecules()
            for i, line in enumerate(m.lines)
            if line is not None and m.dirty[i]
        )
        assert 0 <= migrated <= dirty_total
        assert cache.stats.flush_writebacks == 0  # migration is on-chip
        assert_invariants(cache, counters=True)


class TestChashEndToEnd:
    def test_invariants_hold_under_churn(self):
        config = MolecularCacheConfig(
            molecule_bytes=512,
            line_bytes=64,
            molecules_per_tile=8,
            tiles_per_cluster=2,
            clusters=1,
            strict=False,
        )
        policy = ResizePolicy(
            period=250,
            trigger="global_adaptive",
            period_floor=100,
            min_window_refs=16,
            max_allocation=4,
            mechanism="chash",
        )
        cache = MolecularCache(config, policy, placement="randy")
        cache.assign_application(0, goal=0.2, tile_id=0)
        cache.assign_application(1, goal=0.2, tile_id=1)
        rng = random.Random("chash-churn")
        for index in range(6_000):
            asid = rng.randrange(2)
            span = 96 if (index // 500 + asid) % 2 else 12
            block = 1 + asid * 100_000 + rng.randrange(span)
            cache.access_block(block, asid, rng.random() < 0.5)
            if index in (2_000, 4_000):
                apply_fault(
                    cache, FaultSpec(kind="hard", at=0, target=rng.randrange(16))
                )
            if index % 500 == 0:
                assert_invariants(cache, counters=True)
        assert cache.stats.molecules_withdrawn > 0
        assert cache.stats.resize_blocks_moved > 0
        assert_invariants(cache, counters=True)

    def test_all_access_paths_agree_under_chash(self):
        """The differential oracle holds with the chash backend active."""
        scenario = Scenario(
            apps=(
                AppSpec(asid=0, goal=0.1, tile_id=0, initial_molecules=2),
                AppSpec(asid=1, goal=0.2, tile_id=1, initial_molecules=2),
            ),
            placement="randy",
            trigger="global_adaptive",
            mechanism="chash",
        )
        rng = random.Random("chash-oracle")
        ops = []
        for index in range(1_500):
            asid = rng.randrange(2)
            span = 48 if (index // 300 + asid) % 2 else 8
            block = 1 + asid * 100_000 + rng.randrange(span)
            ops.append(("access", asid, block, rng.random() < 0.4))
        report = run_oracle(scenario, ops, audit_every=500)
        assert report.divergences == []


# ----------------------------------------------------------- configuration


def test_resize_policy_rejects_unknown_mechanism():
    with pytest.raises(ConfigError):
        ResizePolicy(mechanism="teleport")


def test_molecule_remapped_round_trips_through_the_registry():
    event = MoleculeRemapped(
        accesses=123,
        asid=1,
        action="withdraw",
        count=2,
        moved=9,
        spilled=1,
        molecules=6,
    )
    assert event_from_dict(event.as_dict()) == event


def test_idle_global_round_holds_the_period():
    """An all-empty window must not slash the global-adaptive period 10x."""
    cache = _chash_cache(mechanism="flush", trigger="global_adaptive")
    resizer = cache.resizer
    before = resizer.global_period
    resizer.force_resize()  # no accesses: every managed window is empty
    assert resizer.global_period == before


# -------------------------------------------------------------- experiment


def test_chash_moves_strictly_less_than_flush_on_the_churn_cell():
    """The ISSUE's acceptance bar, pinned on the constant-trigger cell."""
    flush = run_resize_mechanism_cell("flush", "constant", 30_000, seed=1)
    chash = run_resize_mechanism_cell("chash", "constant", 30_000, seed=1)
    assert chash["data_moved"] < flush["data_moved"]
    assert flush["repaired"] > 0 and chash["repaired"] > 0  # faults fired
