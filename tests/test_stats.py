"""Unit tests for cache statistics bookkeeping."""

import pytest

from repro.caches.stats import AsidCounters, CacheStats


class TestAsidCounters:
    def test_miss_arithmetic(self):
        counters = AsidCounters(accesses=10, hits=7)
        assert counters.misses == 3
        assert counters.miss_rate == pytest.approx(0.3)
        assert counters.hit_rate == pytest.approx(0.7)

    def test_zero_accesses(self):
        counters = AsidCounters()
        assert counters.miss_rate == 0.0
        assert counters.hit_rate == 0.0

    def test_copy_is_independent(self):
        counters = AsidCounters(accesses=1)
        clone = counters.copy()
        clone.accesses = 99
        assert counters.accesses == 1

    def test_add(self):
        a = AsidCounters(accesses=2, hits=1, evictions=1, writebacks=1)
        b = AsidCounters(accesses=3, hits=2)
        a.add(b)
        assert (a.accesses, a.hits, a.evictions, a.writebacks) == (5, 3, 1, 1)


class TestCacheStats:
    def test_record_access_updates_both_horizons(self):
        stats = CacheStats()
        stats.record_access(1, hit=True)
        stats.record_access(1, hit=False)
        assert stats.total.accesses == 2
        assert stats.window_total.accesses == 2
        assert stats.miss_rate(1) == pytest.approx(0.5)
        assert stats.window_miss_rate(1) == pytest.approx(0.5)

    def test_window_reset_preserves_cumulative(self):
        stats = CacheStats()
        stats.record_access(1, hit=False)
        stats.reset_window()
        assert stats.total.accesses == 1
        assert stats.window_total.accesses == 0
        stats.record_access(1, hit=True)
        assert stats.window_miss_rate(1) == 0.0
        assert stats.miss_rate(1) == pytest.approx(0.5)

    def test_reset_window_for_single_asid(self):
        stats = CacheStats()
        stats.record_access(1, hit=False)
        stats.record_access(2, hit=False)
        stats.reset_window_for(1)
        assert 1 not in stats.window_per_asid
        assert stats.window_per_asid[2].accesses == 1
        assert stats.window_total.accesses == 1

    def test_record_eviction(self):
        stats = CacheStats()
        stats.record_eviction(3, writeback=True)
        stats.record_eviction(3, writeback=False)
        assert stats.per_asid[3].evictions == 2
        assert stats.per_asid[3].writebacks == 1

    def test_full_reset(self):
        stats = CacheStats()
        stats.record_access(1, hit=False)
        stats.reset()
        assert stats.total.accesses == 0
        assert stats.per_asid == {}

    def test_unknown_asid_rates_zero(self):
        stats = CacheStats()
        assert stats.miss_rate(42) == 0.0
        assert stats.window_miss_rate(42) == 0.0

    def test_as_dict(self):
        stats = CacheStats()
        stats.record_access(1, hit=False)
        stats.record_access(1, hit=True)
        snapshot = stats.as_dict()
        assert snapshot["accesses"] == 2
        assert snapshot["miss_rate"] == pytest.approx(0.5)
        assert snapshot["per_asid"][1]["hits"] == 1
