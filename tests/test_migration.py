"""Tests for context-switch tile migration (paper section 3, Figure 2)."""

import pytest

from repro.common.errors import ConfigError
from tests.conftest import make_cache


class TestMigration:
    def test_rehomes_region(self, tiny_config):
        cache = make_cache(tiny_config)
        region = cache.assign_application(0, tile_id=0, initial_molecules=2)
        cache.migrate_application(0, 1)
        assert region.home_tile_id == 1

    def test_old_data_reachable_via_ulmo(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0, initial_molecules=2)
        cache.access_block(5, 0)
        cache.migrate_application(0, 1)
        result = cache.access_block(5, 0)
        assert result.hit
        # the line still lives on tile 0: a remote hit from tile 1
        assert result.molecules_probed_remote > 0

    def test_search_order_updated(self, tiny_config):
        cache = make_cache(tiny_config)
        region = cache.assign_application(0, tile_id=0, initial_molecules=6)
        assert region.contributing_tiles()[0] == 0
        cache.migrate_application(0, 1)
        assert region.contributing_tiles()[0] == 1

    def test_new_growth_prefers_new_home(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0, initial_molecules=1)
        cache.migrate_application(0, 1)
        cluster = cache.clusters[0]
        granted = cluster.ulmo.allocate(0, 2, cache.regions[0].home_tile_id)
        assert all(m.tile_id == 1 for m in granted)

    def test_unknown_asid_rejected(self, tiny_config):
        cache = make_cache(tiny_config)
        from repro.common.errors import UnknownASIDError

        with pytest.raises(UnknownASIDError):
            cache.migrate_application(9, 0)

    def test_unknown_tile_rejected(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0)
        with pytest.raises(ConfigError):
            cache.migrate_application(0, 99)

    def test_cross_cluster_rejected(self):
        from repro.molecular import MolecularCacheConfig

        config = MolecularCacheConfig(
            molecule_bytes=1024, molecules_per_tile=2, tiles_per_cluster=2,
            clusters=2, strict=False,
        )
        cache = make_cache(config)
        cache.assign_application(0, tile_id=0)
        with pytest.raises(ConfigError):
            cache.migrate_application(0, 2)  # tile 2 is in cluster 1

    def test_shared_region_not_migratable(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.create_shared_region(0, 1)
        cache.assign_shared_application(3, 0)
        with pytest.raises(ConfigError):
            cache.migrate_application(3, 1)

    def test_probe_accounting_after_migration(self, tiny_config):
        cache = make_cache(tiny_config)
        cache.assign_application(0, tile_id=0, initial_molecules=2)
        cache.migrate_application(0, 1)
        result = cache.access_block(77, 0)  # miss; region has no tile-1 mols
        assert result.molecules_probed_local == 0
        assert result.molecules_probed_remote == 2
