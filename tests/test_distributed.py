"""Multi-worker campaign drains: real processes, real SIGKILLs.

The acceptance bar for ``sweep --distributed`` is byte-identity: however
many workers drain the store, and whatever chaos (kills, hangs, clock
skew) hits them mid-drain, the assembled output must equal the serial
run's exactly. These tests spawn genuine OS processes through
:func:`repro.campaign.worker.run_distributed` and sabotage them with
deterministic :class:`~repro.faults.chaos.WorkerChaos` directives.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    LeaseConfig,
    ResultStore,
    get_experiment,
    merge_worker_events,
    run_distributed,
    run_worker,
)
from repro.common.errors import ConfigError
from repro.faults.chaos import WorkerChaos
from repro.telemetry.sinks import read_events
from repro.telemetry.events import JobQuarantined, LeaseAcquired, LeaseExpired

TINY_SCALE = "0.02"


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", TINY_SCALE)


def _serial_text(target, specs, **options) -> str:
    results = []
    from repro.campaign import execute_spec

    for spec in specs:
        results.append(execute_spec(spec.as_payload())["result"])
    return target.assemble_results(specs, results, **options).format()


# ------------------------------------------------------------ worker chaos


class TestWorkerChaos:
    def test_parse_grammar(self):
        chaos = WorkerChaos.parse("kill@2,hang@1:0.5,poison@abcd")
        assert chaos.kill_after == 2
        assert chaos.hang_at == 1 and chaos.hang_seconds == 0.5
        assert chaos.poison == "abcd" and not chaos.poison_raise

    def test_parse_poison_raise(self):
        chaos = WorkerChaos.parse("poison@ab12:raise")
        assert chaos.poison == "ab12" and chaos.poison_raise

    @pytest.mark.parametrize("text", [None, "", "none"])
    def test_parse_empty_means_no_chaos(self, text):
        assert WorkerChaos.parse(text) is None

    @pytest.mark.parametrize(
        "text", ["kill@0", "hang@1:-2", "explode@3", "kill@x"]
    )
    def test_parse_rejects_bad_grammar(self, text):
        with pytest.raises(ConfigError):
            WorkerChaos.parse(text)

    def test_poison_raise_raises_on_matching_hash(self):
        chaos = WorkerChaos.parse("poison@ab:raise")
        chaos.before_execute(1, "ffff")  # no match, no effect
        with pytest.raises(RuntimeError, match="poisoned"):
            chaos.before_execute(1, "abcd")


# -------------------------------------------------------------- run_worker


class TestSingleWorkerDrain:
    def test_drains_a_manifest_to_completion(self, tmp_path):
        target = get_experiment("table1")
        specs = target.jobs(refs=1000)[:4]
        store = ResultStore(tmp_path)
        store.write_manifest("table1", specs, {})
        report = run_worker(store, config=LeaseConfig(ttl=5.0))
        assert report.committed == 4
        assert report.failed == 0 and report.fenced == 0
        done = store.completed([s.content_hash() for s in specs])
        assert len(done) == 4

    def test_second_drain_is_a_noop(self, tmp_path):
        target = get_experiment("table1")
        specs = target.jobs(refs=1000)[:2]
        store = ResultStore(tmp_path)
        store.write_manifest("table1", specs, {})
        run_worker(store)
        again = run_worker(store)
        assert again.committed == 0

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="manifest"):
            run_worker(ResultStore(tmp_path))


# --------------------------------------------------------- run_distributed


class TestDistributedDrain:
    def test_requires_two_workers(self, tmp_path):
        specs = get_experiment("table1").jobs(refs=1000)[:1]
        with pytest.raises(ConfigError, match=">= 2"):
            run_distributed(ResultStore(tmp_path), specs,
                            campaign="table1", workers=1)

    def test_clean_drain_matches_serial_byte_for_byte(self, tmp_path):
        target = get_experiment("table1")
        specs = target.jobs(refs=1000)
        store = ResultStore(tmp_path)
        outcome = run_distributed(
            store, specs, campaign="table1", workers=3,
            config=LeaseConfig(ttl=5.0),
        )
        assert outcome.completed == len(specs)
        assert not outcome.degraded
        text = target.assemble_results(
            specs, outcome.results_in_order(store)
        ).format()
        assert text == _serial_text(target, specs)

    def test_sigkilled_worker_is_reclaimed_and_output_identical(
        self, tmp_path
    ):
        """The satellite scenario: a worker dies mid-job holding a lease;
        a peer notices the expiry, reclaims, and the campaign output is
        byte-identical to serial."""
        target = get_experiment("table1")
        specs = target.jobs(refs=1000)
        store = ResultStore(tmp_path)
        outcome = run_distributed(
            store, specs, campaign="table1", workers=3,
            config=LeaseConfig(ttl=0.5),
            record_events=True,
            worker_chaos=["kill@2", None, None],
        )
        # SIGKILL shows up as a negative exitcode on the saboteur.
        assert any(code not in (0, 1) for code in outcome.exitcodes)
        assert outcome.completed == len(specs)
        assert not outcome.degraded
        text = target.assemble_results(
            specs, outcome.results_in_order(store)
        ).format()
        assert text == _serial_text(target, specs)
        # The death is visible in the telemetry: a LeaseExpired for the
        # killed owner, and a reclaimed LeaseAcquired with a bumped token.
        merged = tmp_path / "events.jsonl"
        assert merge_worker_events(store.root, merged) > 0
        events = list(read_events(merged))
        expiries = [e for e in events if isinstance(e, LeaseExpired)]
        assert expiries, "the killed worker's lease never expired"
        reclaims = [
            e for e in events
            if isinstance(e, LeaseAcquired) and e.reclaimed
        ]
        assert any(e.token >= 2 for e in reclaims)

    def test_hung_worker_loses_its_lease_but_drain_completes(self, tmp_path):
        """job_timeout turns a hang into an expiry; the woken zombie's
        commit is fenced (or stands down) and correctness holds."""
        target = get_experiment("table1")
        specs = target.jobs(refs=1000)[:6]
        store = ResultStore(tmp_path)
        outcome = run_distributed(
            store, specs, campaign="table1", workers=2,
            config=LeaseConfig(ttl=0.4, job_timeout=0.2),
            worker_chaos=["hang@1:1.5", None],
        )
        assert outcome.completed == len(specs)
        assert not outcome.degraded
        text = target.assemble_results(
            specs, outcome.results_in_order(store)
        ).format()
        assert text == _serial_text(target, specs)

    def test_clock_skewed_worker_cannot_corrupt_the_drain(self, tmp_path):
        """A fast clock reclaims early and races the live owner; fencing
        plus determinism keep the results correct anyway."""
        target = get_experiment("table1")
        specs = target.jobs(refs=1000)
        store = ResultStore(tmp_path)
        outcome = run_distributed(
            store, specs, campaign="table1", workers=3,
            config=LeaseConfig(ttl=2.0),
            worker_skews=[30.0, 0.0, -30.0],
        )
        assert outcome.completed == len(specs)
        text = target.assemble_results(
            specs, outcome.results_in_order(store)
        ).format()
        assert text == _serial_text(target, specs)

    def test_tenancy_experiment_converges_too(self, tmp_path):
        """Acceptance asks for >= 2 registry experiments; tenancy is the
        second (its jobs exercise a different execute path)."""
        target = get_experiment("tenancy")
        options = {"tenants": [10], "churn": [0.0], "skew": [0.5]}
        specs = target.jobs(**options)
        store = ResultStore(tmp_path)
        outcome = run_distributed(
            store, specs, campaign="tenancy", workers=2,
            options=options, config=LeaseConfig(ttl=1.0),
            worker_chaos=["kill@1", None],
        )
        assert outcome.completed == len(specs)
        text = target.assemble_results(
            specs, outcome.results_in_order(store), **options
        ).format()
        assert text == _serial_text(target, specs, **options)


# -------------------------------------------------------------- quarantine


class TestPoisonQuarantine:
    def test_poison_job_is_parked_and_campaign_degrades(self, tmp_path):
        target = get_experiment("table1")
        specs = target.jobs(refs=1000)[:5]
        store = ResultStore(tmp_path)
        poison = specs[0].content_hash()[:8]
        chaos = f"poison@{poison}:raise"
        outcome = run_distributed(
            store, specs, campaign="table1", workers=2,
            config=LeaseConfig(ttl=0.5, max_reclaims=2),
            record_events=True,
            worker_chaos=[chaos, chaos],
        )
        assert outcome.degraded
        assert outcome.completed == len(specs) - 1
        assert len(outcome.quarantined) == 1
        record = outcome.quarantined[0]
        assert record["job"] == specs[0].content_hash()
        assert record["attempts"] == 2
        assert all(e["reason"] == "failed" for e in record["history"])
        report = outcome.degraded_report()
        assert "DEGRADED" in report and poison[:8] in report
        assert "poisoned" in report  # the last error is named
        # The quarantine event made it into telemetry.
        merged = tmp_path / "events.jsonl"
        merge_worker_events(store.root, merged)
        parked = [
            e for e in read_events(merged) if isinstance(e, JobQuarantined)
        ]
        assert len(parked) == 1 and parked[0].attempts == 2

    def test_sigkill_crash_loop_quarantines(self, tmp_path):
        """A job that SIGKILLs every worker that touches it must not
        crash-loop the fleet forever."""
        target = get_experiment("table1")
        specs = target.jobs(refs=1000)[:3]
        store = ResultStore(tmp_path)
        poison = specs[0].content_hash()[:8]
        chaos = f"poison@{poison}"  # SIGKILL flavour, not raise
        # Two deaths exhaust the budget; the *third* worker quarantines
        # at the reclaim decision and never touches the job itself.
        outcome = run_distributed(
            store, specs, campaign="table1", workers=3,
            config=LeaseConfig(ttl=0.4, max_reclaims=2),
            worker_chaos=[chaos, chaos, chaos],
        )
        assert outcome.degraded
        assert outcome.completed == len(specs) - 1
        record = outcome.quarantined[0]
        assert record["attempts"] == 2
        assert all(e["reason"] == "expired" for e in record["history"])
