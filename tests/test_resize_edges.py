"""Resizer edge cases: floors, exhausted pools, and repair/shrink races.

Satellite coverage for the fault-tolerance work: Algorithm 1's actions at
the boundaries — withdrawing into the ``min_molecules`` floor, growing
against an empty free pool, and a fault repair racing a goal-driven
shrink inside the same resize epoch.
"""

from __future__ import annotations

from repro.audit.invariants import assert_invariants
from repro.common.rng import XorShift64
from repro.faults import FaultSpec, apply_fault
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy


def build_cache():
    """Two managed regions (2 molecules each) on 3 tiles x 6 molecules."""
    config = MolecularCacheConfig(
        molecule_bytes=512,
        line_bytes=64,
        molecules_per_tile=6,
        tiles_per_cluster=3,
        clusters=1,
        strict=False,
    )
    policy = ResizePolicy(
        period=200, trigger="constant", min_window_refs=16, period_floor=50
    )
    cache = MolecularCache(
        config, policy, placement="randy", rng=XorShift64(11)
    )
    cache.assign_application(0, goal=0.2, tile_id=0, initial_molecules=2)
    cache.assign_application(1, goal=0.3, tile_id=1, initial_molecules=2)
    return cache


def actions_for(cache, asid: int) -> list[tuple[str, int]]:
    """(action, amount) log entries for one region, in order."""
    return [
        (action, amount)
        for _count, logged_asid, action, amount in cache.resizer.log
        if logged_asid == asid
    ]


# ------------------------------------------------------------ min_molecules


class TestWithdrawFloor:
    def test_withdraw_stops_at_the_region_floor(self):
        cache = build_cache()
        region = cache.regions[0]
        cache.resizer._grow(region, 4, 0)
        assert region.molecule_count == 6
        # ask for far more than the floor allows
        cache.resizer._withdraw(region, 100, 1)
        floor = cache.resize_policy.min_molecules
        assert region.molecule_count == floor
        assert actions_for(cache, 0)[-1] == ("withdraw", 6 - floor)
        assert_invariants(cache)

    def test_withdraw_at_the_floor_logs_withdraw_denied(self):
        """A fully denied withdrawal is chronicled, symmetric with
        grow-denied — it used to vanish from the log entirely."""
        cache = build_cache()
        region = cache.regions[0]
        assert region.molecule_count == cache.resize_policy.min_molecules
        cache.resizer._withdraw(region, 5, 1)
        assert region.molecule_count == cache.resize_policy.min_molecules
        assert actions_for(cache, 0)[-1] == ("withdraw-denied", 5)
        assert cache.stats.molecules_withdrawn == 0

    def test_decide_clamps_shrink_to_the_floor(self):
        """A region already at the floor with a tiny miss rate holds its
        size: the sqrt-shrink amount is clamped to zero, not logged."""
        cache = build_cache()
        region = cache.regions[0]
        region.window_accesses = 200
        region.window_misses = 20  # 10% << goal * withdraw_margin
        cache.resizer.force_resize()
        assert region.molecule_count == cache.resize_policy.min_molecules
        assert ("withdraw" not in
                {action for action, _amount in actions_for(cache, 0)})


# ----------------------------------------------------------- exhausted pool


class TestGrowExhaustion:
    def test_grow_against_an_empty_pool_logs_grow_denied(self):
        cache = build_cache()
        region = cache.regions[0]
        # drain the cluster's free pool (allocate grants partial fills,
        # so the first oversized request takes everything that is left)
        for _ in range(10):
            cache.resizer._grow(region, 100, 0)
            if actions_for(cache, 0)[-1][0] == "grow-denied":
                break
        history = actions_for(cache, 0)
        assert history[0][0] == "grow"
        assert history[-1] == ("grow-denied", 100)
        assert region.molecule_count == 2 + sum(
            amount for action, amount in history if action == "grow"
        )
        assert_invariants(cache)

    def test_denied_grow_leaves_last_allocation_alone(self):
        cache = build_cache()
        region = cache.regions[0]
        cache.resizer._grow(region, 1000, 0)  # takes the whole pool
        granted = actions_for(cache, 0)[-1][1]
        assert region.last_allocation == granted
        cache.resizer._grow(region, 3, 1)
        assert actions_for(cache, 0)[-1] == ("grow-denied", 3)
        assert region.last_allocation == granted

    def test_partial_repair_leaves_the_remainder_pending(self):
        cache = build_cache()
        # leave exactly one free molecule in the cluster
        cache.resizer._grow(cache.regions[1], 13, 0)
        region = cache.regions[0]
        region.pending_repair = 2
        cache.resizer._repair(region, 1)
        assert region.pending_repair == 1
        assert actions_for(cache, 0)[-1] == ("repair", 1)
        # nothing left: the next epoch's attempt is denied outright
        cache.resizer._repair(region, 2)
        assert region.pending_repair == 1
        assert actions_for(cache, 0)[-1] == ("repair-denied", 1)
        assert_invariants(cache)


# ------------------------------------------------------ repair/shrink race


class TestRepairShrinkRace:
    def test_repair_then_goal_driven_shrink_in_one_epoch(self):
        """A region can be repaired and shrunk in the same resize round:
        repair restores the faulted capacity first, then Algorithm 1
        decides on the restored size — both actions land in the log for
        the same epoch and the bookkeeping stays consistent."""
        cache = build_cache()
        region = cache.regions[0]
        cache.resizer._grow(region, 4, 0)
        last_allocation = region.last_allocation
        victim = next(region.molecules())
        assert apply_fault(
            cache, FaultSpec(kind="hard", at=0, target=victim.molecule_id)
        )
        assert region.pending_repair == 1
        assert region.molecule_count == 5

        # a window well under goal * withdraw_margin forces a shrink
        region.window_accesses = 200
        region.window_misses = 20
        cache.resizer.force_resize()

        history = actions_for(cache, 0)
        assert ("repair", 1) in history
        repair_at = history.index(("repair", 1))
        shrinks = [
            i for i, (action, _a) in enumerate(history) if action == "withdraw"
        ]
        assert shrinks and shrinks[-1] > repair_at  # repair ran first
        # repair restored to 6, then sqrt(6 * 0.1 / 0.2) ~ 2 withdrew
        assert region.molecule_count == 4
        # repair is capacity restoration, not a grant: the panic clamp's
        # memory of the last Algorithm-1 grant is untouched
        assert region.last_allocation == last_allocation
        assert region.pending_repair == 0
        assert cache.stats.molecules_repaired == 1
        assert_invariants(cache)

    def test_repair_does_not_count_as_algorithm1_growth(self):
        cache = build_cache()
        region = cache.regions[0]
        victim = next(region.molecules())
        apply_fault(
            cache, FaultSpec(kind="hard", at=0, target=victim.molecule_id)
        )
        before = region.last_allocation
        cache.resizer._repair(region, 1)
        assert region.last_allocation == before
        assert cache.stats.molecules_granted == 0
        assert cache.stats.molecules_repaired == 1
