"""Tenancy experiment: registry wiring, campaign equivalence, chaos pin.

The sweep's acceptance properties from the multi-tenant subsystem PR:

* ``tenancy`` is a first-class campaign experiment (decompose into one
  job per grid cell, options validated);
* a parallel campaign is byte-identical to the serial run — including a
  1000-tenant smoke cell, the scale point CI exercises;
* need-driven allocation beats the static split on the skewed-churn
  grid point (the ledgered benchmark's claim, pinned here at test
  scale);
* chaos (worker crashes + corrupted payloads) followed by a resume
  leaves the assembled sweep byte-identical to a clean serial run.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    ResultStore,
    experiment_names,
    get_experiment,
)
from repro.common.errors import ConfigError
from repro.faults import ChaosPolicy
from repro.sim.experiments.tenancy import (
    resolve_grid,
    run_tenancy,
    run_tenancy_cell,
)

#: Same tiny-scale pin as tests/test_campaign.py: real numbers, fast jobs.
TINY_SCALE = "0.02"

#: One hostile grid point, all three policies — 3 jobs per campaign.
SMALL_GRID = {"tenants": (10,), "churn": (0.3,), "skew": (1.0,)}


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", TINY_SCALE)


def run_campaign(tmp_path, jobs: int, options: dict, **runner_kwargs):
    """Run a tenancy campaign; returns (outcome, formatted text)."""
    target = get_experiment("tenancy")
    specs = target.jobs(**options)
    config_kwargs = runner_kwargs.pop("config", {})
    runner = CampaignRunner(
        ResultStore(tmp_path),
        CampaignConfig(jobs=jobs, **config_kwargs),
        **runner_kwargs,
    )
    outcome = runner.run(specs, campaign="tenancy")
    result = target.assemble_results(
        specs, outcome.results_in_order(), **options
    )
    return outcome, result.format()


# ---------------------------------------------------------------- registry


class TestRegistration:
    def test_tenancy_is_registered(self):
        assert "tenancy" in experiment_names()
        target = get_experiment("tenancy")
        assert target.options == ("tenants", "churn", "skew", "policies")
        assert target.default_refs == 60_000

    def test_decomposes_into_grid_cells(self):
        specs = get_experiment("tenancy").jobs(refs=30_000)
        # 2 tenant counts x 2 churn x 2 skew x 3 policies by default.
        assert len(specs) == 24
        assert all(spec.job == "cell" for spec in specs)
        params = specs[0].params_dict
        assert set(params) == {"tenants", "churn", "skew", "policy", "refs"}

    def test_options_narrow_the_grid(self):
        specs = get_experiment("tenancy").jobs(
            refs=30_000, policies=("need",), **SMALL_GRID
        )
        assert len(specs) == 1
        assert specs[0].params_dict["policy"] == "need"

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigError, match="does not accept"):
            get_experiment("tenancy").jobs(refs=1000, flavor="spicy")

    def test_grid_rejects_bad_axes(self):
        with pytest.raises(ConfigError, match="policies"):
            resolve_grid({"policies": ("nope",)})
        with pytest.raises(ConfigError, match=">= 1"):
            resolve_grid({"tenants": (0,)})

    def test_empty_axis_falls_back_to_default(self):
        assert resolve_grid({"churn": ()}) == resolve_grid({})

    def test_grid_order_is_input_order_independent(self):
        forward = resolve_grid({"tenants": (10, 100), "churn": (0.3, 0.0)})
        backward = resolve_grid({"tenants": (100, 10), "churn": (0.0, 0.3)})
        assert forward == backward
        # Axes are sorted; policies keep registry order (static first).
        assert forward[0][:3] == (10, 0.0, 0.5)
        assert forward[0][3] == "static"


# -------------------------------------------------------------- campaigns


class TestCampaignEquivalence:
    def test_serial_campaign_matches_direct_run(self, tmp_path):
        _, campaign_text = run_campaign(tmp_path, jobs=1, options=SMALL_GRID)
        direct = run_tenancy(
            tenants=SMALL_GRID["tenants"],
            churn=SMALL_GRID["churn"],
            skew=SMALL_GRID["skew"],
        )
        assert campaign_text == direct.format()

    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        _, serial_text = run_campaign(
            tmp_path / "serial", jobs=1, options=SMALL_GRID
        )
        parallel, parallel_text = run_campaign(
            tmp_path / "parallel", jobs=2, options=SMALL_GRID
        )
        assert parallel.mode in ("pool", "serial-fallback")
        assert parallel_text == serial_text

    def test_thousand_tenant_smoke_parallel_equals_serial(self, tmp_path):
        """The acceptance scale point: a 1000-tenant cell sweeps
        identically under serial and parallel execution."""
        options = {
            "tenants": (1000,),
            "churn": (0.3,),
            "skew": (1.0,),
            "policies": ("static", "need"),
        }
        _, serial_text = run_campaign(
            tmp_path / "serial", jobs=1, options=options
        )
        _, parallel_text = run_campaign(
            tmp_path / "parallel", jobs=2, options=options
        )
        assert parallel_text == serial_text
        assert "1000" in serial_text

    def test_rerun_is_pure_cache_hit(self, tmp_path):
        first, text1 = run_campaign(tmp_path, jobs=1, options=SMALL_GRID)
        second, text2 = run_campaign(tmp_path, jobs=1, options=SMALL_GRID)
        assert first.executed == 3 and not first.cached
        assert second.executed == 0 and len(second.cached) == 3
        assert text1 == text2


class TestPolicyOrdering:
    def test_need_beats_static_on_skewed_churn_point(self):
        """The benchmark ledger's claim at test scale: on the hostile
        grid point, marginal-gain transfers beat the equal split."""
        need = run_tenancy_cell(100, 0.3, 1.0, "need", 20_000, seed=1)
        static = run_tenancy_cell(100, 0.3, 1.0, "static", 20_000, seed=1)
        assert need["aggregate_hit_rate"] > static["aggregate_hit_rate"]

    def test_verdict_line_names_the_winner(self, tmp_path):
        _, text = run_campaign(tmp_path, jobs=1, options=SMALL_GRID)
        assert "verdict: need-driven" in text


# ------------------------------------------------------------------ chaos


def _pick_chaos_seed(hashes: list[str]) -> ChaosPolicy:
    """Deterministically find a seed that crashes exactly one job and
    corrupts at least one (same scan as tests/test_chaos.py)."""
    for seed in range(1000):
        policy = ChaosPolicy(seed=seed, crash_rate=0.3, corrupt_rate=0.3)
        actions = [
            (policy.directive(h) or {}).get("action") for h in hashes
        ]
        if actions.count("crash") == 1 and actions.count("corrupt") >= 1:
            return policy
    raise AssertionError("no suitable chaos seed in range")


class TestChaosResume:
    def test_chaos_then_resume_is_byte_identical(self, tmp_path):
        """Satellite pin: sabotaged tenancy campaigns converge to the
        clean serial output, and the resumed store re-executes nothing."""
        target = get_experiment("tenancy")
        specs = target.jobs(**SMALL_GRID)
        clean = CampaignRunner(
            ResultStore(tmp_path / "clean"), CampaignConfig(jobs=1)
        ).run(specs, campaign="tenancy")
        clean_text = target.assemble_results(
            specs, clean.results_in_order(), **SMALL_GRID
        ).format()

        chaos_store = ResultStore(tmp_path / "chaos")
        outcome = CampaignRunner(
            chaos_store,
            CampaignConfig(jobs=2, retries=3, backoff=0.0),
            chaos=_pick_chaos_seed([s.content_hash() for s in specs]),
        ).run(specs, campaign="tenancy")
        chaos_text = target.assemble_results(
            specs, outcome.results_in_order(), **SMALL_GRID
        ).format()
        assert chaos_text == clean_text

        resumed = CampaignRunner(
            chaos_store, CampaignConfig(jobs=1)
        ).run(specs, campaign="tenancy")
        assert resumed.executed == 0
        assert len(resumed.cached) == len(specs)
        resumed_text = target.assemble_results(
            specs, resumed.results_in_order(), **SMALL_GRID
        ).format()
        assert resumed_text == clean_text
