"""Guard: telemetry must never silently tax the simulator's hot path.

The instrumented access loop differs from the seed's by exactly one
``cache.telemetry is None`` attribute check per access (see
``MolecularCache.access_block``). Two assertions keep that contract:

* the measured cost of that guard is within noise (<= 5 %) of one
  measured access — i.e. the instrumented-but-disabled path is
  indistinguishable from the seed hot path;
* even an *attached* bus with every feature idle (no sinks, sampling and
  epochs off) stays within a generous envelope, so recording never
  becomes the dominant cost of a run.

Timings use min-of-repeats (the stable estimator for Python loops);
thresholds are deliberately loose for CI jitter.
"""

from __future__ import annotations

import timeit

from repro.common.rng import XorShift64
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.telemetry import EventBus

N_REFS = 20_000
REPEATS = 5

#: The disabled-path instrumentation budget: guard cost <= 5 % of an access.
DISABLED_OVERHEAD_BUDGET = 0.05
#: Envelope for an attached-but-idle bus (method call + two modulo checks).
IDLE_BUS_OVERHEAD_BUDGET = 0.50


def build_cache() -> MolecularCache:
    config = MolecularCacheConfig.for_total_size(
        1 << 20, clusters=1, tiles_per_cluster=4, strict=False
    )
    cache = MolecularCache(config, resize_policy=ResizePolicy(), rng=XorShift64(5))
    # Unmanaged single-tile region: no resize rounds, no remote searches —
    # the loop isolates the access path itself.
    cache.assign_application(0, goal=None, tile_id=0, initial_molecules=16)
    return cache


def make_blocks() -> list[int]:
    rng = XorShift64(11)
    return [rng.randrange(1 << 11) for _ in range(N_REFS)]


def time_access_loop(cache, blocks) -> float:
    """Seconds per access, min over REPEATS runs of the full loop."""
    access = cache.access_block

    def run():
        for block in blocks:
            access(block, 0)

    return min(timeit.repeat(run, number=1, repeat=REPEATS)) / len(blocks)


def test_disabled_guard_within_noise_of_seed_path():
    """The per-access cost of ``self.telemetry is None`` is <= 5 % of an
    access — the only instrumentation the disabled hot path carries."""
    cache = build_cache()
    blocks = make_blocks()
    per_access = time_access_loop(cache, blocks)

    probe = cache  # the same attribute load the hot path performs
    guard_timer = timeit.Timer("probe.telemetry is None", globals=locals())
    baseline_timer = timeit.Timer("pass")
    loops = 200_000
    guard = min(guard_timer.repeat(repeat=REPEATS, number=loops)) / loops
    empty = min(baseline_timer.repeat(repeat=REPEATS, number=loops)) / loops
    guard_cost = max(guard - empty, 0.0)

    ratio = guard_cost / per_access
    print(
        f"\naccess={per_access * 1e9:.0f}ns guard={guard_cost * 1e9:.1f}ns "
        f"ratio={ratio:.4f}"
    )
    assert ratio <= DISABLED_OVERHEAD_BUDGET, (
        f"telemetry guard costs {ratio:.1%} of an access "
        f"(budget {DISABLED_OVERHEAD_BUDGET:.0%}) — the disabled hot path "
        "is no longer a single attribute check"
    )


def test_idle_bus_overhead_bounded():
    """An attached bus with everything off must stay within its envelope."""
    blocks = make_blocks()

    disabled = build_cache()
    disabled_time = time_access_loop(disabled, blocks)

    idle = build_cache()
    idle.attach_telemetry(EventBus([], epoch_refs=0, sample_interval=0))
    idle_time = time_access_loop(idle, blocks)

    overhead = idle_time / disabled_time - 1.0
    print(
        f"\ndisabled={disabled_time * 1e9:.0f}ns idle-bus="
        f"{idle_time * 1e9:.0f}ns overhead={overhead:+.1%}"
    )
    assert overhead <= IDLE_BUS_OVERHEAD_BUDGET, (
        f"attached-but-idle bus adds {overhead:.1%} per access "
        f"(envelope {IDLE_BUS_OVERHEAD_BUDGET:.0%})"
    )
