"""Guard: the lease protocol's coordination overhead stays marginal.

The distributed drain exists for fault tolerance, not speed — but its
bookkeeping (lease files, heartbeats, scandir passes) must not tax the
common case. The contract from the subsystem's acceptance criteria: a
*single* lease-protocol worker draining a campaign store lands within
``MAX_OVERHEAD`` of the serial campaign runner on the same jobs (both
pay the simulation cost; the delta is pure protocol).

``REPRO_PERF_SOFT=1`` reports without failing (CI soft gate), like the
other perf guards. The measured overhead lands in the benchmark ledger
as ``lease_overhead`` for `repro bench-report` trend tracking.
"""

from __future__ import annotations

import os
import time

from conftest import emit

from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    LeaseConfig,
    ResultStore,
    get_experiment,
    run_worker,
)

#: Allowed wall-clock overhead of leases vs the serial runner (fraction).
MAX_OVERHEAD = float(os.environ.get("REPRO_MAX_LEASE_OVERHEAD", "0.10"))
PERF_SOFT = os.environ.get("REPRO_PERF_SOFT", "") == "1"
REFS_PER_APP = 200_000


#: Timed repetitions per side; min-of-N screens out machine noise, which
#: at a ~1s drain is far larger than the protocol cost being measured.
ROUNDS = 2


def test_single_worker_lease_overhead_within_budget(tmp_path):
    target = get_experiment("figure5")
    specs = target.jobs(refs=REFS_PER_APP, graph="A")

    serial_elapsed = float("inf")
    for round_ in range(ROUNDS):
        serial_store = ResultStore(tmp_path / f"serial{round_}")
        start = time.perf_counter()
        outcome = CampaignRunner(
            serial_store, CampaignConfig(jobs=1, resume=False)
        ).run(specs, campaign="figure5")
        serial_elapsed = min(serial_elapsed, time.perf_counter() - start)
    serial_text = target.assemble_results(
        specs, outcome.results_in_order(), graph="A"
    ).format()

    lease_elapsed = float("inf")
    for round_ in range(ROUNDS):
        lease_store = ResultStore(tmp_path / f"leased{round_}")
        lease_store.write_manifest("figure5", specs, {"graph": "A"})
        start = time.perf_counter()
        report = run_worker(lease_store, config=LeaseConfig(ttl=30.0))
        lease_elapsed = min(lease_elapsed, time.perf_counter() - start)
    lease_text = target.assemble_results(
        specs,
        [lease_store.load_result(s.content_hash()) for s in specs],
        graph="A",
    ).format()

    assert report.committed == len(specs)
    assert lease_text == serial_text, (
        "a lease-protocol drain must reproduce the serial output "
        "byte-for-byte"
    )

    overhead = lease_elapsed / max(serial_elapsed, 1e-9) - 1.0
    emit(
        "perf_lease",
        "Lease protocol overhead (figure5, single worker)\n"
        f"  jobs                  : {len(specs)}\n"
        f"  serial runner         : {serial_elapsed:.2f}s\n"
        f"  lease worker          : {lease_elapsed:.2f}s\n"
        f"  overhead              : {overhead * 100:+.1f}% "
        f"(budget {MAX_OVERHEAD * 100:.0f}%)\n"
        f"  byte-identical output : yes",
        metrics=[
            {
                "metric": "lease_overhead",
                "value": overhead,
                "unit": "fraction",
                "direction": "lower",
            }
        ],
    )
    if not PERF_SOFT:
        assert overhead <= MAX_OVERHEAD, (
            f"lease bookkeeping cost {overhead * 100:.1f}% over the serial "
            f"runner (budget {MAX_OVERHEAD * 100:.0f}%); set "
            "REPRO_PERF_SOFT=1 to report without failing"
        )
