"""Ablation: Algorithm 1's linear sizing model vs the reuse-distance
advisor (the paper's future-work suggestion, section 3.4 / section 5).

The linear model assumes miss rate scales as 1/size; real miss curves
have knees, so the linear model overshoots past a knee and stalls in flat
regions. The stack-distance advisor reads the required capacity off the
sampled miss curve directly (with cold-miss compensation).
"""

from conftest import emit, run_once

from ablation_common import HEADERS, run_quartet
from repro.molecular.config import ResizePolicy
from repro.sim.report import format_table


def run_all():
    return [
        run_quartet("linear (Algorithm 1)", ResizePolicy(advisor="linear")),
        run_quartet("stack-distance advisor", ResizePolicy(advisor="stack")),
    ]


def test_resize_advisor_ablation(benchmark):
    outcomes = run_once(benchmark, run_all)
    emit(
        "ablation_advisor",
        format_table(
            HEADERS,
            [o.row() for o in outcomes],
            title="Ablation — partition sizing model (4MB molecular, 10% goal)",
        ),
    )
    by_label = {o.label: o for o in outcomes}
    linear = by_label["linear (Algorithm 1)"]
    stack = by_label["stack-distance advisor"]

    # Both deliver sane QoS.
    assert 0.0 < linear.deviation < 0.5
    assert 0.0 < stack.deviation < 0.5

    # The advisor is at least competitive with the linear model — the
    # paper's motivation for listing it as an improvement.
    assert stack.deviation <= linear.deviation * 1.25

    # And it sizes with less churn: fewer molecules moved per resize.
    linear_churn = linear.molecules_granted + linear.molecules_withdrawn
    stack_churn = stack.molecules_granted + stack.molecules_withdrawn
    assert stack_churn <= linear_churn * 1.5
