"""Guard: the hot-path profiler is cheap when on, free when off.

Three contracts from the observability issue's acceptance criteria:

* **Enabled overhead <= 5 %**: a profiled ``access_many`` run at the
  default 1/512 sampling stays within ``ENABLED_OVERHEAD_BUDGET`` of an
  unprofiled run (min-of-repeats timing; the budget is overridable for
  unusual hardware).
* **Attribution sums**: the report's per-stage times plus the exact
  resize time reproduce the measured wall clock to within 10 %. The
  distribution step makes this true by construction, so the check
  guards the bookkeeping (a stage dropped from the report, resize
  counted twice) rather than the arithmetic.
* **Statistically zero when off**: with no profiler attached the
  dispatch is one ``cache.profiler`` attribute check per ``access_many``
  *call*; the structural proof lives in
  ``tests/test_prof_zero_cost.py``, and the timing check here only has
  to catch a gross regression (the budget absorbs CI noise).

Measured throughput and overhead feed the benchmark ledger, so
``repro bench-report`` diffs them across runs.
"""

from __future__ import annotations

import os
import timeit

from conftest import emit
from repro.common.rng import XorShift64
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.prof import HotPathProfiler

N_REFS = 50_000
REPEATS = 5

#: Profiled (1/512 sampling) vs unprofiled access_many, min-of-repeats.
ENABLED_OVERHEAD_BUDGET = float(
    os.environ.get("REPRO_PROF_ENABLED_BUDGET", "0.05")
)
#: Attached-but-disabled profiler vs no profiler at all.
DISABLED_OVERHEAD_BUDGET = float(
    os.environ.get("REPRO_PROF_DISABLED_BUDGET", "0.05")
)
#: Stage times + resize time must reproduce the wall clock this closely.
ATTRIBUTION_TOLERANCE = 0.10


def build_cache() -> MolecularCache:
    config = MolecularCacheConfig.for_total_size(
        1 << 20, clusters=1, tiles_per_cluster=4, strict=False
    )
    cache = MolecularCache(
        config, resize_policy=ResizePolicy(), rng=XorShift64(5)
    )
    cache.assign_application(0, goal=0.2, tile_id=0)
    return cache


def make_blocks() -> list[int]:
    rng = XorShift64(11)
    return [rng.randrange(1 << 14) for _ in range(N_REFS)]


def time_stream(profiler) -> float:
    """Min-of-repeats seconds for one access_many pass (fresh cache each)."""

    def run():
        cache = build_cache()
        if profiler is not None:
            profiler.reset()
            cache.attach_profiler(profiler)
        cache.access_many(make_blocks(), 0)

    return min(timeit.repeat(run, number=1, repeat=REPEATS))


def test_enabled_overhead_within_budget():
    blocks = make_blocks()
    base = time_stream(None)
    profiler = HotPathProfiler()  # default 1/512 sampling
    profiled = time_stream(profiler)
    overhead = profiled / base - 1.0
    throughput = len(blocks) / profiled
    emit(
        "perf_prof_overhead",
        "Hot-path profiler overhead "
        f"({N_REFS} refs, molecular 1MB/4-tile, 1/512 sampling)\n"
        f"  unprofiled access_many : {base:.3f}s "
        f"({len(blocks) / base:,.0f} refs/s)\n"
        f"  profiled access_many   : {profiled:.3f}s "
        f"({throughput:,.0f} refs/s)\n"
        f"  overhead               : {overhead:+.1%} "
        f"(budget {ENABLED_OVERHEAD_BUDGET:.0%})",
        metrics=[
            {
                "metric": "prof_enabled_overhead",
                "value": max(overhead, 0.0),
                "unit": "fraction",
                "direction": "lower",
            },
            {
                "metric": "prof_profiled_refs_per_sec",
                "value": throughput,
                "unit": "refs/s",
                "direction": "higher",
            },
        ],
    )
    assert overhead <= ENABLED_OVERHEAD_BUDGET, (
        f"profiling adds {overhead:.1%} to the batched hot path "
        f"(budget {ENABLED_OVERHEAD_BUDGET:.0%})"
    )


def test_disabled_profiler_within_noise():
    base = time_stream(None)

    def disabled_run():
        cache = build_cache()
        profiler = HotPathProfiler()
        profiler.enabled = False
        cache.attach_profiler(profiler)
        cache.access_many(make_blocks(), 0)

    disabled = min(timeit.repeat(disabled_run, number=1, repeat=REPEATS))
    overhead = disabled / base - 1.0
    print(
        f"\nno-profiler={base:.3f}s attached-disabled={disabled:.3f}s "
        f"overhead={overhead:+.1%}"
    )
    assert overhead <= DISABLED_OVERHEAD_BUDGET, (
        f"a disabled profiler adds {overhead:.1%} per run "
        f"(budget {DISABLED_OVERHEAD_BUDGET:.0%}) — the dispatch check "
        "leaked into the per-reference path"
    )


def test_stage_attribution_sums_to_wall():
    cache = build_cache()
    profiler = HotPathProfiler(sample_every=128)
    cache.attach_profiler(profiler)
    cache.access_many(make_blocks(), 0)

    report = profiler.report()
    wall = report["wall_s"]
    attributed = (
        sum(info["time_s"] for info in report["stages"].values())
        + report["resize"]["time_s"]
    )
    deviation = abs(attributed - wall) / wall
    print(
        f"\nwall={wall * 1e3:.1f}ms attributed={attributed * 1e3:.1f}ms "
        f"deviation={deviation:.2%} samples={report['samples']}"
    )
    assert report["samples"] > 0
    assert deviation <= ATTRIBUTION_TOLERANCE, (
        f"per-stage attribution reproduces only {1 - deviation:.1%} of the "
        f"wall clock (tolerance {ATTRIBUTION_TOLERANCE:.0%})"
    )
