"""Bench: Table 2 — mixed 12-benchmark workload, deviation from a 25% goal.

Regenerates the paper's comparison of a 6 MB molecular cache (3 clusters x
4 x 512 KB tiles) against 4 MB / 8 MB traditional caches at 4/8 ways.

Shape assertions:
* traditional: bigger caches deviate less at equal associativity;
* the 6 MB molecular cache (Randy) beats every traditional cache,
  including the 8 MB 8-way — the paper's headline ("two level isolation");

Known divergence (EXPERIMENTS.md): the paper's Random placement is far
worse than Randy (0.357 vs 0.222); with a high-entropy RNG our idealised
Random is competitive, so no Random-vs-Randy ordering is asserted here.
"""

from conftest import emit, run_once

from repro.sim.experiments.table2 import run_table2

# Shared across the Table 2 / Figure 6 / Table 5 benches (computed once).
_CACHE = {}


def shared_table2():
    if "result" not in _CACHE:
        _CACHE["result"] = run_table2(refs_per_app=300_000)
    return _CACHE["result"]


def test_table2_mixed_workload(benchmark):
    result = run_once(benchmark, shared_table2)
    emit("table2", result.format())

    dev = result.deviations
    # Size helps traditional caches at fixed associativity.
    assert dev["8MB 4way"] < dev["4MB 4way"]
    assert dev["8MB 8way"] < dev["4MB 8way"]

    # Headline: 6 MB molecular (Randy) beats even the 8 MB 8-way.
    assert dev["6MB Molecular Randy"] < dev["8MB 8way"]
    assert dev["6MB Molecular Randy"] < dev["8MB 4way"]
    assert dev["6MB Molecular Randy"] < dev["4MB 4way"]

    # Deviations are meaningful (not degenerate).
    assert 0.0 < dev["6MB Molecular Randy"] < 0.25
    assert all(0.0 < value < 0.6 for value in dev.values())
