"""Bench: Figure 5 — average deviation from the 10% miss-rate goal vs size.

Regenerates both graphs (A: goal for all four apps; B: mcf unmanaged) over
1/2/4/8 MB for DM/2w/4w/8w traditional caches and Molecular Random/Randy.

Shape assertions follow the paper's reading of the figure:
* traditional deviation falls with size and with associativity;
* molecular caches have a *threshold* size past which they beat the
  traditional designs — 4 MB in graph A, 2 MB in graph B;
* graph B's drop at the threshold is sharp.
"""

import pytest
from conftest import emit, run_once

from repro.sim.experiments.figure5 import run_figure5


@pytest.mark.parametrize("graph", ["A", "B"])
def test_figure5(benchmark, graph):
    result = run_once(
        benchmark, lambda: run_figure5(graph=graph, refs_per_app=400_000)
    )
    from repro.sim.plot import ascii_chart

    chart = ascii_chart(
        [f"{mb}MB" for mb in result.sizes_mb],
        result.series,
        title="(deviation vs size; lower is better)",
    )
    emit(f"figure5_{graph}", result.format() + "\n\n" + chart)

    dm = result.series["Direct Mapped"]
    w4 = result.series["4-way"]
    w8 = result.series["8-way"]
    randy = result.series["Molecular (Randy)"]
    random_ = result.series["Molecular (Random)"]

    # Traditional caches: more size helps, more associativity helps.
    assert dm[-1] < dm[0]
    assert w4[-1] < w4[0]
    for at_size in range(4):
        assert w4[at_size] < dm[at_size]

    # Molecular deviation falls monotonically-ish with size (allow noise).
    assert randy[-1] < randy[0]
    assert random_[-1] < random_[0]

    threshold_index = result.sizes_mb.index(4 if graph == "A" else 2)

    # At the threshold molecular is competitive with the best traditional
    # design; past it, molecular wins outright.
    for index in range(threshold_index, len(result.sizes_mb)):
        best_traditional = min(dm[index], w4[index], w8[index],
                               result.series["2-way"][index])
        margin = 1.25 if index == threshold_index else 1.0
        assert min(randy[index], random_[index]) < best_traditional * margin

    if graph == "B":
        # The sharp drop at the 2 MB threshold (the paper's cliff). The
        # cliff needs enough references for the resize engine to converge,
        # so the strict form only applies at full scale.
        from repro.sim.scale import scale_factor

        if scale_factor() >= 0.9:
            assert randy[threshold_index] < 0.5 * randy[0]
            # and beyond the threshold the goals are essentially met
            assert min(randy[-1], random_[-1]) < 0.05
        else:
            assert randy[threshold_index] < 0.75 * randy[0]
