"""Ablation: initial partition allocation ("Ground Zero", section 3.4).

The paper: "when small initial partition size is used frequent
repartitions are required during the initial phases in order to reduce
the application miss rate. Frequent resizing is not favored...". The
current scheme starts each partition at half a tile.
"""

from conftest import emit, run_once

from ablation_common import HEADERS, run_quartet
from repro.molecular.config import ResizePolicy
from repro.sim.report import format_table


def run_all():
    policy = ResizePolicy()
    return [
        run_quartet("2 molecules", policy, initial_molecules=2),
        run_quartet("8 molecules", policy, initial_molecules=8),
        run_quartet("half tile (64)", policy, initial_molecules=None),
    ]


def test_initial_allocation_ablation(benchmark):
    outcomes = run_once(benchmark, run_all)
    emit(
        "ablation_initial_alloc",
        format_table(
            HEADERS,
            [o.row() for o in outcomes],
            title="Ablation — initial partition allocation (4MB molecular)",
        ),
    )
    by_label = {o.label: o for o in outcomes}

    # The paper: a tiny initial allocation forces "frequent repartitions
    # ... during the initial phases". With the panic branch's
    # max_allocation clamp (grants capped at the last — i.e. initial —
    # allocation), the starved start needs many more *grow events* to
    # move the same capacity.
    def grow_events(outcome):
        return sum(1 for e in outcome.cache.resizer.log if e[2] == "grow")

    assert grow_events(by_label["2 molecules"]) > grow_events(
        by_label["half tile (64)"]
    )

    # And its grants are far smaller on average ("single molecule
    # increments are less effective").
    def mean_grant(outcome):
        grants = [e[3] for e in outcome.cache.resizer.log if e[2] == "grow"]
        return sum(grants) / len(grants) if grants else 0.0

    assert mean_grant(by_label["2 molecules"]) < mean_grant(
        by_label["half tile (64)"]
    )

    # Half-tile start performs at least as well as the starved start.
    assert (
        by_label["half tile (64)"].deviation
        <= by_label["2 molecules"].deviation * 1.15
    )
