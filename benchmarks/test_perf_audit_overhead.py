"""Guard: auditing is strictly pay-per-use — zero cost when disabled.

Two contracts:

* **Structural**: with auditing disabled, ``run_trace`` issues exactly
  the same calls as before the audit subsystem existed — one
  ``access_many`` per trace segment, zero auditor invocations. This is a
  call-count proof, immune to timing noise.
* **Timing**: a disabled-audit ``run_trace`` stays within noise of the
  raw batched stream it wraps, and an *enabled* audit at the default
  cadence stays within a generous envelope (the auditor runs a handful
  of times per run; its cost must not rival the simulation's).

Timings use min-of-repeats; thresholds are deliberately loose for CI.
"""

from __future__ import annotations

import timeit

from repro.audit import invariants
from repro.common.rng import XorShift64
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.sim.driver import run_trace
from repro.trace.container import Trace

N_REFS = 20_000
REPEATS = 5

#: Disabled-audit run_trace vs the raw access_many stream it delegates to.
#: The structural call-count test above is the real zero-cost guarantee;
#: this timing check only has to catch gross regressions, so the budget
#: absorbs shared-runner noise.
DISABLED_OVERHEAD_BUDGET = 0.35
#: Enabled audit at the default cadence (a few audits per run) envelope.
ENABLED_OVERHEAD_BUDGET = 1.00


def build_cache() -> MolecularCache:
    config = MolecularCacheConfig.for_total_size(
        1 << 20, clusters=1, tiles_per_cluster=4, strict=False
    )
    cache = MolecularCache(config, resize_policy=ResizePolicy(), rng=XorShift64(5))
    cache.assign_application(0, goal=None, tile_id=0, initial_molecules=16)
    return cache


def make_trace() -> Trace:
    rng = XorShift64(11)
    return Trace([rng.randrange(1 << 11) * 64 for _ in range(N_REFS)])


def test_disabled_audit_issues_identical_calls(monkeypatch):
    """Call-count proof: no audit work and no stream chunking when off."""
    monkeypatch.delenv(invariants.AUDIT_ENV, raising=False)
    audits = []
    monkeypatch.setattr(
        "repro.sim.driver.audit_and_emit",
        lambda cache, counters=None: audits.append(1),
    )
    cache = build_cache()
    batches = []
    real = cache.access_many
    cache.access_many = lambda *args: batches.append(len(args[0])) or real(*args)

    trace = make_trace()
    run_trace(cache, trace, warmup_refs=N_REFS // 4)
    assert audits == []
    assert batches == [N_REFS // 4, N_REFS - N_REFS // 4]


def test_disabled_audit_within_noise_of_raw_stream(monkeypatch):
    monkeypatch.delenv(invariants.AUDIT_ENV, raising=False)
    trace = make_trace()
    blocks = trace.block_list()
    asids = trace.asid_list()
    writes = trace.write_list()

    def time_once(func) -> float:
        return min(
            timeit.repeat(func, number=1, repeat=REPEATS)
        ) / N_REFS

    raw = time_once(
        lambda: build_cache().access_many(blocks, asids, writes)
    )
    wrapped = time_once(lambda: run_trace(build_cache(), trace))

    overhead = wrapped / raw - 1.0
    print(
        f"\nraw={raw * 1e9:.0f}ns run_trace={wrapped * 1e9:.0f}ns "
        f"overhead={overhead:+.1%}"
    )
    assert overhead <= DISABLED_OVERHEAD_BUDGET, (
        f"disabled-audit run_trace adds {overhead:.1%} per access "
        f"(budget {DISABLED_OVERHEAD_BUDGET:.0%})"
    )


def test_default_cadence_audit_within_envelope(monkeypatch):
    monkeypatch.delenv(invariants.AUDIT_ENV, raising=False)
    trace = make_trace()

    def time_once(func) -> float:
        return min(
            timeit.repeat(func, number=1, repeat=REPEATS)
        ) / N_REFS

    disabled = time_once(lambda: run_trace(build_cache(), trace))
    audited = time_once(
        lambda: run_trace(
            build_cache(), trace, audit_every=invariants.DEFAULT_CADENCE
        )
    )

    overhead = audited / disabled - 1.0
    print(
        f"\ndisabled={disabled * 1e9:.0f}ns audited={audited * 1e9:.0f}ns "
        f"overhead={overhead:+.1%}"
    )
    assert overhead <= ENABLED_OVERHEAD_BUDGET, (
        f"default-cadence auditing adds {overhead:.1%} per access "
        f"(envelope {ENABLED_OVERHEAD_BUDGET:.0%})"
    )
