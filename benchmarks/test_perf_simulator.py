"""Simulator-throughput microbenchmarks.

Unlike the experiment benches (one long run each), these measure the
library's own performance — accesses per second through each simulator
layer — with proper multi-round statistics. Useful for catching
performance regressions in the hot paths.
"""

import os
import time

import numpy as np
import pytest

from conftest import emit
from repro.caches.setassoc import SetAssociativeCache
from repro.common.rng import XorShift64
from repro.analysis.reuse import StackDistanceAnalyzer
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.workloads import spec_model

N_REFS = 50_000

#: Relative floor for the batched engine over the scalar reference path,
#: and an absolute throughput floor (refs/s) as a CI smoke guard. Both
#: overridable by environment for unusual hardware.
MIN_BATCHED_SPEEDUP = float(os.environ.get("REPRO_MIN_BATCHED_SPEEDUP", "2.0"))
MIN_BATCHED_THROUGHPUT = float(
    os.environ.get("REPRO_MIN_BATCHED_THROUGHPUT", "100000")
)


@pytest.fixture(scope="module")
def blocks():
    rng = np.random.default_rng(1)
    return rng.integers(0, 1 << 14, size=N_REFS).tolist()


def _molecular_config():
    return MolecularCacheConfig.for_total_size(
        1 << 20, clusters=1, tiles_per_cluster=4, strict=False
    )


def _molecular_cache(config):
    cache = MolecularCache(
        config,
        resize_policy=ResizePolicy(),
        rng=XorShift64(5),
    )
    cache.assign_application(0, goal=0.2, tile_id=0)
    return cache


def test_perf_setassoc_access(benchmark, blocks):
    def run():
        cache = SetAssociativeCache(1 << 20, 4)
        cache.access_many(blocks)
        return cache.stats.total.accesses

    assert benchmark(run) == N_REFS


def test_perf_setassoc_access_scalar(benchmark, blocks):
    """Scalar reference path (kept for before/after comparisons)."""

    def run():
        cache = SetAssociativeCache(1 << 20, 4)
        access = cache.access_block
        for block in blocks:
            access(block)
        return cache.stats.total.accesses

    assert benchmark(run) == N_REFS


def test_perf_molecular_access(benchmark, blocks):
    config = _molecular_config()

    def run():
        cache = _molecular_cache(config)
        cache.access_many(blocks, 0)
        return cache.stats.total.accesses

    assert benchmark(run) == N_REFS


def test_perf_molecular_access_scalar(benchmark, blocks):
    """Scalar reference path (kept for before/after comparisons)."""
    config = _molecular_config()

    def run():
        cache = _molecular_cache(config)
        access = cache.access_block
        for block in blocks:
            access(block, 0)
        return cache.stats.total.accesses

    assert benchmark(run) == N_REFS


def test_molecular_batched_speedup(blocks):
    """Guard: the batched engine must beat the scalar path by >= 2x.

    Plain min-of-three wall timing (no benchmark fixture) so the guard
    also runs under ``--benchmark-disable`` in the CI perf smoke.
    """
    config = _molecular_config()

    def timed(run) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            assert run() == N_REFS
            best = min(best, time.perf_counter() - start)
        return best

    def scalar_run():
        cache = _molecular_cache(config)
        access = cache.access_block
        for block in blocks:
            access(block, 0)
        return cache.stats.total.accesses

    def batched_run():
        cache = _molecular_cache(config)
        cache.access_many(blocks, 0)
        return cache.stats.total.accesses

    scalar_s = timed(scalar_run)
    batched_s = timed(batched_run)
    speedup = scalar_s / batched_s
    throughput = N_REFS / batched_s
    emit(
        "perf_batched_engine",
        "Batched access engine vs scalar reference "
        f"({N_REFS} refs, molecular 1MB/4-tile)\n"
        f"  scalar access_block : {scalar_s:.3f}s "
        f"({N_REFS / scalar_s:,.0f} refs/s)\n"
        f"  batched access_many : {batched_s:.3f}s "
        f"({throughput:,.0f} refs/s)\n"
        f"  speedup             : {speedup:.2f}x "
        f"(floor {MIN_BATCHED_SPEEDUP:.1f}x)",
        metrics=[
            {
                "metric": "molecular_batched_refs_per_sec",
                "value": throughput,
                "unit": "refs/s",
                "direction": "higher",
            },
            {
                "metric": "molecular_batched_speedup",
                "value": speedup,
                "unit": "x",
                "direction": "higher",
            },
        ],
    )
    assert speedup >= MIN_BATCHED_SPEEDUP, (
        f"batched engine only {speedup:.2f}x over scalar "
        f"(floor {MIN_BATCHED_SPEEDUP:.1f}x)"
    )
    assert throughput >= MIN_BATCHED_THROUGHPUT, (
        f"batched throughput {throughput:,.0f} refs/s below floor "
        f"{MIN_BATCHED_THROUGHPUT:,.0f}"
    )


def test_perf_trace_generation(benchmark):
    model = spec_model("parser")

    def run():
        return len(model.generate(N_REFS, seed=3))

    assert benchmark(run) == N_REFS


def test_perf_stack_distance(benchmark, blocks):
    def run():
        analyzer = StackDistanceAnalyzer(capacity_hint=1 << 16)
        analyzer.run(blocks)
        return analyzer.references

    assert benchmark(run) == N_REFS
