"""Simulator-throughput microbenchmarks.

Unlike the experiment benches (one long run each), these measure the
library's own performance — accesses per second through each simulator
layer — with proper multi-round statistics. Useful for catching
performance regressions in the hot paths.
"""

import numpy as np
import pytest

from repro.caches.setassoc import SetAssociativeCache
from repro.common.rng import XorShift64
from repro.analysis.reuse import StackDistanceAnalyzer
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.workloads import spec_model

N_REFS = 50_000


@pytest.fixture(scope="module")
def blocks():
    rng = np.random.default_rng(1)
    return rng.integers(0, 1 << 14, size=N_REFS).tolist()


def test_perf_setassoc_access(benchmark, blocks):
    def run():
        cache = SetAssociativeCache(1 << 20, 4)
        access = cache.access_block
        for block in blocks:
            access(block)
        return cache.stats.total.accesses

    assert benchmark(run) == N_REFS


def test_perf_molecular_access(benchmark, blocks):
    config = MolecularCacheConfig.for_total_size(
        1 << 20, clusters=1, tiles_per_cluster=4, strict=False
    )

    def run():
        cache = MolecularCache(
            config,
            resize_policy=ResizePolicy(),
            rng=XorShift64(5),
        )
        cache.assign_application(0, goal=0.2, tile_id=0)
        access = cache.access_block
        for block in blocks:
            access(block, 0)
        return cache.stats.total.accesses

    assert benchmark(run) == N_REFS


def test_perf_trace_generation(benchmark):
    model = spec_model("parser")

    def run():
        return len(model.generate(N_REFS, seed=3))

    assert benchmark(run) == N_REFS


def test_perf_stack_distance(benchmark, blocks):
    def run():
        analyzer = StackDistanceAnalyzer(capacity_hint=1 << 16)
        analyzer.run(blocks)
        return analyzer.references

    assert benchmark(run) == N_REFS
