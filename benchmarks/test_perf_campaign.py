"""Guard: campaign sweeps are byte-identical to serial, and faster.

Two contracts from the campaign subsystem's acceptance criteria:

* a ``figure5`` campaign (one job per design x size cell) reassembles to
  the *byte-identical* ``format()`` output of the serial ``run_figure5``
  path, whatever the worker count;
* with >= 4 CPU cores, a 4-worker campaign beats the serial campaign's
  wall clock (the speedup assertion is skipped on smaller machines —
  process pools cannot beat serial on one core).

Scale with ``REPRO_SCALE`` like every other bench; the equality check is
exact at any scale because jobs regenerate their traces from the seed.
"""

from __future__ import annotations

import os
import time

from conftest import emit

from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    ResultStore,
    get_experiment,
)
from repro.sim.experiments.figure5 import run_figure5

#: Required wall-clock advantage of --jobs 4 over serial on a >=4-core
#: machine. Deliberately modest: worker startup and result pickling are
#: real costs, and CI boxes are noisy.
MIN_SPEEDUP = 1.2
REFS_PER_APP = 400_000
GRAPH = "A"


def _run_campaign(tmp_dir, jobs: int) -> tuple[str, float]:
    """One figure5 campaign; returns (formatted text, wall seconds)."""
    target = get_experiment("figure5")
    specs = target.jobs(refs=REFS_PER_APP, graph=GRAPH)
    runner = CampaignRunner(
        ResultStore(tmp_dir), CampaignConfig(jobs=jobs, resume=False)
    )
    start = time.perf_counter()
    outcome = runner.run(specs, campaign="figure5")
    elapsed = time.perf_counter() - start
    result = target.assemble_results(
        specs, outcome.results_in_order(), graph=GRAPH
    )
    return result.format(), elapsed


def test_campaign_figure5_byte_identical_and_parallel_speedup(tmp_path):
    serial_start = time.perf_counter()
    reference = run_figure5(graph=GRAPH, refs_per_app=REFS_PER_APP).format()
    serial_elapsed = time.perf_counter() - serial_start

    campaign_serial, campaign_serial_elapsed = _run_campaign(
        tmp_path / "serial", jobs=1
    )
    campaign_parallel, parallel_elapsed = _run_campaign(
        tmp_path / "parallel", jobs=4
    )

    assert campaign_serial == reference, (
        "a jobs=1 campaign must reproduce run_figure5 byte-for-byte"
    )
    assert campaign_parallel == reference, (
        "a jobs=4 campaign must reproduce run_figure5 byte-for-byte"
    )

    cores = os.cpu_count() or 1
    speedup = campaign_serial_elapsed / max(parallel_elapsed, 1e-9)
    emit(
        "perf_campaign",
        "Campaign figure5 sweep (graph A)\n"
        f"  cores                 : {cores}\n"
        f"  serial run_figure5    : {serial_elapsed:.1f}s\n"
        f"  campaign --jobs 1     : {campaign_serial_elapsed:.1f}s\n"
        f"  campaign --jobs 4     : {parallel_elapsed:.1f}s\n"
        f"  speedup (jobs 4 vs 1) : {speedup:.2f}x\n"
        f"  byte-identical output : yes",
    )

    if cores >= 4:
        assert speedup >= MIN_SPEEDUP, (
            f"--jobs 4 managed only {speedup:.2f}x over serial on a "
            f"{cores}-core machine (need >= {MIN_SPEEDUP}x)"
        )
