"""Ablation: resize trigger schemes (paper section 3.4).

The paper reports: "constant address count resizing does not aid in
bringing down the miss rate. Adaptive schemes perform better"; and that
the global adaptive scheme suits small tiles while per-application
adaptive works better with larger tiles (>= 2 MB).
"""

from conftest import emit, run_once

from ablation_common import HEADERS, run_quartet
from repro.molecular.config import ResizePolicy
from repro.sim.report import format_table


def run_all():
    outcomes = []
    for label, trigger in (
        ("constant", "constant"),
        ("global adaptive", "global_adaptive"),
        ("per-app adaptive", "per_app_adaptive"),
    ):
        outcomes.append(
            run_quartet(label, ResizePolicy(trigger=trigger), size_mb=4)
        )
    return outcomes


def test_resize_trigger_ablation(benchmark):
    outcomes = run_once(benchmark, run_all)
    emit(
        "ablation_resize_trigger",
        format_table(
            HEADERS,
            [o.row() for o in outcomes],
            title="Ablation — resize trigger schemes (4MB molecular, 10% goal)",
        ),
    )
    by_label = {o.label: o for o in outcomes}

    # Adaptive triggers react: they fire at least as often as the fixed
    # 25k-reference schedule when goals are being missed.
    assert by_label["global adaptive"].resize_events >= by_label["constant"].resize_events

    # The paper's claim: adaptive schemes do at least as well as constant.
    best_adaptive = min(
        by_label["global adaptive"].deviation,
        by_label["per-app adaptive"].deviation,
    )
    assert best_adaptive <= by_label["constant"].deviation * 1.10

    # All variants produce sane deviations.
    for outcome in outcomes:
        assert 0.0 < outcome.deviation < 0.5
