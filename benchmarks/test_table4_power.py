"""Bench: Table 4 — CACTI power results at 0.07 um.

Regenerates the frequency/power table for the 8 MB traditional caches and
the molecular worst-case / mixed-average columns at those frequencies.

Shape assertions mirror the paper's reading:
* associativity raises per-access energy; the 8-way cycle time collapses
  its frequency (and with it, its power);
* the molecular worst case is roughly flat across rows in energy terms
  (it's the same tile, evaluated at different frequencies);
* the headline: the molecular cache saves ~29% power against the 8 MB
  8-way baseline (ours lands in the 15-40% band);
* the measured mixed-workload average is below the worst case.
"""

from conftest import emit, run_once

from repro.molecular.config import MolecularCacheConfig
from repro.sim.experiments.table4 import TABLE3_MOLECULAR, run_table4
from test_table2_mixed import shared_table2


def test_table3_configuration():
    """Table 3 is a configuration table — assert it, don't simulate it."""
    summary = TABLE3_MOLECULAR.table3_summary()
    assert summary["total_cache_size"] == 8 << 20
    assert summary["molecule_size"] == 8 * 1024
    assert summary["tile_size"] == 512 * 1024
    assert summary["tile_clusters"] == 4
    assert summary["tiles_per_cluster"] == 4
    assert summary["associativity"] == "adaptive"
    # and it is a legal strict (paper-range) configuration
    assert isinstance(TABLE3_MOLECULAR, MolecularCacheConfig)


def test_table4_power(benchmark):
    stats = shared_table2().molecular_runs["randy"].cache.stats
    result = run_once(benchmark, lambda: run_table4(mixed_stats=stats))
    emit("table4", result.format())

    rows = {row.cache_type: row for row in result.rows}

    # 8-way frequency collapse (paper: 206 -> 96 MHz from 4- to 8-way).
    assert rows["8MB 8way"].frequency_mhz < 0.65 * rows["8MB 4way"].frequency_mhz

    # Traditional power peaks in the middle rows; the 8-way's low clock
    # makes it the least-power baseline (as in the paper).
    assert rows["8MB 8way"].traditional_power_w < rows["8MB 2way"].traditional_power_w

    # Molecular worst-case energy is frequency-independent: power scales
    # with the row's frequency.
    for name, row in rows.items():
        expected = rows["8MB DM"].molecular_worst_power_w * (
            row.frequency_mhz / rows["8MB DM"].frequency_mhz
        )
        assert row.molecular_worst_power_w == expected or abs(
            row.molecular_worst_power_w - expected
        ) / expected < 1e-6, name

    # Measured average <= worst case in every row.
    for row in result.rows:
        assert row.molecular_average_power_w <= row.molecular_worst_power_w * 1.01

    # The 29% headline (paper) — ours must land in a credible band.
    assert 0.15 < result.headline_advantage < 0.40
