"""Ablation: RNG entropy for the Random placement policy (section 3.3).

The paper warns that Random replacement's load balancing "is highly
dependent on the entropy of the random number generator implemented in
hardware". This bench compares a high-quality xorshift64* against a
16-bit LFSR (a cheap hardware generator) and against the LRU-Direct
future-work policy, under identical workloads.
"""

from conftest import emit, run_once

from ablation_common import HEADERS, run_quartet
from repro.common.rng import LFSR16, XorShift64
from repro.molecular.config import ResizePolicy
from repro.sim.report import format_table


def run_all():
    policy = ResizePolicy()
    return [
        run_quartet("random + xorshift64", policy, placement="random",
                    rng=XorShift64(7)),
        run_quartet("random + lfsr16", policy, placement="random",
                    rng=LFSR16(0xACE1)),
        run_quartet("randy + xorshift64", policy, placement="randy",
                    rng=XorShift64(7)),
        run_quartet("randy + lfsr16", policy, placement="randy",
                    rng=LFSR16(0xACE1)),
        run_quartet("lru_direct", policy, placement="lru_direct"),
    ]


def test_rng_entropy_ablation(benchmark):
    outcomes = run_once(benchmark, run_all)
    emit(
        "ablation_rng",
        format_table(
            HEADERS,
            [o.row() for o in outcomes],
            title="Ablation — placement policy x RNG entropy (4MB molecular)",
        ),
    )
    by_label = {o.label: o for o in outcomes}

    # All variants operate correctly and in a sane band.
    for outcome in outcomes:
        assert 0.0 < outcome.deviation < 0.5

    # Randy's sensitivity to RNG entropy is bounded: its random choice is
    # only within a row (few molecules), so the weak LFSR moves its
    # deviation by less than 50% relative.
    randy_gap = abs(
        by_label["randy + lfsr16"].deviation
        - by_label["randy + xorshift64"].deviation
    )
    assert randy_gap <= 0.5 * by_label["randy + xorshift64"].deviation + 0.02

    # LRU-Direct (the paper's future-work scheme) is competitive with
    # Randy — it replaces the in-row random choice with recency.
    assert (
        by_label["lru_direct"].deviation
        <= by_label["randy + xorshift64"].deviation * 1.25
    )
