"""Resize-mechanism comparison bench: flush vs consistent hashing.

Runs the ``resize-mechanism`` experiment's churn workload once and
ledgers the resize data-movement counters per backend, so
``repro bench-report`` can flag a regression in the chash backend's
headline advantage (moving strictly less data than the flush backend).

Scale with ``REPRO_SCALE`` (the experiment's churn phases are a fixed
reference length, so the flush/chash margin survives scaling).
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.sim.experiments.resize_mechanism import run_resize_mechanism
from repro.sim.scale import scaled

REFS_PER_APP = 30_000


def test_chash_moves_less_data_than_flush(benchmark):
    result = run_once(
        benchmark, lambda: run_resize_mechanism(refs_per_app=REFS_PER_APP)
    )
    verdicts = result.verdicts()
    assert verdicts, "experiment produced no flush/chash verdict pairs"

    def total(mechanism: str, key: str) -> int:
        return sum(
            cell[key]
            for cell in result.cells
            if cell["mechanism"] == mechanism
        )

    flush_moved = total("flush", "blocks_moved")
    chash_moved = total("chash", "blocks_moved")
    flush_wb = total("flush", "flush_writebacks")
    chash_wb = total("chash", "flush_writebacks")
    emit(
        "perf_resize_mech",
        result.format()
        + f"\n\nrefs/app: {scaled(REFS_PER_APP)}"
        + f"\ntotal blocks moved: flush {flush_moved}, chash {chash_moved}"
        + f"\ntotal flush writebacks: flush {flush_wb}, chash {chash_wb}",
        metrics=[
            {
                "metric": "resize_blocks_moved_flush",
                "value": flush_moved,
                "unit": "lines",
                "direction": "lower",
            },
            {
                "metric": "resize_blocks_moved_chash",
                "value": chash_moved,
                "unit": "lines",
                "direction": "lower",
            },
            {
                "metric": "resize_flush_writebacks_flush",
                "value": flush_wb,
                "unit": "lines",
                "direction": "lower",
            },
            {
                "metric": "resize_flush_writebacks_chash",
                "value": chash_wb,
                "unit": "lines",
                "direction": "lower",
            },
        ],
    )
    assert result.chash_strictly_less, (
        "chash must move strictly less resize data than flush on every "
        f"trigger; verdicts: {verdicts}"
    )
