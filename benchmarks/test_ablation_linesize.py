"""Ablation: per-region variable line size (section 3.2).

The paper: "Increasing the line size helps in reducing the cache miss
rate in case of high spatial locality." A region's line size is a
multiple of the 64 B base line, fixed at region creation. This bench
sweeps the multiplier for a streaming (media-like) application and a
pointer-chasing application side by side.
"""

from conftest import emit, run_once

from repro.common.rng import XorShift64
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.sim.report import format_table
from repro.sim.scale import scaled
from repro.workloads.model import BenchmarkModel, RingComponent

STREAMER = BenchmarkModel(
    name="streamer",
    components=(
        RingComponent(weight=0.9, blocks=40_000, run_length=32),
        RingComponent(weight=0.1, blocks=500, run_length=8),
    ),
)
CHASER = BenchmarkModel(
    name="chaser",
    components=(
        RingComponent(weight=0.75, blocks=6_000, run_length=1),
        RingComponent(weight=0.25, blocks=300, run_length=1),
    ),
)


def miss_rate_with_multiplier(model: BenchmarkModel, multiplier: int) -> float:
    refs = scaled(120_000)
    config = MolecularCacheConfig.for_total_size(
        1 << 20, clusters=1, tiles_per_cluster=4, strict=False
    )
    cache = MolecularCache(
        config,
        resize_policy=ResizePolicy(period=10**9, trigger="constant"),
        rng=XorShift64(3),
    )
    cache.assign_application(
        0, goal=None, tile_id=0, initial_molecules=32, line_multiplier=multiplier
    )
    trace = model.generate(refs, seed=2, asid=0)
    warm = refs // 4
    blocks = trace.blocks().tolist()
    for block in blocks[:warm]:
        cache.access_block(block, 0)
    cache.stats.reset()
    for block in blocks[warm:]:
        cache.access_block(block, 0)
    return cache.stats.miss_rate(0)


def run_all():
    multipliers = (1, 2, 4, 8)
    return {
        "streamer": [miss_rate_with_multiplier(STREAMER, m) for m in multipliers],
        "chaser": [miss_rate_with_multiplier(CHASER, m) for m in multipliers],
    }, multipliers


def test_line_size_ablation(benchmark):
    series, multipliers = run_once(benchmark, run_all)
    rows = [
        [f"x{m}", series["streamer"][i], series["chaser"][i]]
        for i, m in enumerate(multipliers)
    ]
    emit(
        "ablation_linesize",
        format_table(
            ["line multiplier", "streamer miss rate", "chaser miss rate"],
            rows,
            title="Ablation — region line size (256KB partition, no resize)",
        ),
    )

    streamer, chaser = series["streamer"], series["chaser"]
    # High spatial locality: every doubling of the line size helps a lot.
    assert streamer[1] < streamer[0] * 0.7
    assert streamer[2] < streamer[1] * 0.7
    assert streamer[3] < streamer[2]
    # The benefit is specific to spatial locality: the pointer chaser
    # gains far less from x8 lines than the streamer does. (A truly
    # anti-spatial strided workload where big lines actively *hurt* is
    # covered in tests/test_linesize.py.)
    streamer_gain = streamer[0] / max(streamer[3], 1e-9)
    chaser_gain = chaser[0] / max(chaser[3], 1e-9)
    assert streamer_gain > 3.0 * chaser_gain
