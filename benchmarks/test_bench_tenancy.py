"""Tenancy benchmark: need-driven allocation vs static split, ledgered.

The headline claim of the multi-tenant subsystem (ISSUE: Memshare-style
baselines): on a skewed, churning tenant mix, need-driven marginal-gain
reallocation beats an equal static split on aggregate hit rate. This
bench runs the most hostile default grid point (100 tenants, churn 0.3,
tenant skew 1.0) under all three policies, asserts the need > static
ordering, and records the hit rates plus service throughput in the
benchmark ledger so ``repro bench-report`` flags drift.
"""

from __future__ import annotations

import time

from conftest import emit, run_once
from repro.sim.experiments.tenancy import run_tenancy_cell
from repro.sim.scale import scaled
from repro.tenants.policies import policy_names

TENANTS = 100
CHURN = 0.3
SKEW = 1.0
REFS = 120_000
SEED = 1


def test_need_beats_static_on_skewed_churn_mix(benchmark):
    refs = scaled(REFS)

    def sweep() -> dict[str, dict]:
        cells = {}
        for policy in policy_names():
            start = time.perf_counter()
            cell = run_tenancy_cell(TENANTS, CHURN, SKEW, policy, refs, SEED)
            cell["elapsed"] = time.perf_counter() - start
            cells[policy] = cell
        return cells

    cells = run_once(benchmark, sweep)
    static = cells["static"]
    need = cells["need"]
    throughput = refs / need["elapsed"] if need["elapsed"] else 0.0

    lines = [
        f"Tenancy policies on the skewed-churn mix "
        f"({TENANTS} tenants, churn {CHURN}, skew {SKEW}, {refs} refs)"
    ]
    for policy, cell in cells.items():
        lines.append(
            f"  {policy:7s}: agg hit {cell['aggregate_hit_rate']:.4f}, "
            f"jain {cell['jain']:.3f}, "
            f"{cell['sla_violation_epochs']} SLA epoch(s), "
            f"{cell['moved_blocks']} blocks moved, {cell['elapsed']:.2f}s"
        )
    lines.append(
        f"  need - static: "
        f"{need['aggregate_hit_rate'] - static['aggregate_hit_rate']:+.4f} "
        "aggregate hit rate (must be positive)"
    )
    emit(
        "bench_tenancy",
        "\n".join(lines),
        metrics=[
            {
                "metric": "tenancy_hit_rate_static",
                "value": static["aggregate_hit_rate"],
                "unit": "ratio",
                "direction": "higher",
            },
            {
                "metric": "tenancy_hit_rate_need",
                "value": need["aggregate_hit_rate"],
                "unit": "ratio",
                "direction": "higher",
            },
            {
                "metric": "tenancy_need_refs_per_sec",
                "value": throughput,
                "unit": "refs/s",
                "direction": "higher",
            },
        ],
    )
    assert need["aggregate_hit_rate"] > static["aggregate_hit_rate"], (
        "need-driven allocation should beat the static split on a "
        f"skewed-churn mix: {need['aggregate_hit_rate']:.4f} vs "
        f"{static['aggregate_hit_rate']:.4f}"
    )
