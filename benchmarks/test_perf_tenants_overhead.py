"""Guard: tenant accounting must be free when disabled, cheap when on.

The cache service's hot path carries exactly one piece of accounting
instrumentation: the ``self.accounting is None`` check in
``CacheService.access`` (per-tenant hit/access counters are part of the
base service, not the accounting layer). Two assertions keep that
contract:

* the measured cost of the guard is <= 5 % of one measured access —
  a service built with ``accounting=None`` is indistinguishable from an
  unguarded one;
* enabled accounting (SHARDS-sampled hit-rate curves + SLA ledgers)
  stays within a generous envelope of the disabled path, so turning the
  signal on never dominates a run.

Timings use min-of-repeats; thresholds are loose for CI jitter.
"""

from __future__ import annotations

import timeit

from conftest import emit, run_once
from repro.common.rng import XorShift64
from repro.tenants import CacheService, TenantAccounting, make_policy

N_REFS = 20_000
N_TENANTS = 16
REPEATS = 5

#: The disabled-path budget: guard cost <= 5 % of an access.
DISABLED_OVERHEAD_BUDGET = 0.05
#: Envelope for enabled accounting (sampled stack + ledger updates).
ENABLED_OVERHEAD_BUDGET = 1.50


def build_service(accounting: TenantAccounting | None) -> CacheService:
    return CacheService(
        capacity_blocks=N_TENANTS * 64,
        policy=make_policy("static"),
        accounting=accounting,
        # One epoch for the whole loop: the timing isolates the access
        # path, not the rebalance machinery.
        epoch_refs=N_REFS * REPEATS + 1,
    )


def make_refs() -> list[tuple[int, int]]:
    rng = XorShift64(23)
    return [
        (rng.randrange(N_TENANTS), rng.randrange(256))
        for _ in range(N_REFS)
    ]


def time_access_loop(service, refs) -> float:
    """Seconds per access, min over REPEATS runs of the full loop."""
    access = service.access

    def run():
        for tenant, key in refs:
            access(tenant, key)

    return min(timeit.repeat(run, number=1, repeat=REPEATS)) / len(refs)


def test_disabled_accounting_guard_within_noise(benchmark):
    """``self.accounting is None`` is the only disabled-path cost."""
    refs = make_refs()
    service = build_service(accounting=None)
    per_access = run_once(benchmark, lambda: time_access_loop(service, refs))

    probe = service
    guard_timer = timeit.Timer("probe.accounting is None", globals=locals())
    baseline_timer = timeit.Timer("pass")
    loops = 200_000
    guard = min(guard_timer.repeat(repeat=REPEATS, number=loops)) / loops
    empty = min(baseline_timer.repeat(repeat=REPEATS, number=loops)) / loops
    guard_cost = max(guard - empty, 0.0)

    ratio = guard_cost / per_access
    emit(
        "perf_tenants_overhead_disabled",
        "Tenant accounting disabled-path guard "
        f"({N_REFS} refs, {N_TENANTS} tenants)\n"
        f"  access          : {per_access * 1e9:.0f} ns\n"
        f"  guard           : {guard_cost * 1e9:.1f} ns\n"
        f"  ratio           : {ratio:.4f} "
        f"(budget {DISABLED_OVERHEAD_BUDGET:.2f})",
        metrics=[
            {
                "metric": "tenants_disabled_guard_ratio",
                "value": ratio,
                "unit": "x",
                "direction": "lower",
            }
        ],
    )
    assert ratio <= DISABLED_OVERHEAD_BUDGET


def test_enabled_accounting_within_envelope(benchmark):
    """HRC sampling + SLA ledgers cost at most ENABLED_OVERHEAD_BUDGET
    extra per access over the disabled path."""
    refs = make_refs()

    def measure() -> tuple[float, float]:
        disabled = time_access_loop(build_service(accounting=None), refs)
        enabled = time_access_loop(
            build_service(TenantAccounting(sla_miss_rate=0.4)), refs
        )
        return disabled, enabled

    disabled, enabled = run_once(benchmark, measure)
    overhead = enabled / disabled - 1.0
    emit(
        "perf_tenants_overhead_enabled",
        "Tenant accounting enabled-path overhead "
        f"({N_REFS} refs, {N_TENANTS} tenants)\n"
        f"  disabled        : {disabled * 1e9:.0f} ns/access\n"
        f"  enabled         : {enabled * 1e9:.0f} ns/access\n"
        f"  overhead        : {overhead:+.1%} "
        f"(budget {ENABLED_OVERHEAD_BUDGET:.0%})",
        metrics=[
            {
                "metric": "tenants_enabled_overhead",
                "value": overhead,
                "unit": "x",
                "direction": "lower",
            }
        ],
    )
    assert overhead <= ENABLED_OVERHEAD_BUDGET
