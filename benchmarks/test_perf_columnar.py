"""Columnar kernel throughput vs the batched engine.

The columnar datapath (:mod:`repro.molecular.columnar`) promises an
order-of-magnitude win over the batched per-reference engine on
high-locality streams — the regime the kernels are built for (hit-heavy
chunks resolved by the vectorised probe and bulk accounting, misses
replayed as scalar events against a coherent chunk snapshot). This
bench measures both engines on the same warmed stream and records the
throughput and the speedup in the machine-readable ledger; CI guards a
conservative floor.

Protocol: the goal sits inside Algorithm 1's hold band for the
workload's steady miss rate, so after one untimed warm-up pass the
adaptive resize period backs off and the timed pass measures the
datapath rather than allocation churn (cold-start behaviour — resize
storms, scalar fallbacks — is covered by the property suites and the
fuzz oracle, not by this throughput guard). Both engines are checked
byte-identical over the same two-pass run before any timing is trusted.

Floors (overridable by environment for unusual hardware):

``REPRO_MIN_COLUMNAR_SPEEDUP``
    Relative floor vs the batched engine (default 5.0; the committed
    ledger entry documents the ~10x+ measured on the reference box).
``REPRO_MIN_COLUMNAR_THROUGHPUT``
    Absolute refs/s floor (default 1,000,000).
``REPRO_PERF_SOFT``
    Set to ``1`` to report the numbers without failing — the CI
    columnar-smoke job runs the floor in this soft mode so shared-runner
    noise cannot fail the byte-equality job it rides along with.
"""

import os
import time

import numpy as np
import pytest

from conftest import emit
from repro.common.rng import XorShift64
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.molecular.columnar import ColumnarAccessEngine
from repro.molecular.engine import AccessEngine
from repro.sim.scale import scaled

N_REFS = scaled(400_000)

MIN_COLUMNAR_SPEEDUP = float(os.environ.get("REPRO_MIN_COLUMNAR_SPEEDUP", "5.0"))
MIN_COLUMNAR_THROUGHPUT = float(
    os.environ.get("REPRO_MIN_COLUMNAR_THROUGHPUT", "1000000")
)
PERF_SOFT = os.environ.get("REPRO_PERF_SOFT", "") == "1"


@pytest.fixture(scope="module")
def columns():
    """High-locality stream: 99.9% hot set of 2048 blocks, disjoint tail."""
    rng = np.random.default_rng(7)
    hot = rng.integers(0, 1 << 11, size=N_REFS)
    cold = rng.integers(1 << 11, 1 << 20, size=N_REFS)
    blocks = np.where(rng.random(N_REFS) < 0.999, hot, cold).astype(np.int64)
    writes = rng.random(N_REFS) < 0.25
    return blocks, writes


def _cache():
    config = MolecularCacheConfig.for_total_size(
        1 << 20, clusters=1, tiles_per_cluster=4, strict=False
    )
    cache = MolecularCache(
        config,
        resize_policy=ResizePolicy(withdraw_margin=0.01),
        rng=XorShift64(5),
    )
    # Steady miss rate ~0.38% sits in the hold band below goal: after
    # warm-up the adaptive trigger backs its period off and the timed
    # pass runs without resize churn.
    cache.assign_application(0, goal=0.0045, tile_id=0, initial_molecules=16)
    return cache


def _timed(engine_cls, blocks, writes) -> float:
    """Min-of-three wall time of a steady-state pass (one warm-up)."""
    best = float("inf")
    for _ in range(3):
        engine = engine_cls(_cache())
        engine.stream(blocks, 0, writes)
        start = time.perf_counter()
        engine.stream(blocks, 0, writes)
        best = min(best, time.perf_counter() - start)
    return best


def test_columnar_speedup_and_ledger(columns):
    """Guard: columnar kernels >= 5x over the batched engine.

    Plain min-of-three wall timing (no benchmark fixture) so the guard
    also runs under ``--benchmark-disable`` in the CI smoke. Both runs
    are checked byte-identical before any timing is trusted.
    """
    blocks, writes = columns

    # Equivalence first: identical stats dicts over the same two-pass
    # run, or the timing compares two different simulations.
    ref = _cache()
    ref_engine = AccessEngine(ref)
    ref_engine.stream(blocks, 0, writes)
    ref_engine.stream(blocks, 0, writes)
    cand = _cache()
    cand_engine = ColumnarAccessEngine(cand)
    cand_engine.stream(blocks, 0, writes)
    cand_engine.stream(blocks, 0, writes)
    assert ref.stats.as_dict() == cand.stats.as_dict()
    assert ref.occupancy_report() == cand.occupancy_report()

    batched_s = _timed(AccessEngine, blocks, writes)
    columnar_s = _timed(ColumnarAccessEngine, blocks, writes)
    speedup = batched_s / columnar_s
    throughput = N_REFS / columnar_s
    total = ref.stats.total
    miss_rate = 1.0 - total.hits / total.accesses
    emit(
        "perf_columnar_engine",
        "Columnar kernels vs batched engine, warmed steady-state pass "
        f"({N_REFS} refs, 99.9% hot/2048 blocks, 25% writes, "
        f"steady miss {miss_rate:.2%}, molecular 1MB/4-tile)\n"
        f"  batched access engine : {batched_s:.3f}s "
        f"({N_REFS / batched_s:,.0f} refs/s)\n"
        f"  columnar kernels      : {columnar_s:.3f}s "
        f"({throughput:,.0f} refs/s)\n"
        f"  speedup               : {speedup:.2f}x "
        f"(floor {MIN_COLUMNAR_SPEEDUP:.1f}x"
        f"{', soft' if PERF_SOFT else ''})",
        metrics=[
            {
                "metric": "molecular_access_throughput",
                "value": throughput,
                "unit": "refs/s",
                "direction": "higher",
            },
            {
                "metric": "molecular_columnar_speedup",
                "value": speedup,
                "unit": "x",
                "direction": "higher",
            },
        ],
    )
    if PERF_SOFT:
        return
    assert speedup >= MIN_COLUMNAR_SPEEDUP, (
        f"columnar kernels only {speedup:.2f}x over batched "
        f"(floor {MIN_COLUMNAR_SPEEDUP:.1f}x)"
    )
    assert throughput >= MIN_COLUMNAR_THROUGHPUT, (
        f"columnar throughput {throughput:,.0f} refs/s below floor "
        f"{MIN_COLUMNAR_THROUGHPUT:,.0f}"
    )


def test_perf_columnar_access(benchmark, columns):
    """Multi-round stats for the routed ``access_many`` fast path."""
    blocks, writes = columns
    warm = _cache()
    warm.access_many(blocks, 0, writes)

    def run():
        warm.access_many(blocks, 0, writes)
        return warm.stats.total.accesses

    assert benchmark(run) >= N_REFS
