"""Bench: Figure 6 — hits-per-molecule, Random vs Randy placement.

Regenerates the per-application HPM series for the mixed workload (log
scale in the paper). Reuses the Table 2 molecular runs when that bench ran
first in the same session.

Shape assertions:
* every application has a positive HPM under both policies;
* Randy's targeted growth keeps it efficient: its overall HPM (total hit
  rate per total molecules) is within 15% of Random's or better;
* the network benchmarks with tiny hot sets (CRC, NAT) have far higher
  HPM than the streaming benchmarks — the spread the log axis shows.

Known divergence (EXPERIMENTS.md): the paper's "Randy 9% lower miss with
5% more molecules" is not reproduced with an ideal RNG; the measured
relative numbers are printed for the record.
"""

from conftest import emit, run_once

from repro.sim.experiments.figure6 import run_figure6
from test_table2_mixed import shared_table2


def test_figure6_hits_per_molecule(benchmark):
    result = run_once(benchmark, lambda: run_figure6(table2=shared_table2()))
    emit("figure6", result.format())

    for policy in ("random", "randy"):
        hpm = result.hpm[policy]
        assert len(hpm) == 12
        assert all(value > 0 for value in hpm.values())
        # small-hot-set network apps are an order of magnitude above the
        # streaming media apps
        assert hpm["CRC"] > 5 * hpm["CJPEG"]
        assert hpm["NAT"] > 5 * hpm["gzip"]

    # overall efficiency: hit-rate-per-molecule of the whole cache
    efficiency = {
        p: (1.0 - result.overall_miss_rate[p]) / result.mean_molecules[p]
        for p in ("random", "randy")
    }
    assert efficiency["randy"] > 0.85 * efficiency["random"]

    # both policies use a comparable number of molecules (the paper's +-5%)
    ratio = result.mean_molecules["randy"] / result.mean_molecules["random"]
    assert 0.8 < ratio < 1.2
