"""Comparison: molecular caches vs the related-work partitioning schemes.

The paper's section 2 argues that Suh et al.'s Modified LRU and column
caching fall short of molecular caches: "Suh et al's proposed cache
partitioning solution does not look into the dimension of heterogeneous
cache regions...  A major drawback of their cache architecture is the
reliance on multi-way associative caches." This bench runs all three on
the SPEC quartet (2 MB, 10% goals where applicable) plus an unpartitioned
LRU baseline, and reports the deviation metric.

Quotas/columns for the baselines are equal static shares — what a
partition controller without workload knowledge assigns; mcf (hopeless at
this size) is unmanaged for the molecular cache and holds one static share
under the baselines. The deviation metric covers the three managed
applications.
"""

from conftest import emit, run_once

from repro.analysis.metrics import average_deviation
from repro.caches.partitioned import ColumnCache, ModifiedLRUCache
from repro.caches.setassoc import SetAssociativeCache
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.sim.cmp import CMPRunConfig, CMPRunner
from repro.sim.experiments.common import DEFAULT_MISS_PENALTY, build_traces
from repro.sim.report import format_table
from repro.sim.scale import scaled

APPS = ("art", "ammp", "parser", "mcf")
# Graph-B style goals: mcf is unmanageable at this size and unmanaged.
GOALS = {0: 0.10, 1: 0.10, 2: 0.10, 3: None}
SIZE = 2 << 20
ASSOC = 8


def run_config(label, cache_factory, refs):
    traces = build_traces(list(APPS), refs, seed=1)
    cache = cache_factory()
    runner = CMPRunner(cache, CMPRunConfig(DEFAULT_MISS_PENALTY, refs))
    result = runner.run(traces)
    deviation = average_deviation(result.miss_rates(), GOALS)
    return [label, deviation, *(round(result.miss_rate(a), 3) for a in range(4))]


def run_all():
    refs = scaled(250_000)
    lines = SIZE // 64

    def shared():
        return SetAssociativeCache(SIZE, ASSOC)

    def modified_lru():
        # equal quotas, as a quota controller with no workload knowledge
        # would start out
        quota = lines // len(APPS)
        return ModifiedLRUCache(SIZE, ASSOC, quotas={a: quota for a in range(4)})

    def column():
        return ColumnCache(
            SIZE, ASSOC,
            columns={0: (0, 1), 1: (2, 3), 2: (4, 5), 3: (6, 7)},
        )

    def molecular():
        config = MolecularCacheConfig.for_total_size(
            SIZE, clusters=1, tiles_per_cluster=4, strict=False
        )
        cache = MolecularCache(config, resize_policy=ResizePolicy())
        for asid in range(4):
            cache.assign_application(asid, goal=GOALS[asid], tile_id=asid)
        return cache

    return [
        run_config("shared LRU (no partitioning)", shared, refs),
        run_config("Modified LRU (equal quotas)", modified_lru, refs),
        run_config("Column caching (2 ways each)", column, refs),
        run_config("Molecular (Randy, adaptive)", molecular, refs),
    ]


def test_partitioning_scheme_comparison(benchmark):
    rows = run_once(benchmark, run_all)
    emit(
        "ablation_partitioning",
        format_table(
            ["scheme", "avg deviation", *APPS],
            rows,
            title=f"Related-work comparison — {SIZE >> 20}MB, 10% goals, SPEC quartet",
        ),
    )
    by_label = {row[0]: row[1] for row in rows}

    # Static partitioning beats nothing-at-all only sometimes; the
    # goal-driven molecular cache must beat the *static* schemes, which
    # cannot shift capacity toward the applications that need it. (The
    # resize engine needs references to converge, so the strict form is
    # full-scale only.)
    from repro.sim.scale import scale_factor

    molecular = by_label["Molecular (Randy, adaptive)"]
    margin = 1.0 if scale_factor() >= 0.9 else 1.20
    assert molecular < by_label["Modified LRU (equal quotas)"] * margin
    assert molecular < by_label["Column caching (2 ways each)"] * margin

    # All schemes produce sane deviations.
    assert all(0.0 < row[1] < 0.6 for row in rows)
