"""Guard: fault injection is strictly pay-per-use — zero cost when off.

Two contracts, mirroring ``test_perf_audit_overhead.py``:

* **Structural**: with no :class:`~repro.faults.spec.FaultPlan`,
  ``run_trace`` issues exactly the same calls as before the fault
  subsystem existed — one ``access_many`` per trace segment, no injector
  constructed. A call-count proof, immune to timing noise.
* **Timing**: a faults-free ``run_trace`` stays within noise of the raw
  batched stream, and a run with a scheduled plan stays within a
  generous envelope (a plan splits the stream only at its firing points,
  so the extra cost is a handful of segment boundaries, not per-access
  work).

Timings use min-of-repeats; thresholds are deliberately loose for CI.
"""

from __future__ import annotations

import timeit

from repro.common.rng import XorShift64
from repro.faults import FaultPlan
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.sim.driver import run_trace
from repro.trace.container import Trace

N_REFS = 20_000
REPEATS = 5

#: Faults-free run_trace vs the raw access_many stream it delegates to.
#: The structural call-count test is the real zero-cost guarantee; this
#: timing check only has to catch gross regressions.
DISABLED_OVERHEAD_BUDGET = 0.35
#: A scheduled fault plan splits the stream at its firing points; the
#: envelope absorbs those boundaries plus the faults' own cache work.
ENABLED_OVERHEAD_BUDGET = 1.00


def build_cache() -> MolecularCache:
    config = MolecularCacheConfig.for_total_size(
        1 << 20, clusters=1, tiles_per_cluster=4, strict=False
    )
    cache = MolecularCache(config, resize_policy=ResizePolicy(), rng=XorShift64(5))
    cache.assign_application(0, goal=None, tile_id=0, initial_molecules=16)
    return cache


def make_trace() -> Trace:
    rng = XorShift64(11)
    return Trace([rng.randrange(1 << 11) * 64 for _ in range(N_REFS)])


def make_plan() -> FaultPlan:
    """A three-kind plan firing inside the measured window."""
    return FaultPlan.parse(
        f"transient@{N_REFS // 2}:m3,"
        f"degraded@{N_REFS // 2 + 1000}:t1+8,"
        f"hard@{N_REFS // 2 + 2000}:m40"
    )


def test_no_plan_issues_identical_calls(monkeypatch):
    """Call-count proof: no injector and no stream splitting without a plan."""
    injectors = []

    import repro.sim.driver as driver_mod

    real_injector = driver_mod.FaultInjector
    monkeypatch.setattr(
        driver_mod,
        "FaultInjector",
        lambda *args: injectors.append(1) or real_injector(*args),
    )
    cache = build_cache()
    batches = []
    real = cache.access_many
    cache.access_many = lambda *args: batches.append(len(args[0])) or real(*args)

    trace = make_trace()
    run_trace(cache, trace, warmup_refs=N_REFS // 4)
    assert injectors == []
    assert batches == [N_REFS // 4, N_REFS - N_REFS // 4]


def test_plan_splits_only_at_firing_points():
    """With a plan, the stream is chunked exactly at the fault times."""
    cache = build_cache()
    batches = []
    real = cache.access_many
    cache.access_many = lambda *args: batches.append(len(args[0])) or real(*args)

    run_trace(cache, make_trace(), warmup_refs=N_REFS // 4, faults=make_plan())
    # warm-up segment, then measured segments split at the three faults
    assert batches == [
        N_REFS // 4,
        N_REFS // 2 - N_REFS // 4,
        1000,
        1000,
        N_REFS - (N_REFS // 2 + 2000),
    ]
    assert cache.stats.faults_injected == 3


def test_no_plan_within_noise_of_raw_stream():
    trace = make_trace()
    blocks = trace.block_list()
    asids = trace.asid_list()
    writes = trace.write_list()

    def time_once(func) -> float:
        return min(
            timeit.repeat(func, number=1, repeat=REPEATS)
        ) / N_REFS

    raw = time_once(
        lambda: build_cache().access_many(blocks, asids, writes)
    )
    wrapped = time_once(lambda: run_trace(build_cache(), trace))

    overhead = wrapped / raw - 1.0
    print(
        f"\nraw={raw * 1e9:.0f}ns run_trace={wrapped * 1e9:.0f}ns "
        f"overhead={overhead:+.1%}"
    )
    assert overhead <= DISABLED_OVERHEAD_BUDGET, (
        f"faults-free run_trace adds {overhead:.1%} per access "
        f"(budget {DISABLED_OVERHEAD_BUDGET:.0%})"
    )


def test_scheduled_plan_within_envelope():
    trace = make_trace()

    def time_once(func) -> float:
        return min(
            timeit.repeat(func, number=1, repeat=REPEATS)
        ) / N_REFS

    clean = time_once(lambda: run_trace(build_cache(), trace))
    faulted = time_once(
        lambda: run_trace(build_cache(), trace, faults=make_plan())
    )

    overhead = faulted / clean - 1.0
    print(
        f"\nclean={clean * 1e9:.0f}ns faulted={faulted * 1e9:.0f}ns "
        f"overhead={overhead:+.1%}"
    )
    assert overhead <= ENABLED_OVERHEAD_BUDGET, (
        f"a three-fault plan adds {overhead:.1%} per access "
        f"(envelope {ENABLED_OVERHEAD_BUDGET:.0%})"
    )
