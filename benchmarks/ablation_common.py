"""Shared harness for the ablation benches.

Runs the SPEC quartet on a 4 MB molecular cache (1 cluster x 4 tiles, a
10% goal) under a configurable resize policy / placement / RNG and reports
the average deviation plus resize-engine activity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import average_deviation
from repro.common.rng import DeterministicRNG
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.sim.cmp import CMPRunConfig, CMPRunner
from repro.sim.experiments.common import DEFAULT_MISS_PENALTY, build_traces
from repro.sim.scale import scaled

APPS = ("art", "ammp", "parser", "mcf")
GOAL = 0.10


@dataclass(slots=True)
class AblationOutcome:
    label: str
    deviation: float
    miss_rates: dict[str, float]
    resize_events: int
    molecules_granted: int
    molecules_withdrawn: int
    cache: MolecularCache

    def row(self) -> list:
        return [
            self.label,
            self.deviation,
            self.resize_events,
            self.molecules_granted,
            self.molecules_withdrawn,
        ]


def run_quartet(
    label: str,
    resize_policy: ResizePolicy,
    placement: str = "randy",
    rng: DeterministicRNG | None = None,
    size_mb: int = 4,
    refs_per_app: int = 250_000,
    initial_molecules: int | None = None,
    goals: dict[int, float | None] | None = None,
    seed: int = 1,
) -> AblationOutcome:
    refs = scaled(refs_per_app)
    config = MolecularCacheConfig.for_total_size(
        size_mb << 20, clusters=1, tiles_per_cluster=4, strict=False
    )
    cache = MolecularCache(config, resize_policy=resize_policy, rng=rng,
                           placement=placement)
    if goals is None:
        goals = {asid: GOAL for asid in range(len(APPS))}
    for asid in range(len(APPS)):
        cache.assign_application(
            asid, goal=goals.get(asid), tile_id=asid,
            initial_molecules=initial_molecules,
        )
    traces = build_traces(list(APPS), refs, seed)
    runner = CMPRunner(cache, CMPRunConfig(DEFAULT_MISS_PENALTY, refs))
    result = runner.run(traces)
    rates = result.miss_rates()
    return AblationOutcome(
        label=label,
        deviation=average_deviation(rates, goals),
        miss_rates={APPS[a]: r for a, r in rates.items()},
        resize_events=cache.stats.resize_events,
        molecules_granted=cache.stats.molecules_granted,
        molecules_withdrawn=cache.stats.molecules_withdrawn,
        cache=cache,
    )


HEADERS = ["variant", "avg deviation", "resizes", "granted", "withdrawn"]
