"""Shared plumbing for the benchmark suite.

Every bench runs its experiment exactly once (``benchmark.pedantic`` with
one round — these are minutes-long simulations, not microbenchmarks),
prints the same rows/series the paper's table or figure reports, and saves
the text into ``benchmarks/results/`` for EXPERIMENTS.md.

Benches that measure something diffable also record it in the
machine-readable ledger (``benchmarks/results/ledger/``) by passing
``metrics=`` to :func:`emit`; ``repro bench-report`` diffs consecutive
runs and flags regressions (see :mod:`repro.prof.ledger`).

Scale with ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=0.25`` for a quick pass).
"""

from __future__ import annotations

from pathlib import Path

from repro.common.io import atomic_write_text
from repro.prof.ledger import write_entry

RESULTS_DIR = Path(__file__).parent / "results"
LEDGER_DIR = RESULTS_DIR / "ledger"

# Hoisted out of emit(): one mkdir at collection time, not one syscall
# per result block.
RESULTS_DIR.mkdir(parents=True, exist_ok=True)


def emit(name: str, text: str, metrics: list[dict] | None = None) -> None:
    """Print a result block and persist it under benchmarks/results/.

    The write is atomic (``repro.common.io.atomic_write_text``: same-
    directory tmp file + rename) so a bench killed mid-write never leaves
    a truncated ``results/*.txt``.

    ``metrics`` entries are ledger records: dicts with at least
    ``metric``/``value``/``unit`` (plus any other
    :func:`repro.prof.ledger.write_entry` keyword, e.g.
    ``direction="higher"`` for throughputs).
    """
    banner = f"\n{'#' * 70}\n{text}\n{'#' * 70}"
    print(banner)
    atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")
    for metric in metrics or []:
        write_entry(LEDGER_DIR, **metric)


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
