"""Shared plumbing for the benchmark suite.

Every bench runs its experiment exactly once (``benchmark.pedantic`` with
one round — these are minutes-long simulations, not microbenchmarks),
prints the same rows/series the paper's table or figure reports, and saves
the text into ``benchmarks/results/`` for EXPERIMENTS.md.

Scale with ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=0.25`` for a quick pass).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/.

    The write is atomic (same-directory tmp file + rename) so a bench
    killed mid-write never leaves a truncated ``results/*.txt``.
    """
    banner = f"\n{'#' * 70}\n{text}\n{'#' * 70}"
    print(banner)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    target = RESULTS_DIR / f"{name}.txt"
    fd, tmp_name = tempfile.mkstemp(
        dir=RESULTS_DIR, prefix=f"{name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
