"""Bench: Table 5 — the power-deviation product.

Regenerates the PDP comparison: 8 MB 4-way / 8-way traditional caches vs
the 6 MB molecular cache (Randy) at the same operating frequencies.

Shape assertion (the paper's conclusion): the molecular cache's PDP is
lower in both comparisons — it meets QoS better per watt.
"""

from conftest import emit, run_once

from repro.sim.experiments.table5 import run_table5
from test_table2_mixed import shared_table2


def test_table5_power_deviation_product(benchmark):
    result = run_once(benchmark, lambda: run_table5(table2=shared_table2()))
    emit("table5", result.format())

    assert len(result.rows) == 2
    for row in result.rows:
        assert row.molecular_wins, (
            f"molecular PDP {row.molecular_pdp:.3f} should beat "
            f"{row.cache_type}'s {row.traditional_pdp:.3f}"
        )

    # The 4-way row has the worse (higher) traditional PDP, as in the
    # paper (1.890 vs 0.870): it burns more power at similar deviation.
    assert result.row("8MB 4way").traditional_pdp > result.row("8MB 8way").traditional_pdp
