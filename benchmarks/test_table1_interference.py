"""Bench: Table 1 — inter-application interference on a shared 1 MB 4-way L2.

Regenerates the paper's motivating table: art/ammp/parser/mcf alone, in
every pair, and all four concurrently. Shape assertions: the interference
pattern (who gets hurt, by roughly how much) — absolute rates differ
because the workloads are synthetic stand-ins (DESIGN.md section 3).
"""

from conftest import emit, run_once

from repro.sim.experiments.table1 import QUARTET, run_table1

ALL_FOUR = QUARTET


def test_table1_interference(benchmark):
    result = run_once(benchmark, lambda: run_table1(refs_per_app=500_000))
    emit("table1", result.format())

    alone = {name: result.miss_rate((name,), name) for name in QUARTET}

    # Paper Table 1, row by row, as shape checks -------------------------
    # Alone: mcf is capacity-starved, ammp is tiny, art and parser modest.
    assert alone["mcf"] > 0.5
    assert alone["ammp"] < 0.05
    assert alone["art"] < 0.15
    assert alone["parser"] < 0.15

    # art survives one co-runner but collapses with all four (0.064 ->
    # 0.734 in the paper).
    art_all = result.miss_rate(ALL_FOUR, "art")
    assert art_all > 2.5 * alone["art"]

    # parser degrades progressively (0.086 -> 0.253 in the paper).
    parser_all = result.miss_rate(ALL_FOUR, "parser")
    assert parser_all > 1.5 * alone["parser"]

    # ammp barely moves (0.008 -> 0.013 in the paper).
    ammp_all = result.miss_rate(ALL_FOUR, "ammp")
    assert ammp_all < 0.08

    # mcf's rate moves the least in relative terms: it never held much
    # cache to begin with.
    mcf_all = result.miss_rate(ALL_FOUR, "mcf")
    assert mcf_all < 1.5 * alone["mcf"]

    # The headline of the table: the miss rate depends on the co-runners.
    parser_rates = {
        combo: rates["parser"]
        for combo, rates in result.combos.items()
        if "parser" in combo
    }
    assert max(parser_rates.values()) > 2 * min(parser_rates.values())
