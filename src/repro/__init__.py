"""Molecular Caches (MICRO 2006) — a full reproduction library.

Varadarajan et al., "Molecular Caches: A caching structure for dynamic
creation of application-specific Heterogeneous cache regions".

Public API highlights
---------------------
* :class:`repro.molecular.MolecularCache` — the paper's cache: molecules,
  tiles, clusters/Ulmo, Random/Randy placement, Algorithm-1 resizing.
* :class:`repro.caches.SetAssociativeCache` — the traditional baselines.
* :mod:`repro.workloads` — SPEC/NetBench/MediaBench stand-in models.
* :class:`repro.sim.CMPRunner` — the throttled CMP execution model.
* :mod:`repro.power` — the CACTI-like timing/power model.
* :mod:`repro.sim.experiments` — ``run_table1`` ... ``run_table5``,
  ``run_figure5``, ``run_figure6``: one harness per table/figure.

Quick start::

    from repro import MolecularCache, MolecularCacheConfig
    cache = MolecularCache(MolecularCacheConfig())
    cache.assign_application(asid=0, goal=0.10)
    cache.access_block(block=1234, asid=0)
"""

from repro.caches import CacheHierarchy, SetAssociativeCache
from repro.common import Access, AccessResult, AccessType
from repro.molecular import (
    MolecularCache,
    MolecularCacheConfig,
    ResizePolicy,
)
from repro.power import CacheOrganization, CactiModel, MolecularEnergyModel
from repro.sim import CMPRunConfig, CMPRunner
from repro.telemetry import EventBus, JsonlSink, MetricsTimeline, RingBufferSink
from repro.trace import Trace
from repro.workloads import BenchmarkModel, RingComponent, get_model

__version__ = "1.0.0"

__all__ = [
    "Access",
    "AccessResult",
    "AccessType",
    "BenchmarkModel",
    "CMPRunConfig",
    "CMPRunner",
    "CacheHierarchy",
    "CacheOrganization",
    "CactiModel",
    "EventBus",
    "JsonlSink",
    "MetricsTimeline",
    "MolecularCache",
    "MolecularCacheConfig",
    "MolecularEnergyModel",
    "ResizePolicy",
    "RingBufferSink",
    "RingComponent",
    "SetAssociativeCache",
    "Trace",
    "get_model",
    "__version__",
]
