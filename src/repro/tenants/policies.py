"""Pluggable tenant capacity-allocation policies.

Every policy implements :class:`AllocationPolicy`: once per epoch the
service hands it the shared capacity and a read-only
:class:`TenantView` per live tenant, and it returns the next allocation
map (blocks per tenant). Three baselines ship:

* :class:`StaticProportional` — equal split among live tenants, the
  static-partitioning strawman every dynamic scheme is measured against;
* :class:`NeedDriven` — Memshare-style greedy reallocation
  (arXiv:1610.08129): each epoch, move a bounded budget of blocks from
  the tenants with the lowest estimated marginal hit-rate utility to the
  ones with the highest, using the accounting HRCs as the need signal;
* :class:`Algorithm1Tenancy` — the paper's Algorithm 1 resize rule
  (:func:`repro.molecular.resize.algorithm1_step`) applied per tenant
  against its SLA miss-rate goal, with grows arbitrated from a shared
  free pool.

All policies are deterministic: tenants are visited in sorted-id order
and ties break on tenant id, so a sweep produces byte-identical output
under serial and parallel campaign execution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.molecular.resize import algorithm1_step
from repro.tenants.accounting import HitRateSampler


@dataclass(frozen=True, slots=True)
class TenantView:
    """Read-only per-tenant snapshot a policy rebalances from."""

    tenant: int
    allocation: int  # blocks currently granted
    occupancy: int  # blocks actually resident
    epoch_accesses: int
    epoch_hits: int
    sampler: HitRateSampler | None  # None when accounting is disabled
    sla_miss_rate: float | None

    def epoch_miss_rate(self) -> float:
        if self.epoch_accesses == 0:
            return 0.0
        return 1.0 - self.epoch_hits / self.epoch_accesses


class AllocationPolicy:
    """Interface every allocation policy implements."""

    name = "abstract"

    def rebalance(
        self, epoch: int, capacity: int, tenants: dict[int, TenantView]
    ) -> dict[int, int]:
        """Return the next allocation (blocks) for every tenant in ``tenants``.

        The returned map must cover exactly the given tenants, grant each
        at least one block, and sum to at most ``capacity`` — the service
        validates and raises :class:`~repro.common.errors.ConfigError`
        otherwise.
        """
        raise NotImplementedError


class StaticProportional(AllocationPolicy):
    """Equal split among live tenants, recomputed only on churn.

    With ``n`` live tenants each gets ``capacity // n`` blocks (remainder
    to the lowest tenant ids). The split ignores demand entirely — it is
    the fairness-maximising, hit-rate-indifferent baseline.
    """

    name = "static"

    def __init__(self) -> None:
        self._last_tenants: tuple[int, ...] = ()
        self._last_split: dict[int, int] = {}

    def rebalance(
        self, epoch: int, capacity: int, tenants: dict[int, TenantView]
    ) -> dict[int, int]:
        ids = tuple(sorted(tenants))
        if ids == self._last_tenants:
            return dict(self._last_split)
        share, remainder = divmod(capacity, len(ids))
        share = max(share, 1)
        split = {
            tenant: share + (1 if i < remainder else 0)
            for i, tenant in enumerate(ids)
        }
        self._last_tenants = ids
        self._last_split = split
        return dict(split)


class NeedDriven(AllocationPolicy):
    """Memshare-style greedy marginal-hit-rate reallocation.

    Each epoch every tenant's *utility per quantum* is estimated as
    ``epoch_accesses * marginal_gain(alloc, alloc + quantum)`` from its
    sampled hit-rate curve, and its *give-up cost* symmetrically as
    ``epoch_accesses * marginal_gain(alloc - quantum, alloc)``. Quanta
    flow from the cheapest donors to the most valuable claimants while
    the claimant's utility exceeds the donor's cost, bounded by
    ``max_move_fraction`` of capacity per epoch so allocations cannot
    thrash. Idle tenants (no epoch accesses) donate down to ``min_blocks``
    unconditionally — that is the arrive/depart reclamation path.
    """

    name = "need"

    def __init__(
        self,
        quantum: int = 8,
        max_move_fraction: float = 0.10,
        min_blocks: int = 1,
    ) -> None:
        if quantum < 1:
            raise ConfigError("quantum must be >= 1")
        if not 0.0 < max_move_fraction <= 1.0:
            raise ConfigError("max_move_fraction must be in (0, 1]")
        self.quantum = quantum
        self.max_move_fraction = max_move_fraction
        self.min_blocks = min_blocks

    def rebalance(
        self, epoch: int, capacity: int, tenants: dict[int, TenantView]
    ) -> dict[int, int]:
        alloc = {t: view.allocation for t, view in sorted(tenants.items())}
        free = capacity - sum(alloc.values())
        budget = max(self.quantum, int(capacity * self.max_move_fraction))
        quantum = self.quantum

        def claim_utility(tenant: int) -> float:
            view = tenants[tenant]
            if view.sampler is None or view.epoch_accesses == 0:
                return 0.0
            current = alloc[tenant]
            return view.epoch_accesses * view.sampler.marginal_gain(
                current, current + quantum
            )

        def donate_cost(tenant: int) -> float:
            view = tenants[tenant]
            if view.epoch_accesses == 0:
                return 0.0  # idle tenants give capacity back for free
            if view.sampler is None:
                return float("inf")
            current = alloc[tenant]
            return view.epoch_accesses * view.sampler.marginal_gain(
                max(current - quantum, 0), current
            )

        # Both phases use lazy-refresh heaps: utilities shift as a
        # tenant's allocation moves, so each pop is re-evaluated and
        # pushed back if it no longer beats the runner-up. Cost per
        # epoch is O(moves * log tenants), not O(moves * tenants).

        # Phase 1 — free capacity is granted outside the move budget:
        # unclaimed blocks cost nobody anything, so the pool drains to
        # whoever shows positive marginal utility, best-first (ties to
        # the lowest tenant id).
        claim_heap = []
        for tenant in alloc:
            utility = claim_utility(tenant)
            if utility > 0.0:
                claim_heap.append((-utility, tenant))
        heapq.heapify(claim_heap)
        while free > 0 and claim_heap:
            _, claimant = heapq.heappop(claim_heap)
            utility = claim_utility(claimant)
            if utility <= 0.0:
                continue
            if claim_heap and -claim_heap[0][0] > utility:
                heapq.heappush(claim_heap, (-utility, claimant))
                continue
            step = min(quantum, free)
            alloc[claimant] += step
            free -= step
            heapq.heappush(claim_heap, (-claim_utility(claimant), claimant))

        # Phase 2 — donor-to-claimant transfers, bounded per epoch.
        donor_heap = []
        for tenant in alloc:
            if alloc[tenant] - quantum >= self.min_blocks:
                donor_heap.append((donate_cost(tenant), tenant))
        heapq.heapify(donor_heap)
        moved = 0
        while moved < budget and claim_heap and donor_heap:
            step = min(quantum, budget - moved)
            neg_utility, claimant = heapq.heappop(claim_heap)
            gain = claim_utility(claimant)
            if gain <= 0.0:
                continue
            if claim_heap and -claim_heap[0][0] > gain:
                heapq.heappush(claim_heap, (-gain, claimant))
                continue
            # Cheapest donor other than the claimant, lazily refreshed.
            skipped = None
            donor = None
            while donor_heap:
                cost, candidate = heapq.heappop(donor_heap)
                if candidate == claimant:
                    skipped = (cost, candidate)
                    continue
                fresh = donate_cost(candidate)
                if alloc[candidate] - step < self.min_blocks:
                    continue  # drained below the donation floor
                if donor_heap and donor_heap[0][0] < fresh:
                    heapq.heappush(donor_heap, (fresh, candidate))
                    continue
                donor = candidate
                cost = fresh
                break
            if skipped is not None:
                heapq.heappush(donor_heap, skipped)
            if donor is None:
                heapq.heappush(claim_heap, (-gain, claimant))
                break
            if cost >= gain:
                heapq.heappush(claim_heap, (-gain, claimant))
                heapq.heappush(donor_heap, (cost, donor))
                break
            alloc[donor] -= step
            alloc[claimant] += step
            moved += step
            heapq.heappush(claim_heap, (-claim_utility(claimant), claimant))
            if alloc[donor] - quantum >= self.min_blocks:
                heapq.heappush(donor_heap, (donate_cost(donor), donor))
        return alloc


class Algorithm1Tenancy(AllocationPolicy):
    """The paper's Algorithm 1 resize rule at tenant granularity.

    Each tenant runs its own grow/withdraw/hold decision against an SLA
    miss-rate goal, exactly the region resizer's branch structure
    (:func:`repro.molecular.resize.algorithm1_step`) in units of
    ``quantum`` blocks. Withdrawn blocks land in a shared free pool;
    grow requests are served from it in worst-miss-rate-first order, so
    a panicking tenant outranks a merely-worsening one.
    """

    name = "alg1"

    def __init__(
        self,
        quantum: int = 8,
        goal_miss_rate: float = 0.4,
        min_blocks: int = 1,
    ) -> None:
        if quantum < 1:
            raise ConfigError("quantum must be >= 1")
        self.quantum = quantum
        self.goal_miss_rate = goal_miss_rate
        self.min_blocks = min_blocks
        self._last_miss: dict[int, float] = {}
        self._last_alloc: dict[int, int] = {}
        self._max_alloc: dict[int, int] = {}

    def rebalance(
        self, epoch: int, capacity: int, tenants: dict[int, TenantView]
    ) -> dict[int, int]:
        alloc = {t: view.allocation for t, view in sorted(tenants.items())}
        free = capacity - sum(alloc.values())
        quantum = self.quantum
        requests: list[tuple[float, int, int]] = []  # (-miss, tenant, units)

        for tenant in sorted(tenants):
            view = tenants[tenant]
            if view.epoch_accesses == 0:
                continue  # idle: hold, keep state
            goal = (
                view.sla_miss_rate
                if view.sla_miss_rate is not None
                else self.goal_miss_rate
            )
            miss = view.epoch_miss_rate()
            units = max(alloc[tenant] // quantum, 1)
            max_units = self._max_alloc.get(tenant, max(capacity // quantum, 1))
            action, amount, new_max = algorithm1_step(
                miss_rate=miss,
                goal=goal,
                current=units,
                last_miss_rate=self._last_miss.get(tenant, 1.0),
                max_allocation=max_units,
                last_allocation=self._last_alloc.get(tenant, 0),
            )
            self._max_alloc[tenant] = new_max
            self._last_miss[tenant] = miss
            if action == "withdraw":
                give = min(amount * quantum, alloc[tenant] - self.min_blocks)
                if give > 0:
                    alloc[tenant] -= give
                    free += give
            elif action == "grow":
                self._last_alloc[tenant] = amount
                requests.append((-miss, tenant, amount))

        # Serve grow requests one quantum at a time, worst miss rate
        # first, cycling until the pool or every request is exhausted —
        # a lone panicking tenant cannot drain the whole free pool in
        # one epoch while others queue behind it.
        pending = [
            [tenant, units * quantum] for _, tenant, units in sorted(requests)
        ]
        while free > 0 and pending:
            remaining = []
            for tenant, want in pending:
                grant = min(quantum, want, free)
                if grant > 0:
                    alloc[tenant] += grant
                    free -= grant
                    want -= grant
                if want > 0:
                    remaining.append([tenant, want])
            pending = remaining
        return alloc


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``, 1.0 = fair."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


_POLICIES = {
    "static": StaticProportional,
    "need": NeedDriven,
    "alg1": Algorithm1Tenancy,
}


def policy_names() -> list[str]:
    return list(_POLICIES)


def make_policy(name: str, **kwargs) -> AllocationPolicy:
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown allocation policy {name!r}; available: {policy_names()}"
        ) from None
    return factory(**kwargs)
