"""Multi-tenant cache-service subsystem.

Reinterprets the paper's per-application regions as *tenants* of a shared
in-memory cache service (the ROADMAP's "millions of users" scenario):

* :mod:`repro.tenants.accounting` — per-tenant hit-rate-curve sampling
  (SHARDS-style spatially sampled stack distances into power-of-two
  buckets), occupancy and SLA (target miss rate) violation tracking;
* :mod:`repro.tenants.policies` — pluggable capacity-allocation policies
  behind one interface: static proportional split, Memshare-style
  need-driven transfer (greedy marginal-hit-rate reallocation,
  arXiv:1610.08129), and the paper's Algorithm 1 adapted to tenant
  granularity (via :func:`repro.molecular.resize.algorithm1_step`);
* :mod:`repro.tenants.service` — the :class:`CacheService` simulator: a
  shared capacity of blocks, per-tenant LRU partitions, epoch-boundary
  reallocation, telemetry emission and deterministic results.

The tenant workload family itself lives in
:mod:`repro.workloads.tenants`; the ``tenancy`` sweep in
:mod:`repro.sim.experiments.tenancy`; the tenant→molecular-region
binding in :mod:`repro.molecular.tenancy`.
"""

from repro.tenants.accounting import TenantAccounting
from repro.tenants.policies import (
    Algorithm1Tenancy,
    AllocationPolicy,
    NeedDriven,
    StaticProportional,
    TenantView,
    jain_index,
    make_policy,
    policy_names,
)
from repro.tenants.service import CacheService, TenancyRunResult

__all__ = [
    "Algorithm1Tenancy",
    "AllocationPolicy",
    "CacheService",
    "NeedDriven",
    "StaticProportional",
    "TenancyRunResult",
    "TenantAccounting",
    "TenantView",
    "jain_index",
    "make_policy",
    "policy_names",
]
