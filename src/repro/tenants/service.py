"""The multi-tenant cache service: shared capacity, per-tenant LRU shares.

:class:`CacheService` models an in-memory cache service front-end (the
Memshare setting, arXiv:1610.08129): one pool of ``capacity_blocks``
blocks partitioned among tenants, each tenant running exact LRU inside
its own share. Tenants arrive implicitly on first access (granted a
small bootstrap share, stealing one block from the largest incumbent if
the pool is empty) and effectively depart by going idle — the allocation
policy reclaims what they held.

Every ``epoch_refs`` accesses the service closes an epoch: SLA goals are
evaluated, the :class:`~repro.tenants.policies.AllocationPolicy` is asked
to rebalance, the new allocation map is validated (covers exactly the
live tenants, each >= 1 block, sums to <= capacity) and applied — shares
shrunk below occupancy evict LRU-first immediately. A
``TenantEpochSnapshot`` telemetry event captures the epoch, and a
``TenantRunSummary`` closes the run, so ``repro inspect`` can replay
per-tenant hit rates, fairness and SLA violations from the JSONL stream
alone.

Hot-path cost contract: per-tenant counters are part of the base service;
the *accounting* object (HRC sampling, SLA ledgers) is reached through a
single ``self.accounting is None`` check per access, so a run built with
``accounting=None`` pays nothing for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.tenants.accounting import TenantAccounting
from repro.tenants.policies import AllocationPolicy, TenantView, jain_index
from repro.telemetry.events import TenantEpochSnapshot, TenantRunSummary

#: Tenants listed individually in an epoch snapshot event (busiest first).
SNAPSHOT_TENANT_CAP = 16
#: Tenants whose hit-rate curves are embedded in the run summary.
SUMMARY_HRC_CAP = 8


@dataclass(slots=True)
class TenancyRunResult:
    """Everything a tenancy run produces, deterministic given the trace."""

    policy: str
    capacity_blocks: int
    epochs: int
    tenants_seen: int
    total_accesses: int
    total_hits: int
    moved_blocks: int
    sla_violations: int
    sla_violation_epochs: int
    epoch_stats: list[dict] = field(default_factory=list)
    tenant_accesses: dict[int, int] = field(default_factory=dict)
    tenant_hits: dict[int, int] = field(default_factory=dict)
    final_allocations: dict[int, int] = field(default_factory=dict)

    def aggregate_hit_rate(self) -> float:
        if self.total_accesses == 0:
            return 0.0
        return self.total_hits / self.total_accesses

    def tenant_hit_rates(self) -> dict[int, float]:
        return {
            tenant: self.tenant_hits[tenant] / accesses if accesses else 0.0
            for tenant, accesses in self.tenant_accesses.items()
        }

    def mean_jain(self) -> float:
        values = [s["jain"] for s in self.epoch_stats]
        return sum(values) / len(values) if values else 1.0


class CacheService:
    """Shared-capacity cache service with per-tenant LRU partitions."""

    def __init__(
        self,
        capacity_blocks: int,
        policy: AllocationPolicy,
        accounting: TenantAccounting | None = None,
        telemetry=None,
        epoch_refs: int = 10_000,
        bootstrap_blocks: int = 8,
    ) -> None:
        if capacity_blocks < 1:
            raise ConfigError("capacity_blocks must be >= 1")
        if epoch_refs < 1:
            raise ConfigError("epoch_refs must be >= 1")
        if bootstrap_blocks < 1:
            raise ConfigError("bootstrap_blocks must be >= 1")
        self.capacity_blocks = capacity_blocks
        self.policy = policy
        self.accounting = accounting
        self.telemetry = telemetry
        self.epoch_refs = epoch_refs
        self.bootstrap_blocks = bootstrap_blocks
        # tenant -> {key: dirty}; dict insertion order is the LRU order
        # (oldest first; hits pop + reinsert).
        self.partitions: dict[int, dict[int, bool]] = {}
        self.allocations: dict[int, int] = {}
        # Base per-tenant counters (always on; accounting adds HRC/SLA).
        self.tenant_accesses: dict[int, int] = {}
        self.tenant_hits: dict[int, int] = {}
        self._epoch_accesses: dict[int, int] = {}
        self._epoch_hits: dict[int, int] = {}
        self.epoch = 0
        self.moved_blocks = 0
        self.sla_violations = 0
        self.sla_violation_epochs = 0
        self.epoch_stats: list[dict] = []
        self._refs_in_epoch = 0
        self._free = capacity_blocks

    # ------------------------------------------------------------ admission

    def free_blocks(self) -> int:
        return self._free

    def _admit(self, tenant: int) -> None:
        """First access from ``tenant``: grant a bootstrap share.

        When the pool is dry (the policy has distributed all capacity), a
        batch of blocks is stolen from the largest incumbent share (ties
        to the earliest-admitted tenant) — batched so a churn wave of
        arrivals does not rescan the tenant table per arrival.
        """
        grant = min(self.bootstrap_blocks, self._free)
        if grant == 0:
            victim = max(self.allocations, key=self.allocations.__getitem__)
            surplus = self.allocations[victim] - 1
            if surplus <= 0:
                raise ConfigError(
                    "cannot admit tenant: capacity smaller than tenant count"
                )
            take = min(surplus, self.bootstrap_blocks * 8)
            self.allocations[victim] -= take
            self._shrink_to_allocation(victim)
            self._free += take
            grant = min(self.bootstrap_blocks, self._free)
        self.allocations[tenant] = grant
        self._free -= grant
        self.partitions[tenant] = {}
        self.tenant_accesses[tenant] = 0
        self.tenant_hits[tenant] = 0
        self._epoch_accesses[tenant] = 0
        self._epoch_hits[tenant] = 0

    def _shrink_to_allocation(self, tenant: int) -> None:
        partition = self.partitions.get(tenant)
        if partition is None:
            return
        allocation = self.allocations[tenant]
        while len(partition) > allocation:
            evicted = next(iter(partition))
            del partition[evicted]

    # ------------------------------------------------------------- hot path

    def access(self, tenant: int, key: int, write: bool = False) -> bool:
        """One reference; returns True on hit."""
        partition = self.partitions.get(tenant)
        if partition is None:
            self._admit(tenant)
            partition = self.partitions[tenant]
        self.tenant_accesses[tenant] += 1
        self._epoch_accesses[tenant] += 1
        if key in partition:
            dirty = partition.pop(key)
            partition[key] = dirty or write
            self.tenant_hits[tenant] += 1
            self._epoch_hits[tenant] += 1
            hit = True
        else:
            if len(partition) >= self.allocations[tenant]:
                evicted = next(iter(partition))
                del partition[evicted]
            partition[key] = write
            hit = False
        if self.accounting is not None:
            self.accounting.record(tenant, key, hit)
        self._refs_in_epoch += 1
        if self._refs_in_epoch >= self.epoch_refs:
            self.rollover()
        return hit

    # --------------------------------------------------------------- epochs

    def _views(self) -> dict[int, TenantView]:
        accounting = self.accounting
        views = {}
        for tenant in self.partitions:
            views[tenant] = TenantView(
                tenant=tenant,
                allocation=self.allocations[tenant],
                occupancy=len(self.partitions[tenant]),
                epoch_accesses=self._epoch_accesses[tenant],
                epoch_hits=self._epoch_hits[tenant],
                sampler=(
                    accounting.sampler_for(tenant)
                    if accounting is not None
                    else None
                ),
                sla_miss_rate=(
                    accounting.sla_miss_rate if accounting is not None else None
                ),
            )
        return views

    def _apply_allocation(self, new: dict[int, int]) -> int:
        if set(new) != set(self.partitions):
            raise ConfigError(
                f"policy {self.policy.name!r} returned allocations for "
                f"{sorted(new)} but live tenants are {sorted(self.partitions)}"
            )
        if any(blocks < 1 for blocks in new.values()):
            raise ConfigError(
                f"policy {self.policy.name!r} granted a tenant < 1 block"
            )
        total = sum(new.values())
        if total > self.capacity_blocks:
            raise ConfigError(
                f"policy {self.policy.name!r} allocated {total} blocks over "
                f"capacity {self.capacity_blocks}"
            )
        moved = (
            sum(abs(new[t] - self.allocations[t]) for t in new) // 2
        )
        self._free = self.capacity_blocks - total
        self.allocations = dict(new)
        for tenant in new:
            self._shrink_to_allocation(tenant)
        return moved

    def rollover(self) -> None:
        """Close the current epoch: SLA check, rebalance, telemetry."""
        epoch = self.epoch
        epoch_accesses = sum(self._epoch_accesses.values())
        epoch_hits = sum(self._epoch_hits.values())
        active_rates = [
            self._epoch_hits[t] / acc
            for t, acc in self._epoch_accesses.items()
            if acc > 0
        ]
        jain = jain_index(active_rates)
        violated = 0
        if self.accounting is not None:
            violated = self.accounting.close_epoch(epoch)
            self.sla_violations += violated
            if violated:
                self.sla_violation_epochs += 1
        moved = 0
        if self.partitions:
            new = self.policy.rebalance(
                epoch, self.capacity_blocks, self._views()
            )
            moved = self._apply_allocation(new)
            self.moved_blocks += moved
        stats = {
            "epoch": epoch,
            "accesses": epoch_accesses,
            "hit_rate": epoch_hits / epoch_accesses if epoch_accesses else 0.0,
            "jain": jain,
            "moved": moved,
            "violations": violated,
        }
        self.epoch_stats.append(stats)
        if self.telemetry is not None:
            self._emit_snapshot(stats)
        for tenant in self._epoch_accesses:
            self._epoch_accesses[tenant] = 0
            self._epoch_hits[tenant] = 0
        self.epoch += 1
        self._refs_in_epoch = 0

    def _emit_snapshot(self, stats: dict) -> None:
        busiest = sorted(
            self._epoch_accesses,
            key=lambda t: (-self._epoch_accesses[t], t),
        )[:SNAPSHOT_TENANT_CAP]
        tenants = {
            t: {
                "alloc": self.allocations[t],
                "occ": len(self.partitions[t]),
                "acc": self._epoch_accesses[t],
                "hr": round(
                    self._epoch_hits[t] / self._epoch_accesses[t], 4
                )
                if self._epoch_accesses[t]
                else 0.0,
            }
            for t in busiest
        }
        self.telemetry.emit(
            TenantEpochSnapshot(
                epoch=stats["epoch"],
                policy=self.policy.name,
                capacity=self.capacity_blocks,
                free=self.free_blocks(),
                moved=stats["moved"],
                aggregate_hit_rate=round(stats["hit_rate"], 4),
                jain=round(stats["jain"], 4),
                violations=stats["violations"],
                tenants=tenants,
            )
        )

    # ----------------------------------------------------------------- runs

    def run(self, trace, line_bytes: int = 64) -> TenancyRunResult:
        """Drive a full :class:`~repro.trace.container.Trace` through.

        The plain-int lists are per-run temporaries converted from the
        trace's ndarray columns (the trace no longer retains duplicate
        list copies); the per-access loop itself stays scalar because
        exact per-tenant LRU with mid-stream epoch rollovers is ordered
        state — the architectural tenant path
        (:class:`repro.molecular.tenancy.TenantRegionBinding`) is the one
        routed through the columnar kernels.
        """
        access = self.access
        for block, tenant, write in zip(
            trace.block_column(line_bytes).tolist(),
            trace.asids.tolist(),
            trace.writes.tolist(),
        ):
            access(tenant, block, write)
        if self._refs_in_epoch > 0:
            self.rollover()
        result = self._result()
        if self.telemetry is not None:
            self._emit_summary(result)
        return result

    def _result(self) -> TenancyRunResult:
        return TenancyRunResult(
            policy=self.policy.name,
            capacity_blocks=self.capacity_blocks,
            epochs=self.epoch,
            tenants_seen=len(self.tenant_accesses),
            total_accesses=sum(self.tenant_accesses.values()),
            total_hits=sum(self.tenant_hits.values()),
            moved_blocks=self.moved_blocks,
            sla_violations=self.sla_violations,
            sla_violation_epochs=self.sla_violation_epochs,
            epoch_stats=list(self.epoch_stats),
            tenant_accesses=dict(self.tenant_accesses),
            tenant_hits=dict(self.tenant_hits),
            final_allocations=dict(self.allocations),
        )

    def _emit_summary(self, result: TenancyRunResult) -> None:
        rates = result.tenant_hit_rates()
        worst_ids = sorted(rates, key=lambda t: (rates[t], t))[:4]
        worst = {
            t: {
                "hr": round(rates[t], 4),
                "acc": result.tenant_accesses[t],
                "alloc": result.final_allocations.get(t, 0),
            }
            for t in worst_ids
        }
        hrc: dict[int, list] = {}
        if self.accounting is not None:
            hrc = self.accounting.hit_rate_curves(
                self.capacity_blocks, top=SUMMARY_HRC_CAP
            )
        self.telemetry.emit(
            TenantRunSummary(
                policy=result.policy,
                epochs=result.epochs,
                tenants=result.tenants_seen,
                aggregate_hit_rate=round(result.aggregate_hit_rate(), 4),
                mean_jain=round(result.mean_jain(), 4),
                moved_blocks=result.moved_blocks,
                sla_tracked=(
                    self.accounting is not None
                    and self.accounting.sla_miss_rate is not None
                ),
                sla_violations=result.sla_violations,
                sla_violation_epochs=result.sla_violation_epochs,
                worst=worst,
                hrc=hrc,
            )
        )
