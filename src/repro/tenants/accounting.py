"""Per-tenant accounting: hit-rate curves, occupancy and SLA tracking.

The allocation signal of reuse-aware partitioning (arXiv:2201.11638) is
each tenant's *hit-rate curve* (HRC): estimated hit rate as a function of
the capacity the tenant could be granted. Tracking exact stack distances
per tenant is far too expensive at thousands of tenants, so each tenant
carries a :class:`HitRateSampler` — SHARDS-style spatial sampling (only
keys whose hash falls in ``1/sample_ratio`` of the space are tracked) over
a small exact LRU stack, with measured distances scaled back up and
folded into power-of-two buckets. Memory per tenant is bounded by
``stack_cap`` sampled keys; cost per access is a guard plus, for sampled
keys only, one list scan of at most ``stack_cap`` entries.

The accounting object also owns SLA tracking: a tenant with a target miss
rate is *violated* in an epoch when its epoch-local miss rate exceeds the
target (given a minimum number of accesses, so idle tenants don't count).

The hot-path contract mirrors the telemetry bus: a service built with
``accounting=None`` pays exactly one ``is None`` check per access —
``tests/test_tenant_service.py`` pins the contract and
``benchmarks/test_perf_tenants_overhead.py`` guards the enabled cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError

#: Knuth multiplicative hash constant (golden ratio) for key sampling.
_HASH = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


class HitRateSampler:
    """Sampled stack-distance histogram for one tenant, bucketed.

    ``buckets[i]`` counts sampled references whose scaled stack distance
    ``d`` satisfies ``2**(i-1) <= d < 2**i`` (bucket 0 is distance 0);
    ``cold`` counts sampled first-touches. :meth:`hit_rate_at` integrates
    the histogram into an estimated hit rate at a capacity, with linear
    interpolation inside the covering bucket.
    """

    __slots__ = ("sample_ratio", "stack_cap", "_stack", "buckets", "cold", "samples")

    def __init__(self, sample_ratio: int = 8, stack_cap: int = 256) -> None:
        if sample_ratio < 1:
            raise ConfigError("sample_ratio must be >= 1")
        if stack_cap < 1:
            raise ConfigError("stack_cap must be >= 1")
        self.sample_ratio = sample_ratio
        self.stack_cap = stack_cap
        self._stack: list[int] = []  # most-recent first, sampled keys only
        self.buckets: dict[int, int] = {}
        self.cold = 0
        self.samples = 0

    def record(self, key: int) -> None:
        """Feed one access (the service calls this for every reference)."""
        if ((key * _HASH) & _MASK64) % self.sample_ratio:
            return
        self.samples += 1
        stack = self._stack
        try:
            index = stack.index(key)
        except ValueError:
            self.cold += 1
            stack.insert(0, key)
            if len(stack) > self.stack_cap:
                stack.pop()
            return
        del stack[index]
        stack.insert(0, key)
        distance = index * self.sample_ratio
        bucket = distance.bit_length()  # 0 -> 0, [2**(i-1), 2**i) -> i
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    # ------------------------------------------------------------- curves

    def hit_rate_at(self, capacity_blocks: int) -> float:
        """Estimated hit rate were the tenant granted ``capacity_blocks``.

        Cold (first-touch) references count as unavoidable misses, so the
        curve saturates below 1.0 — exactly the fraction no capacity can
        recover.
        """
        if self.samples == 0 or capacity_blocks <= 0:
            return 0.0
        hits = 0.0
        for bucket, count in self.buckets.items():
            low = 0 if bucket == 0 else 1 << (bucket - 1)
            high = 1 if bucket == 0 else 1 << bucket
            if capacity_blocks >= high:
                hits += count
            elif capacity_blocks > low:
                hits += count * (capacity_blocks - low) / (high - low)
        return hits / self.samples

    def curve(self, max_blocks: int, points: int = 8) -> list[list[float]]:
        """``[capacity, est_hit_rate]`` pairs on a doubling capacity grid."""
        if max_blocks < 1:
            return []
        capacities: list[int] = []
        capacity = 1
        while capacity < max_blocks and len(capacities) < points - 1:
            capacities.append(capacity)
            capacity *= 2
        capacities.append(max_blocks)
        return [[c, round(self.hit_rate_at(c), 4)] for c in capacities]

    def marginal_gain(self, low: int, high: int) -> float:
        """Estimated extra hit rate from growing capacity ``low -> high``."""
        if high <= low:
            return 0.0
        return self.hit_rate_at(high) - self.hit_rate_at(low)


@dataclass(slots=True)
class TenantLedger:
    """Cumulative and epoch-local counters for one tenant."""

    accesses: int = 0
    hits: int = 0
    epoch_accesses: int = 0
    epoch_hits: int = 0
    sla_violations: int = 0
    violation_epochs: list[int] = field(default_factory=list)
    sampler: HitRateSampler | None = None

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def epoch_hit_rate(self) -> float:
        return (
            self.epoch_hits / self.epoch_accesses if self.epoch_accesses else 0.0
        )


class TenantAccounting:
    """Accounting for every tenant of one :class:`~repro.tenants.service.
    CacheService` run.

    Parameters
    ----------
    sla_miss_rate:
        Target miss rate every tracked tenant should stay under, or
        ``None`` to disable SLA tracking.
    sample_ratio / stack_cap:
        :class:`HitRateSampler` parameters.
    min_epoch_accesses:
        Epoch accesses below which a tenant's SLA is not evaluated.
    """

    def __init__(
        self,
        sla_miss_rate: float | None = None,
        sample_ratio: int = 8,
        stack_cap: int = 256,
        min_epoch_accesses: int = 16,
    ) -> None:
        if sla_miss_rate is not None and not 0.0 <= sla_miss_rate <= 1.0:
            raise ConfigError(
                f"sla_miss_rate must be in [0, 1], got {sla_miss_rate}"
            )
        if min_epoch_accesses < 1:
            raise ConfigError("min_epoch_accesses must be >= 1")
        self.sla_miss_rate = sla_miss_rate
        self.sample_ratio = sample_ratio
        self.stack_cap = stack_cap
        self.min_epoch_accesses = min_epoch_accesses
        self.ledgers: dict[int, TenantLedger] = {}

    # ------------------------------------------------------------ hot path

    def record(self, tenant: int, key: int, hit: bool) -> None:
        """One access; called by the service only when accounting is on."""
        ledger = self.ledgers.get(tenant)
        if ledger is None:
            ledger = TenantLedger(
                sampler=HitRateSampler(self.sample_ratio, self.stack_cap)
            )
            self.ledgers[tenant] = ledger
        ledger.accesses += 1
        ledger.epoch_accesses += 1
        if hit:
            ledger.hits += 1
            ledger.epoch_hits += 1
        ledger.sampler.record(key)

    # -------------------------------------------------------------- epochs

    def close_epoch(self, epoch: int) -> int:
        """Evaluate SLAs and reset epoch counters; returns violations."""
        violated = 0
        for ledger in self.ledgers.values():
            if (
                self.sla_miss_rate is not None
                and ledger.epoch_accesses >= self.min_epoch_accesses
            ):
                miss_rate = 1.0 - ledger.epoch_hit_rate()
                if miss_rate > self.sla_miss_rate:
                    ledger.sla_violations += 1
                    ledger.violation_epochs.append(epoch)
                    violated += 1
            ledger.epoch_accesses = 0
            ledger.epoch_hits = 0
        return violated

    # ------------------------------------------------------------- queries

    def sampler_for(self, tenant: int) -> HitRateSampler | None:
        ledger = self.ledgers.get(tenant)
        return ledger.sampler if ledger is not None else None

    def total_sla_violations(self) -> int:
        return sum(l.sla_violations for l in self.ledgers.values())

    def hit_rate_curves(
        self, max_blocks: int, top: int = 8
    ) -> dict[int, list[list[float]]]:
        """HRCs of the ``top`` tenants by cumulative accesses."""
        ranked = sorted(
            self.ledgers.items(), key=lambda item: (-item[1].accesses, item[0])
        )
        return {
            tenant: ledger.sampler.curve(max_blocks)
            for tenant, ledger in ranked[:top]
            if ledger.sampler is not None
        }
