"""Fault schedules: what breaks, when, and how.

A :class:`FaultSpec` names one fault; a :class:`FaultPlan` is an ordered
schedule of them. Plans are value objects: hashable, JSON round-trippable
(for campaign job params) and parseable from the CLI's compact
``--faults`` grammar::

    hard@5000:m3                # retire molecule 3 after 5000 references
    transient@8000:m3           # drop one resident line of molecule 3
    degraded@10000:t1+8         # tile 1's port costs 8 extra cycles

Specs are comma-separated; ``at`` is the number of references already
issued in the run when the fault fires (0 fires before the first
reference). The plan sorts itself by firing time, so callers may list
specs in any order.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.common.errors import ConfigError

#: Spec kinds and whether their target is a molecule or a tile.
KINDS = {
    "hard": "molecule",
    "transient": "molecule",
    "degraded": "tile",
}

_SPEC_RE = re.compile(
    r"^(?P<kind>[a-z]+)@(?P<at>\d+):(?P<prefix>[mt])(?P<target>\d+)"
    r"(?:\+(?P<extra>\d+))?$"
)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scheduled fault.

    ``target`` is a molecule id for ``hard``/``transient`` faults and a
    tile id for ``degraded`` faults; ``extra_cycles`` is only meaningful
    for ``degraded`` (the port-latency inflation).
    """

    kind: str
    at: int
    target: int
    extra_cycles: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(KINDS)}"
            )
        if self.at < 0:
            raise ConfigError(f"fault time cannot be negative, got {self.at}")
        if self.target < 0:
            raise ConfigError(f"fault target cannot be negative, got {self.target}")
        if self.kind == "degraded":
            if self.extra_cycles <= 0:
                raise ConfigError(
                    "a degraded-tile fault needs extra_cycles > 0, got "
                    f"{self.extra_cycles}"
                )
        elif self.extra_cycles:
            raise ConfigError(
                f"extra_cycles only applies to degraded faults, not {self.kind!r}"
            )

    @property
    def target_is_tile(self) -> bool:
        return KINDS[self.kind] == "tile"

    def as_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind,
            "at": self.at,
            "target": self.target,
        }
        if self.extra_cycles:
            payload["extra_cycles"] = self.extra_cycles
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FaultSpec":
        return cls(
            kind=payload["kind"],
            at=payload["at"],
            target=payload["target"],
            extra_cycles=payload.get("extra_cycles", 0),
        )

    def __str__(self) -> str:
        prefix = "t" if self.target_is_tile else "m"
        suffix = f"+{self.extra_cycles}" if self.extra_cycles else ""
        return f"{self.kind}@{self.at}:{prefix}{self.target}{suffix}"


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable fault schedule, sorted by firing time."""

    specs: tuple[FaultSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.specs, key=lambda spec: spec.at))
        object.__setattr__(self, "specs", ordered)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI grammar (see the module docstring)."""
        specs: list[FaultSpec] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            match = _SPEC_RE.match(part)
            if match is None:
                raise ConfigError(
                    f"cannot parse fault spec {part!r}; expected "
                    "KIND@AT:TARGET like 'hard@5000:m3', 'transient@8000:m3' "
                    "or 'degraded@10000:t1+8'"
                )
            kind = match["kind"]
            expected = KINDS.get(kind)
            if expected is None:
                raise ConfigError(
                    f"unknown fault kind {kind!r} in {part!r}; expected one "
                    f"of {sorted(KINDS)}"
                )
            prefix = match["prefix"]
            if (prefix == "t") != (expected == "tile"):
                want = "t" if expected == "tile" else "m"
                raise ConfigError(
                    f"fault {part!r}: a {kind} fault targets a "
                    f"{expected} ('{want}<id>'), got '{prefix}{match['target']}'"
                )
            extra = match["extra"]
            if extra is not None and expected != "tile":
                raise ConfigError(
                    f"fault {part!r}: '+cycles' only applies to degraded faults"
                )
            specs.append(
                FaultSpec(
                    kind=kind,
                    at=int(match["at"]),
                    target=int(match["target"]),
                    extra_cycles=int(extra) if extra is not None else 0,
                )
            )
        if not specs:
            raise ConfigError(f"fault spec {text!r} names no faults")
        return cls(tuple(specs))

    @classmethod
    def of(cls, specs: Iterable[FaultSpec]) -> "FaultPlan":
        return cls(tuple(specs))

    def as_payload(self) -> list[dict[str, Any]]:
        """JSON-able form for campaign job params."""
        return [spec.as_payload() for spec in self.specs]

    @classmethod
    def from_payload(cls, payload: Iterable[dict[str, Any]]) -> "FaultPlan":
        return cls(tuple(FaultSpec.from_payload(item) for item in payload))

    def __str__(self) -> str:
        return ",".join(str(spec) for spec in self.specs)
