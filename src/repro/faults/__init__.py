"""Deterministic fault injection and chaos testing.

Two layers of sabotage, both seeded and reproducible:

* **Cache-level faults** (:mod:`repro.faults.spec`,
  :mod:`repro.faults.injector`) — timed :class:`FaultSpec` entries in a
  :class:`FaultPlan` fire against a live
  :class:`~repro.molecular.cache.MolecularCache`: hard faults retire
  molecules, transient faults drop single lines, degraded faults inflate
  a tile's port latency. The drivers (:func:`repro.sim.driver.run_trace`,
  :class:`~repro.sim.cmp.CMPRunner`) fire due faults between references,
  so the scalar and batched access paths see identical fault timing.
* **Harness-level chaos** (:mod:`repro.faults.chaos`) — a
  :class:`ChaosPolicy` makes campaign workers crash, hang or return
  corrupted payloads, exercising the runner's retry/timeout/resume
  machinery end to end.
"""

from repro.faults.chaos import ChaosPolicy, WorkerChaos
from repro.faults.injector import FaultInjector, apply_fault
from repro.faults.spec import FaultPlan, FaultSpec

__all__ = [
    "ChaosPolicy",
    "WorkerChaos",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "apply_fault",
]
