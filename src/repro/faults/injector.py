"""Applying faults to a live molecular cache.

:func:`apply_fault` is the single primitive — the differential oracle
calls it directly (a fault is a structural op, like ``force_resize``),
and :class:`FaultInjector` layers a schedule on top for the trace
drivers. Everything here mutates the cache through the same bookkeeping
paths the resize engine uses, so the full-state auditor can hold the
post-fault cache to the same invariants.

Fault semantics
---------------
``hard``
    The molecule is flushed (dirty lines written back and accounted like
    a withdrawal flush), detached from its owning region — exclusive,
    shared, or the free pool — and permanently retired: it leaves the
    free pool, its ASID comparator stops firing, and it can never be
    reconfigured. An exclusive region notes the loss in
    ``pending_repair``; the resizer re-grows it at its next epoch.
``transient``
    A detected-uncorrectable error in one line: the lowest-indexed
    resident line is dropped in place. Dirty data is *lost* (no
    writeback — there is nothing correct to write), and the next access
    to the block refetches from memory as an ordinary miss.
``degraded``
    The tile's port latency is inflated by ``extra_cycles`` on every
    access that touches the tile (home accesses and remote searches).

Each applied fault bumps the cache's ``_ctx_epoch`` where it can change
what a cached access context precomputed (retirement alters comparator
counts and membership; degradation alters latency constants).
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.faults.spec import FaultPlan, FaultSpec
from repro.telemetry.events import FaultInjected, MoleculeRetired

#: Shared-region owner sentinel (mirrors repro.molecular.cache.SHARED_ASID;
#: re-importing it here would be circular via the telemetry module chain).
_SHARED_ASID = -2


def _find_molecule(cache, molecule_id: int):
    """Resolve a global molecule id against the cache's geometry."""
    per_tile = cache.config.molecules_per_tile
    tile = cache._tiles.get(molecule_id // per_tile)
    if tile is not None:
        molecule = tile.molecules[molecule_id % per_tile]
        if molecule.molecule_id == molecule_id:
            return molecule
    for tile in cache._tiles.values():  # pragma: no cover - non-uniform ids
        for molecule in tile.molecules:
            if molecule.molecule_id == molecule_id:
                return molecule
    raise ConfigError(f"no molecule {molecule_id} in this cache")


def _owner_region(cache, molecule):
    """The region a molecule belongs to (None for the free pool)."""
    if molecule.shared:
        return cache._shared_regions.get(molecule.tile_id)
    if molecule.asid >= 0:
        return cache.regions.get(molecule.asid)
    return None


def _apply_hard(cache, spec: FaultSpec) -> tuple[bool, str]:
    molecule = _find_molecule(cache, spec.target)
    if molecule.failed:
        return False, "already retired"
    tile = cache._tiles[molecule.tile_id]
    owner = _owner_region(cache, molecule)
    if owner is not None and owner.molecule_count <= 1:
        # A region must keep at least one molecule (the same floor the
        # resizer's withdrawals respect): a zero-molecule region cannot
        # serve its application at all. The defective molecule stays in
        # service — degradation is graceful, not total.
        return False, "owning region is at its minimum size"
    owner_asid = _SHARED_ASID if molecule.shared else molecule.asid
    was_shared = molecule.shared
    if owner is not None:
        flushed = owner.detach_molecule(molecule)
    else:
        flushed = molecule.flush()
    tile.retire(molecule)
    dirty = 0
    for block, was_dirty in flushed:
        if was_dirty:
            dirty += 1
        if owner is not None:
            cache.placement.on_evict(owner, block)
    stats = cache.stats
    stats.writebacks_to_memory += dirty
    stats.flush_writebacks += dirty
    stats.molecules_retired += 1
    if owner is not None and not was_shared:
        # Exclusive regions get their lost capacity back from the resizer
        # at its next epoch; shared regions and the free pool do not.
        owner.pending_repair += 1
    cache._ctx_epoch += 1
    bus = cache.telemetry
    if bus is not None:
        bus.emit(
            MoleculeRetired(
                accesses=stats.total.accesses,
                molecule=spec.target,
                tile=tile.tile_id,
                asid=owner_asid,
                shared=was_shared,
                writebacks=dirty,
                molecules=owner.molecule_count if owner is not None else 0,
            )
        )
    if owner is None:
        return True, "retired from the free pool"
    owner_name = "shared region" if was_shared else f"asid {owner_asid}"
    return True, f"retired from {owner_name} ({dirty} writeback(s))"


def _apply_transient(cache, spec: FaultSpec) -> tuple[bool, str]:
    molecule = _find_molecule(cache, spec.target)
    if molecule.failed:
        return False, "molecule already retired"
    blocks = molecule.resident_blocks()
    if not blocks:
        return False, "no resident lines"
    block = blocks[0]  # deterministic victim: lowest line index
    was_dirty = molecule.invalidate(block)
    owner = _owner_region(cache, molecule)
    if owner is not None:
        owner.presence.pop(block, None)
        # A transient drop changes the presence map without touching
        # membership, so only the contents revision moves — enough to
        # invalidate the columnar engine's region mirrors.
        owner.content_version += 1
        cache.placement.on_evict(owner, block)
    cache.stats.lines_invalidated += 1
    note = " (dirty data lost)" if was_dirty else ""
    return True, f"block {block} dropped{note}"


def _apply_degraded(cache, spec: FaultSpec) -> tuple[bool, str]:
    tile = cache.tile_of(spec.target)
    if tile.extra_port_cycles == spec.extra_cycles:
        return False, f"port already at +{spec.extra_cycles} cycles"
    tile.extra_port_cycles = spec.extra_cycles
    cache._ctx_epoch += 1
    return True, f"port latency +{spec.extra_cycles} cycles"


_APPLIERS = {
    "hard": _apply_hard,
    "transient": _apply_transient,
    "degraded": _apply_degraded,
}


def apply_fault(cache, spec: FaultSpec) -> bool:
    """Apply one fault now; returns whether it had any effect.

    Counts the injection, mutates the cache, and emits the
    :class:`~repro.telemetry.events.FaultInjected` (and, for an effective
    hard fault, :class:`~repro.telemetry.events.MoleculeRetired`) events
    when a bus is attached.
    """
    applied, detail = _APPLIERS[spec.kind](cache, spec)
    stats = cache.stats
    stats.faults_injected += 1
    bus = cache.telemetry
    if bus is not None:
        bus.emit(
            FaultInjected(
                accesses=stats.total.accesses,
                fault=spec.kind,
                target=spec.target,
                applied=applied,
                detail=detail,
            )
        )
    return applied


class FaultInjector:
    """Fires a :class:`FaultPlan` against a cache as references elapse.

    ``fire_due(issued)`` applies every spec whose ``at`` is <= the number
    of references already issued; drivers call it *before* issuing the
    next reference, so ``at=N`` means "after N references, before the
    N+1st". Specs fire exactly once, in schedule order.
    """

    __slots__ = ("cache", "specs", "_index")

    def __init__(self, cache, plan: FaultPlan) -> None:
        self.cache = cache
        self.specs = plan.specs
        self._index = 0

    @property
    def next_at(self) -> int | None:
        """Firing time of the next pending spec (None when exhausted)."""
        if self._index >= len(self.specs):
            return None
        return self.specs[self._index].at

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self.specs)

    def fire_due(self, issued: int) -> int:
        """Apply every spec due at ``issued`` references; returns the count."""
        fired = 0
        while self._index < len(self.specs) and self.specs[self._index].at <= issued:
            apply_fault(self.cache, self.specs[self._index])
            self._index += 1
            fired += 1
        return fired
