"""Chaos policy for campaign workers: seeded, per-job sabotage.

A :class:`ChaosPolicy` decides — deterministically, from its seed and a
job's content hash — whether a worker executing that job should crash,
hang, or return a corrupted payload. The campaign runner consults it
once per job (the *first* pool execution attempt) and ships the
directive into the worker, so a chaos run exercises the real recovery
machinery: crashes break the pool (``BrokenProcessPool`` → requeue),
hangs trip the sliding-window timeout, and corrupted payloads must be
rejected by result validation and retried. Because the decision is a
pure function of ``(seed, job_hash)``, a chaos campaign is exactly
reproducible.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True, slots=True)
class ChaosPolicy:
    """Sabotage rates for campaign workers.

    Each rate is the probability (over the per-job deterministic roll)
    of that failure mode; the rates are disjoint and must sum to at most
    1. ``hang_seconds`` should comfortably exceed the campaign's
    per-job timeout budget so a hang reliably trips it.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        total = self.crash_rate + self.hang_rate + self.corrupt_rate
        if total > 1.0:
            raise ConfigError(
                f"chaos rates sum to {total}; they are disjoint and must "
                "sum to at most 1"
            )
        if self.hang_seconds <= 0:
            raise ConfigError(
                f"hang_seconds must be positive, got {self.hang_seconds}"
            )

    @property
    def active(self) -> bool:
        return (self.crash_rate + self.hang_rate + self.corrupt_rate) > 0.0

    def directive(self, job_hash: str) -> dict | None:
        """The sabotage for one job, or None to leave it alone.

        Deterministic in ``(seed, job_hash)``; the returned dict is
        JSON-able so it can cross the process boundary with the job
        payload.
        """
        roll = random.Random(f"{self.seed}/{job_hash}").random()
        if roll < self.crash_rate:
            return {"action": "crash"}
        if roll < self.crash_rate + self.hang_rate:
            return {"action": "hang", "seconds": self.hang_seconds}
        if roll < self.crash_rate + self.hang_rate + self.corrupt_rate:
            return {"action": "corrupt"}
        return None


@dataclass(frozen=True, slots=True)
class WorkerChaos:
    """Deterministic sabotage of one *lease-protocol* worker.

    Where :class:`ChaosPolicy` sabotages pool jobs from the dispatcher's
    side, ``WorkerChaos`` rides inside a ``repro worker`` process and
    attacks the distributed drain itself. Directives (comma-separated in
    the CLI grammar):

    * ``kill@N`` — SIGKILL the worker right after it acquires its Nth
      lease, before any result is written: the orphaned-lease scenario a
      peer must reclaim after ``ttl``.
    * ``hang@N:S`` — sleep S seconds inside the Nth job before
      executing it: with a ``job_timeout`` below S the worker turns into
      a stale zombie whose eventual commit must be fenced off.
    * ``poison@PREFIX[:raise]`` — whenever the worker executes a job
      whose content hash starts with ``PREFIX``, SIGKILL itself (or,
      with ``:raise``, fail in-process). Handing every worker the same
      poison directive forces the job through ``max_reclaims`` attempts
      and into quarantine.

    Everything is counted per *acquisition* in this worker, so a chaos
    run is exactly reproducible.
    """

    kill_after: int | None = None
    hang_at: int | None = None
    hang_seconds: float = 5.0
    poison: str | None = None
    poison_raise: bool = False

    @classmethod
    def parse(cls, text: str | None) -> "WorkerChaos | None":
        """Parse the CLI grammar; None/empty/"none" disables chaos."""
        if not text or text.strip().lower() == "none":
            return None
        kill_after = hang_at = poison = None
        hang_seconds = 5.0
        poison_raise = False
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            name, _, rest = part.partition("@")
            try:
                if name == "kill":
                    kill_after = int(rest)
                elif name == "hang":
                    count, _, seconds = rest.partition(":")
                    hang_at = int(count)
                    if seconds:
                        hang_seconds = float(seconds)
                elif name == "poison":
                    prefix, _, mode = rest.partition(":")
                    if not prefix:
                        raise ValueError("empty poison prefix")
                    if mode not in ("", "raise"):
                        raise ValueError(f"unknown poison mode {mode!r}")
                    poison = prefix
                    poison_raise = mode == "raise"
                else:
                    raise ValueError(f"unknown directive {name!r}")
            except ValueError as error:
                raise ConfigError(
                    f"bad worker-chaos directive {part!r}: {error}; "
                    "grammar is kill@N, hang@N:S, poison@PREFIX[:raise]"
                ) from None
        if kill_after is not None and kill_after < 1:
            raise ConfigError("kill@N needs N >= 1")
        if hang_at is not None and (hang_at < 1 or hang_seconds <= 0):
            raise ConfigError("hang@N:S needs N >= 1 and S > 0")
        return cls(
            kill_after=kill_after,
            hang_at=hang_at,
            hang_seconds=hang_seconds,
            poison=poison,
            poison_raise=poison_raise,
        )

    def on_acquire(self, acquisition: int) -> None:
        """Fired after the worker's Nth lease hits the disk."""
        if self.kill_after is not None and acquisition == self.kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    def before_execute(self, acquisition: int, job_hash: str) -> None:
        """Fired just before the Nth acquired job executes."""
        if self.hang_at is not None and acquisition == self.hang_at:
            time.sleep(self.hang_seconds)
        if self.poison is not None and job_hash.startswith(self.poison):
            if self.poison_raise:
                raise RuntimeError(
                    f"poisoned job {job_hash[:12]} (worker chaos)"
                )
            os.kill(os.getpid(), signal.SIGKILL)
