"""Chaos policy for campaign workers: seeded, per-job sabotage.

A :class:`ChaosPolicy` decides — deterministically, from its seed and a
job's content hash — whether a worker executing that job should crash,
hang, or return a corrupted payload. The campaign runner consults it
once per job (the *first* pool execution attempt) and ships the
directive into the worker, so a chaos run exercises the real recovery
machinery: crashes break the pool (``BrokenProcessPool`` → requeue),
hangs trip the sliding-window timeout, and corrupted payloads must be
rejected by result validation and retried. Because the decision is a
pure function of ``(seed, job_hash)``, a chaos campaign is exactly
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True, slots=True)
class ChaosPolicy:
    """Sabotage rates for campaign workers.

    Each rate is the probability (over the per-job deterministic roll)
    of that failure mode; the rates are disjoint and must sum to at most
    1. ``hang_seconds`` should comfortably exceed the campaign's
    per-job timeout budget so a hang reliably trips it.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        total = self.crash_rate + self.hang_rate + self.corrupt_rate
        if total > 1.0:
            raise ConfigError(
                f"chaos rates sum to {total}; they are disjoint and must "
                "sum to at most 1"
            )
        if self.hang_seconds <= 0:
            raise ConfigError(
                f"hang_seconds must be positive, got {self.hang_seconds}"
            )

    @property
    def active(self) -> bool:
        return (self.crash_rate + self.hang_rate + self.corrupt_rate) > 0.0

    def directive(self, job_hash: str) -> dict | None:
        """The sabotage for one job, or None to leave it alone.

        Deterministic in ``(seed, job_hash)``; the returned dict is
        JSON-able so it can cross the process boundary with the job
        payload.
        """
        roll = random.Random(f"{self.seed}/{job_hash}").random()
        if roll < self.crash_rate:
            return {"action": "crash"}
        if roll < self.crash_rate + self.hang_rate:
            return {"action": "hang", "seconds": self.hang_seconds}
        if roll < self.crash_rate + self.hang_rate + self.corrupt_rate:
            return {"action": "corrupt"}
        return None
