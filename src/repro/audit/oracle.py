"""Differential oracle: one op stream, several independent access paths.

The molecular cache keeps four access implementations that must stay
byte-identical — the scalar reference (``access_block``), the batched
engine (``access_many``), the allocation-free session
(``access_session``) and the columnar kernel engine
(:class:`~repro.molecular.columnar.ColumnarAccessEngine`, run with its
heuristic fallbacks pinned off so the kernels themselves are on trial) —
plus a *brute-force* path: the scalar reference with the full invariant
auditor run after **every** operation. The oracle
replays one operation stream through each path on independently built
caches (same :class:`Scenario`, same seed) and diffs everything
observable afterwards: the stats dictionary, the occupancy report, the
resize chronicle and the recorded telemetry stream.

A divergence means one of the fast paths drifted from the reference; an
:class:`~repro.audit.invariants.AuditError` from the brute-force path
means the reference itself corrupted its own bookkeeping. The fuzz
harness (:mod:`repro.audit.fuzz`) feeds this with randomized streams and
shrinks whatever fails.

Operations are plain tuples so streams stay hashable, serialisable and
trivially shrinkable:

``("access", asid, block, write)``
    One memory reference.
``("force_resize",)``
    Run a resize round immediately (``Resizer.force_resize``).
``("migrate", asid, tile_id)``
    Re-home an application (ignored when the topology forbids it, in
    every path alike, so streams stay valid under shrinking).
``("fault", kind, target[, extra_cycles])``
    Inject one fault (:func:`repro.faults.injector.apply_fault`) at this
    position in the stream: ``("fault", "hard", 3)`` retires molecule 3,
    ``("fault", "transient", 3)`` drops one of its lines, and
    ``("fault", "degraded", 1, 8)`` inflates tile 1's port latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.audit.invariants import assert_invariants
from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import XorShift64
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy

#: The replay paths the oracle knows, in the order they are run.
PATHS = ("scalar", "batched", "session", "columnar", "brute")

#: Ring-buffer capacity for the recorded telemetry streams. Large enough
#: that the fuzzer's streams never wrap (drops would still be identical
#: across paths, but a full buffer makes divergences exact).
_EVENT_CAPACITY = 1 << 17

Op = tuple


@dataclass(frozen=True, slots=True)
class AppSpec:
    """One application of a scenario.

    ``shared=True`` attaches the ASID to its tile's shared region
    (``assign_shared_application``) instead of granting exclusive
    molecules.
    """

    asid: int
    goal: float | None = 0.2
    tile_id: int | None = None
    line_multiplier: int = 1
    initial_molecules: int | None = None
    shared: bool = False


@dataclass(frozen=True, slots=True)
class Scenario:
    """Everything needed to build identical caches for every path."""

    apps: tuple[AppSpec, ...]
    shared_tiles: tuple[tuple[int, int], ...] = ()  # (tile_id, molecules)
    molecule_bytes: int = 512
    line_bytes: int = 64
    molecules_per_tile: int = 6
    tiles_per_cluster: int = 3
    clusters: int = 1
    placement: str = "randy"
    trigger: str = "global_adaptive"
    period: int = 200
    period_floor: int = 50
    min_window_refs: int = 16
    seed: int = 11
    #: Attach the telemetry bus. Kept in the scenario so the fuzzer can
    #: disable it for some cells: with the bus attached the columnar path
    #: semantically falls back to the batched engine, so telemetry-free
    #: cells are the ones that put the vector kernels on trial.
    telemetry: bool = True
    #: Resize mechanism (``flush`` / ``chash``) — the fuzzer's mechanism
    #: axis replays one op stream through both backends.
    mechanism: str = "flush"

    def build(self, telemetry: bool | None = None):
        """A fresh cache (and its ring-buffer sink, or ``None``)."""
        from repro.telemetry.bus import EventBus
        from repro.telemetry.sinks import RingBufferSink

        config = MolecularCacheConfig(
            molecule_bytes=self.molecule_bytes,
            line_bytes=self.line_bytes,
            molecules_per_tile=self.molecules_per_tile,
            tiles_per_cluster=self.tiles_per_cluster,
            clusters=self.clusters,
            strict=False,
        )
        policy = ResizePolicy(
            period=self.period,
            trigger=self.trigger,
            period_floor=self.period_floor,
            min_window_refs=self.min_window_refs,
            mechanism=self.mechanism,
        )
        cache = MolecularCache(
            config,
            policy,
            placement=self.placement,
            rng=XorShift64(self.seed),
        )
        sink = None
        if telemetry is None:
            telemetry = self.telemetry
        if telemetry:
            sink = RingBufferSink(capacity=_EVENT_CAPACITY)
            cache.attach_telemetry(
                EventBus(
                    sinks=[sink],
                    epoch_refs=100,
                    sample_interval=7,
                    remote_search_sample=2,
                )
            )
        for tile_id, molecules in self.shared_tiles:
            cache.create_shared_region(tile_id, molecules)
        for app in self.apps:
            if app.shared:
                cache.assign_shared_application(app.asid, app.tile_id)
            else:
                cache.assign_application(
                    app.asid,
                    goal=app.goal,
                    tile_id=app.tile_id,
                    line_multiplier=app.line_multiplier,
                    initial_molecules=app.initial_molecules,
                )
        return cache, sink


@dataclass(slots=True)
class PathResult:
    """Observable end state of one replay path."""

    path: str
    stats: dict
    occupancy: dict
    resize_log: list
    events: list
    error: str | None = None


@dataclass(slots=True)
class OracleReport:
    """Outcome of one differential run."""

    scenario: Scenario
    results: dict[str, PathResult] = field(default_factory=dict)
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _apply_structural(cache: MolecularCache, op: Op) -> None:
    if op[0] == "force_resize":
        cache.resizer.force_resize()
    elif op[0] == "migrate":
        try:
            cache.migrate_application(op[1], op[2])
        except ConfigError:
            # Cross-cluster or shared-region migration: invalid in every
            # path alike (topology is scenario state), so skipping keeps
            # the streams comparable and shrinking closed under deletion.
            pass
    elif op[0] == "fault":
        from repro.faults.injector import apply_fault
        from repro.faults.spec import FaultSpec

        apply_fault(
            cache,
            FaultSpec(
                kind=op[1],
                at=0,  # positional: fires at its place in the stream
                target=op[2],
                extra_cycles=op[3] if len(op) > 3 else 0,
            ),
        )
    else:  # pragma: no cover - generator bug
        raise ConfigError(f"unknown structural op {op[0]!r}")


def replay(
    scenario: Scenario,
    ops,
    path: str = "scalar",
    audit_every: int = 0,
) -> PathResult:
    """Replay ``ops`` on a fresh cache through one access path.

    ``audit_every`` runs :func:`assert_invariants` every N accesses (an
    epoch boundary for the fuzzer); the ``brute`` path audits after every
    single operation regardless.
    """
    if path not in PATHS:
        raise ConfigError(f"unknown oracle path {path!r}; expected one of {PATHS}")
    cache, sink = scenario.build()
    session = cache.access_session() if path == "session" else None
    engine = None
    if path == "columnar":
        from repro.molecular.columnar import ColumnarAccessEngine

        # force_kernels pins the heuristic fallbacks off so short or
        # miss-heavy streams still exercise the vector kernels; the
        # semantic fallbacks (telemetry, custom latency, ...) remain.
        engine = ColumnarAccessEngine(cache, force_kernels=True)
    pending: list[Op] = []  # buffered consecutive accesses (batched paths)
    since_audit = 0
    error: str | None = None

    def flush() -> None:
        if not pending:
            return
        blocks = [op[2] for op in pending]
        asids = [op[1] for op in pending]
        writes = [op[3] for op in pending]
        if engine is not None:
            engine.stream(blocks, asids, writes)
        else:
            cache.access_many(blocks, asids, writes)
        pending.clear()

    def audit_now() -> None:
        # counters=True: oracle caches are built fresh and never reset,
        # so the cross-family conservation checks always apply.
        assert_invariants(cache, counters=True)

    try:
        for op in ops:
            if op[0] == "access":
                if path in ("batched", "columnar"):
                    pending.append(op)
                elif path == "session":
                    session.access(op[2], op[1], op[3])
                else:  # scalar, brute
                    cache.access_block(op[2], op[1], op[3])
            else:
                if path in ("batched", "columnar"):
                    flush()
                _apply_structural(cache, op)
            if path == "brute":
                audit_now()
            elif audit_every:
                since_audit += 1
                if since_audit >= audit_every:
                    flush()
                    audit_now()
                    since_audit = 0
        flush()
        if path == "brute" or audit_every:
            audit_now()
    except SimulationError as exc:
        error = f"{type(exc).__name__}: {exc}"

    return PathResult(
        path=path,
        stats=cache.stats.as_dict(),
        occupancy=cache.occupancy_report(),
        resize_log=list(cache.resizer.log),
        events=[event.as_dict() for event in sink] if sink is not None else [],
        error=error,
    )


def _diff_events(reference: PathResult, other: PathResult) -> list[str]:
    diffs: list[str] = []
    a, b = reference.events, other.events
    if len(a) != len(b):
        diffs.append(
            f"{other.path}: {len(b)} telemetry events != "
            f"{len(a)} on {reference.path}"
        )
    for index, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            diffs.append(
                f"{other.path}: telemetry event {index} diverges: "
                f"{eb} != {ea}"
            )
            break
    return diffs


def diff_results(reference: PathResult, other: PathResult) -> list[str]:
    """Human-readable divergences of ``other`` from ``reference``."""
    diffs: list[str] = []
    if other.error != reference.error:
        diffs.append(
            f"{other.path}: error {other.error!r} != {reference.error!r} "
            f"on {reference.path}"
        )
        return diffs  # post-error state is not comparable
    for key in reference.stats:
        if other.stats.get(key) != reference.stats[key]:
            diffs.append(
                f"{other.path}: stats[{key!r}] {other.stats.get(key)!r} != "
                f"{reference.stats[key]!r}"
            )
    if other.occupancy != reference.occupancy:
        diffs.append(
            f"{other.path}: occupancy report diverges: "
            f"{other.occupancy} != {reference.occupancy}"
        )
    if other.resize_log != reference.resize_log:
        diffs.append(
            f"{other.path}: resize log ({len(other.resize_log)} entries) "
            f"!= reference ({len(reference.resize_log)})"
        )
    diffs.extend(_diff_events(reference, other))
    return diffs


def run_oracle(
    scenario: Scenario,
    ops,
    audit_every: int = 0,
    paths=PATHS,
) -> OracleReport:
    """Replay ``ops`` through every path and report all divergences.

    The scalar path is the reference; an audit failure on any path is a
    divergence in its own right (carried in ``PathResult.error`` — the
    scalar and brute paths run the same accesses, so an error unique to
    one of them is itself a detected inconsistency).
    """
    ops = list(ops)
    report = OracleReport(scenario=scenario)
    for path in paths:
        report.results[path] = replay(scenario, ops, path, audit_every)
    reference = report.results.get("scalar")
    if reference is None:
        reference = report.results[next(iter(report.results))]
    if reference.error is not None:
        report.divergences.append(
            f"{reference.path}: {reference.error}"
        )
    for path, result in report.results.items():
        if result is reference:
            continue
        report.divergences.extend(diff_results(reference, result))
    return report
