"""Seeded randomized fuzz harness for the cache simulators.

Generates operation streams — accesses across several applications ×
placement policies × line multipliers × resize triggers × resize
mechanisms × shared regions × migrations × forced resize rounds — and
runs each stream through the
differential oracle (:mod:`repro.audit.oracle`) with the full-state
auditor firing at epoch boundaries. A failure (an invariant violation or
a divergence between access paths) is shrunk to a minimal reproducing
stream with a ddmin-style chunk reducer before it is reported, so a
``repro fuzz`` failure is directly debuggable.

Everything is deterministic in the seed: the same
``seed × placement × trigger`` cell always generates the same scenario
and stream, which is what makes the CI smoke job meaningful.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro.audit.invariants import DEFAULT_CADENCE
from repro.audit.oracle import (
    PATHS,
    AppSpec,
    Op,
    OracleReport,
    Scenario,
    run_oracle,
)
from repro.common.errors import ConfigError

#: Placement policies and resize triggers the default sweep covers.
ALL_PLACEMENTS = ("random", "randy", "lru_direct")
ALL_TRIGGERS = ("constant", "global_adaptive", "per_app_adaptive")

#: Resize mechanisms the harness can sweep. The default sweep runs only
#: ``flush`` so the established fixed-seed CI streams stay byte-stable;
#: the chash arm is opted into per run (``repro fuzz --mechanism``).
ALL_MECHANISMS = ("flush", "chash")

#: Line multipliers the generator draws from (1 = base line size).
LINE_MULTIPLIERS = (1, 2, 4)

#: Epoch length for the in-stream audits: every this many operations the
#: oracle runs the full auditor on each path. Chosen well below the
#: generator's resize period so audits land between *and* across resize
#: rounds.
AUDIT_EPOCH = 500

#: Cap on predicate evaluations while shrinking one failure.
_SHRINK_BUDGET = 80


@dataclass(frozen=True, slots=True)
class FuzzFailure:
    """One failing cell, after shrinking."""

    scenario: Scenario
    ops: tuple[Op, ...]
    divergences: tuple[str, ...]
    original_ops: int

    def summary(self) -> str:
        head = "; ".join(self.divergences[:3])
        return (
            f"{self.scenario.placement}/{self.scenario.trigger}"
            f"/{self.scenario.mechanism} "
            f"seed={self.scenario.seed}: {len(self.divergences)} "
            f"divergence(s) reproduced by {len(self.ops)} op(s) "
            f"(shrunk from {self.original_ops}): {head}"
        )


@dataclass(slots=True)
class FuzzReport:
    """Outcome of one fuzz sweep."""

    seed: int
    cells: list[tuple[str, str, str]] = field(default_factory=list)
    operations: int = 0
    audits: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.failures)} FAILING cell(s)"
        return (
            f"fuzz seed={self.seed}: {len(self.cells)} cell(s), "
            f"{self.operations} operation(s) through {len(PATHS)} paths, "
            f"~{self.audits} audit(s) per path: {status}"
        )


# ------------------------------------------------------------ generation


def generate_scenario(
    rng: random.Random, placement: str, trigger: str, seed: int
) -> Scenario:
    """A small, fully-exercised geometry for one fuzz cell.

    One cluster of three 6-molecule tiles (512 B molecules, 64 B lines —
    8 lines per molecule) keeps every run fast while still leaving room
    for growth, withdrawal, remote placement, a shared region and
    same-cluster migration.
    """
    multiplier_a = rng.choice(LINE_MULTIPLIERS)
    multiplier_b = rng.choice(LINE_MULTIPLIERS)
    shared = rng.random() < 0.75
    apps = [
        AppSpec(asid=0, goal=rng.choice((0.1, 0.3)), tile_id=0,
                line_multiplier=multiplier_a, initial_molecules=2),
        AppSpec(asid=1, goal=rng.choice((0.2, None)), tile_id=1,
                line_multiplier=multiplier_b, initial_molecules=2),
    ]
    shared_tiles: tuple[tuple[int, int], ...] = ()
    if shared:
        shared_tiles = ((2, 2),)
        apps.append(AppSpec(asid=2, tile_id=2, shared=True))
    return Scenario(
        apps=tuple(apps),
        shared_tiles=shared_tiles,
        placement=placement,
        trigger=trigger,
        seed=seed,
    )


def generate_ops(
    rng: random.Random, scenario: Scenario, count: int, faults: bool = False
) -> list[Op]:
    """A ``count``-operation stream for ``scenario``.

    Each application walks a hot set (sized to stress its partition) with
    a cold tail, ~30 % writes; forced resize rounds and same-cluster
    migrations are sprinkled in so the structural paths fire even on
    short streams. With ``faults`` enabled, random fault ops (hard
    retirement, transient line drops, tile degradation) join the mix —
    off by default so the established fixed-seed streams stay stable.
    """
    asids = [app.asid for app in scenario.apps]
    hot: dict[int, tuple[int, int]] = {}
    for app in scenario.apps:
        base = 1 + app.asid * 100_000
        span = rng.randint(48, 384)
        hot[app.asid] = (base, span)
    tile_count = scenario.tiles_per_cluster * scenario.clusters
    molecule_count = tile_count * scenario.molecules_per_tile
    movable = [app.asid for app in scenario.apps if not app.shared]
    ops: list[Op] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.0005:
            ops.append(("force_resize",))
            continue
        if roll < 0.0009 and movable:
            ops.append(
                ("migrate", rng.choice(movable), rng.randrange(tile_count))
            )
            continue
        if faults and roll < 0.0021:
            if roll < 0.0013:
                ops.append(("fault", "hard", rng.randrange(molecule_count)))
            elif roll < 0.0018:
                ops.append(
                    ("fault", "transient", rng.randrange(molecule_count))
                )
            else:
                ops.append(
                    (
                        "fault",
                        "degraded",
                        rng.randrange(tile_count),
                        rng.choice((4, 8, 16)),
                    )
                )
            continue
        asid = rng.choice(asids)
        base, span = hot[asid]
        if rng.random() < 0.85:
            block = base + rng.randrange(span)
        else:
            block = base + span + rng.randrange(span * 8)
        ops.append(("access", asid, block, rng.random() < 0.3))
    return ops


# -------------------------------------------------------------- shrinking


def shrink_ops(
    scenario: Scenario,
    ops: list[Op],
    audit_every: int,
    paths=PATHS,
    budget: int = _SHRINK_BUDGET,
) -> list[Op]:
    """ddmin-style chunk reduction to a (locally) minimal failing stream.

    The predicate is "the oracle still reports any divergence" — not the
    same divergence, which lets the reducer slide into a simpler failure
    of the same run, exactly what a debugger wants first.
    """

    def fails(candidate: list[Op]) -> bool:
        return not run_oracle(
            scenario, candidate, audit_every=audit_every, paths=paths
        ).ok

    calls = 0
    granularity = 2
    while len(ops) >= 2 and calls < budget:
        chunk = max(1, len(ops) // granularity)
        reduced = False
        start = 0
        while start < len(ops) and calls < budget:
            candidate = ops[:start] + ops[start + chunk:]
            calls += 1
            if candidate and fails(candidate):
                ops = candidate
                reduced = True
                # Same granularity, same start: the next chunk now lives
                # where the removed one was.
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity *= 2
        else:
            granularity = max(granularity - 1, 2)
    return ops


# ------------------------------------------------------------------ sweep


def fuzz(
    ops: int = 50_000,
    seed: int = 0,
    placements=None,
    triggers=None,
    audit_every: int | None = None,
    paths=PATHS,
    shrink: bool = True,
    log=None,
    faults: bool = False,
    mechanisms=None,
) -> FuzzReport:
    """Run the differential fuzz sweep over placements × triggers ×
    resize mechanisms.

    Each cell generates its own scenario and stream (deterministic in
    ``seed``), replays it through every oracle path with audits every
    ``audit_every`` operations (default :data:`AUDIT_EPOCH`; the brute
    path always audits per-op), and shrinks any failure. ``faults``
    mixes random fault schedules (molecule retirement, transient line
    drops, tile degradation) into every cell's stream. ``mechanisms``
    defaults to ``("flush",)``: flush cells derive their streams from
    the historical ``seed/placement/trigger`` RNG key (byte-stable with
    pre-mechanism releases), while a chash cell salts the key with the
    mechanism name so the two backends face *different* streams too —
    run both to replay one shared stream per backend pair.
    """
    if ops < 1:
        raise ConfigError(f"need at least one operation, got {ops}")
    placements = tuple(placements or ALL_PLACEMENTS)
    triggers = tuple(triggers or ALL_TRIGGERS)
    mechanisms = tuple(mechanisms or ("flush",))
    for placement in placements:
        if placement not in ALL_PLACEMENTS:
            raise ConfigError(
                f"unknown placement {placement!r}; expected one of "
                f"{ALL_PLACEMENTS}"
            )
    for trigger in triggers:
        if trigger not in ALL_TRIGGERS:
            raise ConfigError(
                f"unknown trigger {trigger!r}; expected one of {ALL_TRIGGERS}"
            )
    for mechanism in mechanisms:
        if mechanism not in ALL_MECHANISMS:
            raise ConfigError(
                f"unknown mechanism {mechanism!r}; expected one of "
                f"{ALL_MECHANISMS}"
            )
    cadence = AUDIT_EPOCH if audit_every is None else audit_every
    if cadence < 0:
        raise ConfigError(f"audit cadence cannot be negative, got {cadence}")

    report = FuzzReport(seed=seed)
    for placement in placements:
        for trigger in triggers:
            for mechanism in mechanisms:
                rng_key = f"{seed}/{placement}/{trigger}"
                if mechanism != "flush":
                    rng_key += f"/{mechanism}"
                cell_rng = random.Random(rng_key)
                scenario = generate_scenario(cell_rng, placement, trigger, seed)
                stream = generate_ops(cell_rng, scenario, ops, faults=faults)
                # Drawn *after* the stream so established fixed-seed streams
                # stay stable. Telemetry-free cells are where the columnar
                # path runs its vector kernels instead of falling back.
                if cell_rng.random() < 0.5:
                    scenario = dataclasses.replace(scenario, telemetry=False)
                if mechanism != "flush":
                    scenario = dataclasses.replace(
                        scenario, mechanism=mechanism
                    )
                report.cells.append((placement, trigger, mechanism))
                report.operations += len(stream)
                report.audits += len(stream) // cadence if cadence else 0
                if log is not None:
                    log(
                        f"fuzz {placement}/{trigger}/{mechanism}: "
                        f"{len(stream)} ops, "
                        f"audit every {cadence or 'never'}"
                    )
                result: OracleReport = run_oracle(
                    scenario, stream, audit_every=cadence, paths=paths
                )
                if result.ok:
                    continue
                minimal = stream
                if shrink:
                    if log is not None:
                        log(
                            f"fuzz {placement}/{trigger}/{mechanism}: FAILED "
                            f"({len(result.divergences)} divergence(s)); "
                            f"shrinking..."
                        )
                    minimal = shrink_ops(scenario, list(stream), cadence, paths)
                    result = run_oracle(
                        scenario, minimal, audit_every=cadence, paths=paths
                    )
                report.failures.append(
                    FuzzFailure(
                        scenario=scenario,
                        ops=tuple(minimal),
                        divergences=tuple(result.divergences)
                        or ("failure vanished while shrinking (flaky repro)",),
                        original_ops=len(stream),
                    )
                )
    return report
