"""Full-state invariant auditor for the cache simulators.

Every redundant view the simulator maintains for speed is a conservation
law this module checks. The invariants are named, so a failure pinpoints
*which* bookkeeping drifted, and the mutation self-tests
(``tests/test_audit.py``) prove each corruption class is detected by the
invariant that owns it:

========================  ====================================================
slug                      law
========================  ====================================================
``presence-map``          presence map ≡ union of molecule ``lines`` (both
                          directions: every mapped block is resident in its
                          molecule, every resident line is mapped back)
``probe-equivalence``     ``lookup(b) is lookup_by_probe(b)`` on a sample of
                          resident and absent blocks
``replacement-view``      rows are non-empty and no molecule appears twice
``tile-index``            ``molecules_by_tile`` / ``_molecule_count`` match
                          the replacement view (absorbs the old
                          ``Resizer.check_consistency``)
``row-misses``            ``len(row_misses) == len(rows)`` and entries >= 0
``asid-gating``           every region molecule is owned by the region's ASID
                          (exclusive) or carries the shared bit (shared)
``free-list``             tile free lists are disjoint from all regions, free
                          molecules hold no lines, configured molecules
                          belong to exactly one region
``shared-bookkeeping``    ``tile.shared_count`` matches the shared-bit
                          molecules, which all live in the tile's shared
                          region
``fault-retirement``      retired molecules hold no lines, belong to no
                          region, are unconfigured, and
                          ``tile.failed_count`` / ``molecules_retired``
                          match the failed molecules
``region-counters``       window counters never exceed cumulative ones
``placement-recency``     LRU-Direct touch maps only reference resident
                          blocks (so they cannot grow without bound)
``stats-conservation``    hits + misses == accesses, totals == Σ per-ASID,
                          ``lines_fetched`` == Σ region misses × line
                          multiplier, ``writebacks_to_memory`` == dirty
                          evictions + withdrawal flushes, cache totals == Σ
                          region totals
``set-structure``         (set-associative) set sizes <= associativity, every
                          line is keyed and indexed consistently
========================  ====================================================

Cross-family stats checks (cache stats vs per-region counters) are only
valid when the two were accumulated over the same interval; an external
``stats.reset()`` (the warm-up boundary in ``run_trace``) clears one side
but not the other. ``counters=None`` (the default) detects that case and
skips just those checks; ``counters=True`` forces them (fuzzing, fresh
caches); ``counters=False`` always skips them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import islice

from repro.common.errors import ConfigError, SimulationError

#: Environment variable carrying the audit cadence to drivers (including
#: campaign worker processes, which inherit it): accesses between audits,
#: 0/empty = disabled.
AUDIT_ENV = "REPRO_AUDIT"

#: Cadence used by ``--audit`` when no value is given.
DEFAULT_CADENCE = 100_000

#: Blocks sampled per region for the explicit probe-equivalence check.
_PROBE_SAMPLE = 32


@dataclass(frozen=True, slots=True)
class AuditViolation:
    """One broken invariant: the law's slug and a human-readable account."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


@dataclass(slots=True)
class AuditOutcome:
    """Result of one full-state audit."""

    accesses: int
    checks: int
    violations: list[AuditViolation]

    @property
    def ok(self) -> bool:
        return not self.violations


class AuditError(SimulationError):
    """Raised when :func:`assert_invariants` finds violations.

    Subclasses :class:`~repro.common.errors.SimulationError` so existing
    callers of ``Resizer.check_consistency`` (which now delegates here)
    keep working unchanged.
    """

    def __init__(self, outcome: AuditOutcome) -> None:
        self.outcome = outcome
        shown = "; ".join(str(v) for v in outcome.violations[:6])
        more = len(outcome.violations) - 6
        if more > 0:
            shown += f"; ... {more} more"
        super().__init__(
            f"{len(outcome.violations)} invariant violation(s) at "
            f"{outcome.accesses} accesses: {shown}"
        )


class _Audit:
    """Violation accumulator shared by the per-cache auditors."""

    __slots__ = ("checks", "violations")

    def __init__(self) -> None:
        self.checks = 0
        self.violations: list[AuditViolation] = []

    def check(self, slug: str, ok: bool, message: str) -> None:
        self.checks += 1
        if not ok:
            self.violations.append(AuditViolation(slug, message))

    def fail(self, slug: str, message: str) -> None:
        self.violations.append(AuditViolation(slug, message))


# ------------------------------------------------------------- molecular


def _unique_regions(cache) -> list[tuple[object, list[int]]]:
    """(region, serving asids) per distinct region object.

    Shared regions appear once here even though several ASIDs (and the
    ``_shared_regions`` table) alias them; a shared region configured but
    not yet serving any application is included with no ASIDs.
    """
    seen: dict[int, tuple[object, list[int]]] = {}
    for asid, region in cache.regions.items():
        entry = seen.get(id(region))
        if entry is None:
            seen[id(region)] = (region, [asid])
        else:
            entry[1].append(asid)
    for region in cache._shared_regions.values():
        seen.setdefault(id(region), (region, []))
    return list(seen.values())


def _audit_region(audit: _Audit, region, owner: dict[int, object],
                  shared_asid: int) -> None:
    label = f"region asid={region.asid}"

    # Replacement view: non-empty rows, no duplicate molecules.
    in_rows: dict[int, object] = {}
    by_tile: dict[int, int] = {}
    view_ok = True
    for row_index, row in enumerate(region.rows):
        if not row:
            audit.fail("replacement-view", f"{label}: row {row_index} is empty")
            view_ok = False
        for molecule in row:
            if id(molecule) in in_rows:
                audit.fail(
                    "replacement-view",
                    f"{label}: molecule {molecule.molecule_id} appears "
                    f"twice in the replacement view",
                )
                view_ok = False
            in_rows[id(molecule)] = molecule
            by_tile[molecule.tile_id] = by_tile.get(molecule.tile_id, 0) + 1
    audit.check("replacement-view", view_ok, f"{label}: replacement view")

    # Tile index and molecule count agree with the replacement view.
    audit.check(
        "tile-index",
        region.molecules_by_tile == by_tile,
        f"{label}: molecules_by_tile {dict(region.molecules_by_tile)} != "
        f"replacement view {by_tile}",
    )
    audit.check(
        "tile-index",
        region.molecule_count == len(in_rows),
        f"{label}: molecule_count {region.molecule_count} != "
        f"{len(in_rows)} molecules in view",
    )
    if region._tile_order is not None:
        tiles = sorted(by_tile)
        if region.home_tile_id in by_tile:
            tiles.remove(region.home_tile_id)
            tiles.insert(0, region.home_tile_id)
        audit.check(
            "tile-index",
            region._tile_order == tiles,
            f"{label}: cached tile order {region._tile_order} != {tiles}",
        )

    # Row-miss counters parallel the rows.
    audit.check(
        "row-misses",
        len(region.row_misses) == len(region.rows)
        and all(count >= 0 for count in region.row_misses),
        f"{label}: row_misses length {len(region.row_misses)} != "
        f"{len(region.rows)} rows (or negative entry)",
    )

    # ASID gating: exclusive molecules match the region's ASID; shared
    # regions hold shared-bit molecules configured for the sentinel.
    for molecule in in_rows.values():
        if region.asid == shared_asid:
            audit.check(
                "asid-gating",
                molecule.shared and molecule.asid == shared_asid,
                f"{label}: molecule {molecule.molecule_id} "
                f"(asid={molecule.asid}, shared={molecule.shared}) in a "
                f"shared region",
            )
        else:
            audit.check(
                "asid-gating",
                molecule.asid == region.asid and not molecule.shared,
                f"{label}: molecule {molecule.molecule_id} "
                f"(asid={molecule.asid}, shared={molecule.shared}) does "
                f"not match the region ASID",
            )
        previous = owner.setdefault(id(molecule), region)
        if previous is not region:
            audit.fail(
                "free-list",
                f"molecule {molecule.molecule_id} belongs to both region "
                f"asid={previous.asid} and {label}",
            )

    # Presence map ≡ union of molecule lines, both directions.
    presence_ok = True
    for block, molecule in region.presence.items():
        if id(molecule) not in in_rows:
            audit.fail(
                "presence-map",
                f"{label}: presence maps block {block} to molecule "
                f"{molecule.molecule_id} outside the region",
            )
            presence_ok = False
        elif not molecule.probe(block):
            audit.fail(
                "presence-map",
                f"{label}: presence maps block {block} to molecule "
                f"{molecule.molecule_id} which does not hold it",
            )
            presence_ok = False
    for molecule in in_rows.values():
        for block in molecule.resident_blocks():
            if region.presence.get(block) is not molecule:
                audit.fail(
                    "presence-map",
                    f"{label}: block {block} resident in molecule "
                    f"{molecule.molecule_id} is missing from the presence "
                    f"map (or mapped elsewhere)",
                )
                presence_ok = False
    audit.check("presence-map", presence_ok, f"{label}: presence map")

    # Explicit lookup ≡ lookup_by_probe on a bounded sample (the full
    # equivalence already follows from the presence-map check; this pins
    # the public API surface itself, absent blocks included).
    sample = list(islice(region.presence, _PROBE_SAMPLE))
    absent = max(region.presence, default=0) + 1
    sample.append(absent)
    probe_ok = True
    for block in sample:
        if region.lookup(block) is not region.lookup_by_probe(block):
            audit.fail(
                "probe-equivalence",
                f"{label}: lookup({block}) disagrees with lookup_by_probe",
            )
            probe_ok = False
    audit.check("probe-equivalence", probe_ok, f"{label}: probe equivalence")

    # Window counters are a sub-interval of the cumulative ones.
    audit.check(
        "region-counters",
        0 <= region.window_accesses <= region.total_accesses
        and 0 <= region.window_misses <= region.total_misses
        and region.window_misses <= region.window_accesses
        and region.total_misses <= region.total_accesses,
        f"{label}: window counters ({region.window_accesses}/"
        f"{region.window_misses}) exceed totals ({region.total_accesses}/"
        f"{region.total_misses})",
    )


def _audit_tiles(audit: _Audit, cache, owner: dict[int, object]) -> None:
    from repro.molecular.molecule import FREE

    for tile in cache._tiles.values():
        shared_seen = 0
        failed_seen = 0
        shared_region = cache._shared_regions.get(tile.tile_id)
        for molecule in tile.molecules:
            owned = owner.get(id(molecule))
            if molecule.failed:
                # Retired molecules are out of service: no region may hold
                # them, they hold no data, and they are unconfigured (so
                # the probe-equivalence and replacement-view checks above
                # never see them — they appear in no region's views).
                failed_seen += 1
                if owned is not None:
                    audit.fail(
                        "fault-retirement",
                        f"tile {tile.tile_id}: retired molecule "
                        f"{molecule.molecule_id} is attached to region "
                        f"asid={owned.asid}",
                    )
                if molecule.occupancy():
                    audit.fail(
                        "fault-retirement",
                        f"tile {tile.tile_id}: retired molecule "
                        f"{molecule.molecule_id} still holds "
                        f"{molecule.occupancy()} line(s)",
                    )
                if molecule.asid != FREE or molecule.shared:
                    audit.fail(
                        "fault-retirement",
                        f"tile {tile.tile_id}: retired molecule "
                        f"{molecule.molecule_id} is still configured "
                        f"(asid={molecule.asid}, shared={molecule.shared})",
                    )
                continue
            if molecule.is_free:
                if owned is not None:
                    audit.fail(
                        "free-list",
                        f"tile {tile.tile_id}: free molecule "
                        f"{molecule.molecule_id} is attached to region "
                        f"asid={owned.asid}",
                    )
                if molecule.occupancy():
                    audit.fail(
                        "free-list",
                        f"tile {tile.tile_id}: free molecule "
                        f"{molecule.molecule_id} still holds "
                        f"{molecule.occupancy()} line(s)",
                    )
            elif owned is None:
                audit.fail(
                    "free-list",
                    f"tile {tile.tile_id}: configured molecule "
                    f"{molecule.molecule_id} (asid={molecule.asid}) is "
                    f"attached to no region",
                )
            if molecule.shared:
                shared_seen += 1
                if shared_region is None or owned is not shared_region:
                    audit.fail(
                        "shared-bookkeeping",
                        f"tile {tile.tile_id}: shared molecule "
                        f"{molecule.molecule_id} is not in the tile's "
                        f"shared region",
                    )
        audit.check("free-list", True, f"tile {tile.tile_id}: free list")
        audit.check(
            "shared-bookkeeping",
            tile.shared_count == shared_seen,
            f"tile {tile.tile_id}: shared_count {tile.shared_count} != "
            f"{shared_seen} shared molecules",
        )
        audit.check(
            "fault-retirement",
            tile.failed_count == failed_seen,
            f"tile {tile.tile_id}: failed_count {tile.failed_count} != "
            f"{failed_seen} failed molecules",
        )


def _audit_placement(audit: _Audit, cache,
                     regions: list[tuple[object, list[int]]]) -> None:
    from repro.molecular.placement import LRUDirectPlacement

    placement = cache.placement
    if not isinstance(placement, LRUDirectPlacement):
        return
    resident_by_asid: dict[int, set[int]] = {}
    for region, _asids in regions:
        resident_by_asid.setdefault(region.asid, set()).update(region.presence)
    for asid, touches in placement._touch.items():
        resident = resident_by_asid.get(asid, set())
        stale = [block for block in touches if block not in resident]
        audit.check(
            "placement-recency",
            not stale,
            f"LRU-Direct touch map for asid={asid} references "
            f"{len(stale)} non-resident block(s) (e.g. {stale[:4]}) — "
            f"the map is leaking across evictions",
        )


def _audit_molecular_stats(
    audit: _Audit,
    cache,
    regions: list[tuple[object, list[int]]],
    counters: bool | None,
) -> None:
    stats = cache.stats
    total = stats.total

    def sum_counters(table):
        acc = hits = ev = wb = 0
        for c in table.values():
            acc += c.accesses
            hits += c.hits
            ev += c.evictions
            wb += c.writebacks
        return acc, hits, ev, wb

    for name, tot, table in (
        ("total", total, stats.per_asid),
        ("window", stats.window_total, stats.window_per_asid),
    ):
        acc, hits, ev, wb = sum_counters(table)
        audit.check(
            "stats-conservation",
            (tot.accesses, tot.hits, tot.evictions, tot.writebacks)
            == (acc, hits, ev, wb),
            f"stats {name} ({tot.accesses}/{tot.hits}/{tot.evictions}/"
            f"{tot.writebacks}) != per-ASID sum ({acc}/{hits}/{ev}/{wb})",
        )
    audit.check(
        "stats-conservation",
        all(
            0 <= c.hits <= c.accesses
            for c in (total, stats.window_total, *stats.per_asid.values())
        ),
        "a counter has more hits than accesses",
    )

    # Region totals survive external stats resets (the warm-up boundary),
    # so these two are always valid.
    region_misses = sum(r.total_misses for r, _ in regions)
    expected_fetches = sum(
        r.total_misses * r.line_multiplier for r, _ in regions
    )
    audit.check(
        "stats-conservation",
        stats.lines_fetched == expected_fetches,
        f"lines_fetched {stats.lines_fetched} != Σ region misses × line "
        f"multiplier {expected_fetches}",
    )
    audit.check(
        "region-counters",
        all(r.molecule_integral >= 0 for r, _ in regions),
        "a region's molecule integral went negative",
    )

    # Retirement accounting: the cumulative retired counter is never
    # reset, and neither is a failed flag, so this holds across warm-up
    # boundaries.
    failed_total = sum(t.failed_count for t in cache._tiles.values())
    audit.check(
        "fault-retirement",
        stats.molecules_retired == failed_total,
        f"molecules_retired {stats.molecules_retired} != {failed_total} "
        f"failed molecules across tiles",
    )
    audit.check(
        "fault-retirement",
        all(r.pending_repair >= 0 for r, _ in regions),
        "a region's pending_repair went negative",
    )

    # Cross-family conservation needs cache stats and region counters to
    # cover the same interval.
    region_accesses = sum(r.total_accesses for r, _ in regions)
    if counters is None:
        counters = total.accesses == region_accesses
    if not counters:
        return
    audit.check(
        "stats-conservation",
        total.accesses == region_accesses
        and total.misses == region_misses,
        f"cache totals ({total.accesses} accesses, {total.misses} misses) "
        f"!= region totals ({region_accesses}, {region_misses})",
    )
    audit.check(
        "stats-conservation",
        stats.writebacks_to_memory
        == total.writebacks + stats.flush_writebacks,
        f"writebacks_to_memory {stats.writebacks_to_memory} != dirty "
        f"evictions {total.writebacks} + withdrawal flushes "
        f"{stats.flush_writebacks}",
    )
    for region, asids in regions:
        if not asids:
            continue
        acc = sum(
            stats.per_asid[a].accesses for a in asids if a in stats.per_asid
        )
        hits = sum(
            stats.per_asid[a].hits for a in asids if a in stats.per_asid
        )
        audit.check(
            "stats-conservation",
            region.total_accesses == acc
            and region.total_misses == acc - hits,
            f"region asid={region.asid}: totals "
            f"({region.total_accesses}/{region.total_misses}) != per-ASID "
            f"stats over {asids} ({acc}/{acc - hits})",
        )


def _audit_molecular(cache, counters: bool | None) -> AuditOutcome:
    from repro.molecular.cache import SHARED_ASID

    audit = _Audit()
    regions = _unique_regions(cache)
    owner: dict[int, object] = {}
    for region, _asids in regions:
        _audit_region(audit, region, owner, SHARED_ASID)
    _audit_tiles(audit, cache, owner)
    _audit_placement(audit, cache, regions)
    _audit_molecular_stats(audit, cache, regions, counters)
    return AuditOutcome(
        accesses=cache.stats.total.accesses,
        checks=audit.checks,
        violations=audit.violations,
    )


# -------------------------------------------------------- set-associative


def _audit_setassoc(cache, counters: bool | None) -> AuditOutcome:
    audit = _Audit()
    stats = cache.stats
    mask = cache.num_sets - 1
    resident = 0
    structure_ok = True
    for index, cache_set in enumerate(cache.iter_sets()):
        if len(cache_set) > cache.associativity:
            audit.fail(
                "set-structure",
                f"set {index} holds {len(cache_set)} lines > "
                f"{cache.associativity}-way",
            )
            structure_ok = False
        for block, line in cache_set.items():
            resident += 1
            if line.block != block:
                audit.fail(
                    "set-structure",
                    f"set {index}: key {block} != line block {line.block}",
                )
                structure_ok = False
            if block & mask != index:
                audit.fail(
                    "set-structure",
                    f"block {block} indexed into set {index}, expected "
                    f"{block & mask}",
                )
                structure_ok = False
    audit.check("set-structure", structure_ok, "set structure")
    audit.check(
        "set-structure",
        resident <= cache.num_sets * cache.associativity,
        f"{resident} resident lines exceed capacity",
    )

    def sum_counters(table):
        return tuple(
            sum(getattr(c, f) for c in table.values())
            for f in ("accesses", "hits", "evictions", "writebacks")
        )

    for name, tot, table in (
        ("total", stats.total, stats.per_asid),
        ("window", stats.window_total, stats.window_per_asid),
    ):
        audit.check(
            "stats-conservation",
            (tot.accesses, tot.hits, tot.evictions, tot.writebacks)
            == sum_counters(table),
            f"stats {name} != per-ASID sum",
        )
    audit.check(
        "stats-conservation",
        stats.total.hits <= stats.total.accesses
        and stats.total.writebacks <= stats.total.evictions
        and stats.total.evictions <= stats.total.misses,
        f"totals out of order: hits={stats.total.hits} "
        f"accesses={stats.total.accesses} evictions={stats.total.evictions} "
        f"writebacks={stats.total.writebacks} misses={stats.total.misses}",
    )
    if counters:
        # Only valid when stats cover the cache's whole lifetime (no
        # warm-up reset): every resident line was filled by some miss.
        audit.check(
            "stats-conservation",
            resident <= stats.total.misses,
            f"{resident} resident lines but only {stats.total.misses} "
            f"misses ever filled a line",
        )
    return AuditOutcome(
        accesses=stats.total.accesses,
        checks=audit.checks,
        violations=audit.violations,
    )


# --------------------------------------------------------------- public


def audit_cache(cache, counters: bool | None = None) -> AuditOutcome:
    """Run every applicable invariant; returns the outcome (never raises).

    ``counters`` controls the cross-family stats conservation checks:
    ``None`` (default) runs them only when cache stats and region
    counters demonstrably cover the same interval (no external reset in
    between); ``True`` forces them; ``False`` skips them.
    """
    if hasattr(cache, "regions") and hasattr(cache, "clusters"):
        return _audit_molecular(cache, counters)
    if hasattr(cache, "iter_sets"):
        return _audit_setassoc(cache, counters)
    raise ConfigError(
        f"cannot audit a {type(cache).__name__}: expected a molecular or "
        f"set-associative cache"
    )


def assert_invariants(cache, counters: bool | None = None) -> AuditOutcome:
    """:func:`audit_cache`, raising :class:`AuditError` on any violation."""
    outcome = audit_cache(cache, counters)
    if not outcome.ok:
        raise AuditError(outcome)
    return outcome


def audit_and_emit(cache, counters: bool | None = None) -> AuditOutcome:
    """Audit, publish an ``AuditReport`` telemetry event, then raise on
    violations (drivers call this at their audit cadence)."""
    outcome = audit_cache(cache, counters)
    bus = getattr(cache, "telemetry", None)
    if bus is not None:
        from repro.telemetry.events import AuditReport

        bus.emit(
            AuditReport(
                accesses=outcome.accesses,
                checks=outcome.checks,
                ok=outcome.ok,
                violations=[str(v) for v in outcome.violations],
            )
        )
    if not outcome.ok:
        raise AuditError(outcome)
    return outcome


def resolve_cadence(audit_every: int | None) -> int:
    """Normalise a driver's audit cadence; ``None`` consults ``$REPRO_AUDIT``.

    Returns accesses-between-audits, 0 meaning disabled. The environment
    fallback is what lets ``repro sweep --audit`` reach campaign worker
    processes without widening every job payload.
    """
    if audit_every is not None:
        if audit_every < 0:
            raise ConfigError(
                f"audit cadence cannot be negative, got {audit_every}"
            )
        return audit_every
    raw = os.environ.get(AUDIT_ENV, "").strip()
    if not raw:
        return 0
    try:
        cadence = int(raw)
    except ValueError:
        raise ConfigError(
            f"{AUDIT_ENV} must be an integer cadence, got {raw!r}"
        ) from None
    return max(cadence, 0)
