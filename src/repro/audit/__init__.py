"""Correctness audit subsystem: invariants, differential oracle, fuzzing.

The simulator keeps several views of the same state (presence maps vs
molecule line arrays, replacement-view rows vs tile indices, cache stats
vs per-region counters) and three access paths that must agree
byte-for-byte. This package is the standing harness that checks all of
it:

* :mod:`repro.audit.invariants` — a full-state auditor enumerating every
  conservation law a :class:`~repro.molecular.cache.MolecularCache` (or
  :class:`~repro.caches.setassoc.SetAssociativeCache`) implies;
* :mod:`repro.audit.oracle` — a differential oracle replaying one
  reference stream through the scalar, batched, session and brute-force
  probe paths on identically configured caches and diffing every
  observable;
* :mod:`repro.audit.fuzz` — a seeded randomized op-stream generator
  (behind ``repro fuzz``) that runs the auditor at epoch boundaries and
  shrinks failing op sequences to a minimal repro.
"""

from repro.audit.invariants import (
    AUDIT_ENV,
    DEFAULT_CADENCE,
    AuditError,
    AuditOutcome,
    AuditViolation,
    assert_invariants,
    audit_and_emit,
    audit_cache,
    resolve_cadence,
)

__all__ = [
    "AUDIT_ENV",
    "DEFAULT_CADENCE",
    "AuditError",
    "AuditOutcome",
    "AuditViolation",
    "assert_invariants",
    "audit_and_emit",
    "audit_cache",
    "resolve_cadence",
]
