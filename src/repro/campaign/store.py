"""The on-disk result store: content-hashed cache + campaign manifest.

Layout of a store directory::

    <root>/
        manifest.json           # what the campaign is (specs in order)
        results/<hash>.json     # one completed job, keyed by content hash
        leases/<hash>.json      # distributed drain only (campaign/lease.py)
        quarantine/<hash>.json  # poison jobs parked by the lease protocol
        events/worker-N.jsonl   # per-worker telemetry (sweep --distributed)

Every write is atomic (tmp file in the same directory + ``os.replace``)
so a campaign killed mid-write never leaves a truncated JSON file — on
restart the job simply re-runs. Because results are keyed by the spec's
content hash, the cache is valid across campaigns: any job whose hash is
present is complete, regardless of which run produced it. That is what
makes ``--resume`` skip-completed semantics safe, and a re-run with
identical specs a pure cache hit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable

from repro.common.errors import ConfigError
from repro.common.io import atomic_write_json as _atomic_write_json
from repro.campaign.spec import JobSpec

#: Manifest schema version, bumped on incompatible layout changes.
MANIFEST_VERSION = 1


class ResultStore:
    """Content-addressed JSON results plus a descriptive manifest."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        try:
            self.results_dir.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ConfigError(
                f"cannot create campaign store at {self.root}: {error}"
            ) from None

    # --------------------------------------------------------------- jobs

    def _result_path(self, job_hash: str) -> Path:
        return self.results_dir / f"{job_hash}.json"

    def has(self, job_hash: str) -> bool:
        return self._result_path(job_hash).exists()

    def save(self, spec: JobSpec, result: Any, elapsed: float, attempts: int) -> str:
        """Persist one completed job atomically; returns its hash."""
        job_hash = spec.content_hash()
        _atomic_write_json(
            self._result_path(job_hash),
            {
                "spec": spec.as_payload(),
                "result": result,
                "elapsed": elapsed,
                "attempts": attempts,
            },
        )
        return job_hash

    def load(self, job_hash: str) -> dict[str, Any]:
        """The full saved record (``spec`` / ``result`` / ``elapsed``)."""
        path = self._result_path(job_hash)
        try:
            with path.open("r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            raise ConfigError(f"no campaign result {job_hash} in {self.root}") from None
        except json.JSONDecodeError as error:
            # Honour the store's crash-safety promise: a result that does
            # not parse (bit rot, a non-atomic writer, a torn NFS page)
            # is moved aside — not left to wedge every future resume —
            # and the job simply counts as incomplete again.
            corrupt = path.with_name(path.name + ".corrupt")
            try:
                os.replace(path, corrupt)
            except OSError:
                pass  # a concurrent reader already moved (or removed) it
            raise ConfigError(
                f"{path}: corrupt campaign result ({error}); quarantined "
                f"to {corrupt.name}, the job will re-run"
            ) from None

    def load_result(self, job_hash: str) -> Any:
        return self.load(job_hash)["result"]

    def completed(self, hashes: Iterable[str]) -> set[str]:
        """The subset of ``hashes`` that already have a stored result.

        One ``scandir`` of ``results/`` intersected with the request,
        not one ``stat`` per hash: at 1000+ jobs over a network
        filesystem the per-file round-trips dominate, and distributed
        workers call this every drain pass. (``*.json.corrupt``
        quarantine files fail the suffix test, so a corrupt result
        correctly counts as incomplete.)
        """
        try:
            with os.scandir(self.results_dir) as entries:
                present = {
                    entry.name[: -len(".json")]
                    for entry in entries
                    if entry.name.endswith(".json")
                }
        except FileNotFoundError:
            return set()
        return present.intersection(hashes)

    # ----------------------------------------------------------- manifest

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def write_manifest(
        self, campaign: str, specs: list[JobSpec], options: dict[str, Any]
    ) -> None:
        """Describe the campaign: its target, options and ordered specs."""
        _atomic_write_json(
            self.manifest_path,
            {
                "version": MANIFEST_VERSION,
                "campaign": campaign,
                "options": options,
                "jobs": [
                    {"hash": spec.content_hash(), "spec": spec.as_payload()}
                    for spec in specs
                ],
            },
        )

    def read_manifest(self) -> dict[str, Any] | None:
        """The stored manifest, or None when the store is fresh.

        A manifest written by an incompatible store layout (a different
        ``MANIFEST_VERSION``) is rejected outright: silently mixing
        layouts would let a resumed or distributed campaign trust
        results keyed under different semantics.
        """
        try:
            with self.manifest_path.open("r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as error:
            raise ConfigError(
                f"{self.manifest_path}: corrupt campaign manifest ({error})"
            ) from None
        version = manifest.get("version")
        if version != MANIFEST_VERSION:
            raise ConfigError(
                f"{self.manifest_path}: manifest version {version!r} is "
                f"incompatible with this store layout (expected "
                f"{MANIFEST_VERSION}); point the campaign at a fresh "
                "--out directory"
            )
        return manifest
