"""Campaign execution: a worker pool over deterministic job specs.

The runner takes an ordered list of :class:`~repro.campaign.spec.JobSpec`
and produces one result payload per spec, in spec order, persisting each
to the :class:`~repro.campaign.store.ResultStore` the moment it
completes. Execution modes:

* ``jobs > 1`` — a ``ProcessPoolExecutor`` (capped at the core count)
  with a sliding submission window; jobs travel in *chunks* of several
  specs per submission so short jobs amortise pickling/IPC and worker
  start-up across warm workers, and the per-chunk timeout scales with
  chunk length (``timeout`` stays a per-job bound);
* ``jobs <= 1`` — in-process serial execution, no pool;
* **fallback** — if the pool cannot be created or keeps breaking (some
  sandboxes forbid the semaphores ``multiprocessing`` needs), the
  remaining jobs run serially in-process and the campaign still
  completes (``CampaignResult.mode == "serial-fallback"``).

Failure policy: a job that raises is retried up to ``retries`` times
with exponential backoff; :class:`~repro.common.errors.ConfigError` is
never retried (a bad parameter is deterministic). A job exceeding
``timeout`` seconds tears the pool down (a stuck worker cannot be
cancelled individually), re-queues everything unfinished, and counts as
one failed attempt for the offender. Retries exhausted raise
:class:`~repro.common.errors.CampaignError`; everything already
persisted survives for a ``--resume``.

Determinism: each job re-derives its inputs from its spec (traces are
regenerated from the seed inside the worker), so a parallel campaign's
reassembled results are byte-identical to a serial run — the *order* of
completion varies, the *content* cannot.

Fault injection: ``CampaignRunner(fault_hook=...)`` calls the hook with
the number of jobs persisted so far after each save; a hook that raises
simulates a mid-campaign crash *after* durable progress, which is
exactly what the resume tests need.

Chaos testing: ``CampaignRunner(chaos=ChaosPolicy(...))`` adversarially
exercises the pool's failure handling with *deterministic* worker
crashes, hangs and corrupted result payloads (see
:mod:`repro.faults.chaos`). Each job is sabotaged at most once, and only
on the pool path — serial and fallback execution stay untouched — so a
chaos campaign always converges to the same results a clean run
produces. With ``chaos=None`` the pool submissions are byte-identical to
a runner built without the feature.

Interruption: SIGINT/SIGTERM (and any ``KeyboardInterrupt``/
``SystemExit``) abort the dispatch loop, but every job persisted before
the signal survives in the store — a ``--resume`` completes just the
rest. The runner emits a ``CampaignInterrupted`` telemetry event and
re-raises.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.campaign.spec import JobSpec
from repro.campaign.store import ResultStore
from repro.common.clock import tick
from repro.common.errors import CampaignError, ConfigError
from repro.faults.chaos import ChaosPolicy
from repro.prof.spans import DISPATCHER_TID, SpanRecorder
from repro.telemetry.events import (
    CampaignInterrupted,
    ChaosInjected,
    JobCompleted,
    JobRetried,
    JobStarted,
    JobSubmitted,
)

try:  # pragma: no cover - always present on CPython
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = RuntimeError  # type: ignore[misc,assignment]

#: Seconds between completion polls in the pool dispatch loop.
_POLL_INTERVAL = 0.05
#: Cap on one backoff sleep, whatever the retry count.
_MAX_BACKOFF = 10.0


@contextmanager
def _scale_env(scale: float):
    """Pin ``REPRO_SCALE`` to the spec's captured factor for one job."""
    previous = os.environ.get("REPRO_SCALE")
    os.environ["REPRO_SCALE"] = repr(scale)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCALE", None)
        else:
            os.environ["REPRO_SCALE"] = previous


def execute_spec(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: run one job from its JSON payload.

    Top-level so it pickles across process boundaries; also used verbatim
    by the in-process serial path, which is what guarantees serial and
    parallel campaigns execute identical code.
    """
    from repro.campaign.registry import execute_job

    spec = JobSpec.from_payload(payload)
    # One clock (repro.common.clock.tick) for elapsed, deadlines and span
    # timestamps; monotonic is system-wide, so these worker-side marks
    # are directly comparable with the dispatcher's submission times.
    started = tick()
    with _scale_env(spec.scale):
        result = execute_job(spec)
    ended = tick()
    return {
        "result": result,
        "elapsed": ended - started,
        "started": started,
        "ended": ended,
        "pid": os.getpid(),
    }


def execute_chunk(
    payloads: list[dict[str, Any]],
    directives: list[dict[str, Any] | None] | None = None,
) -> list[dict[str, Any]]:
    """Worker entry point: run several jobs in one pool submission.

    Short jobs are dominated by per-submission pickling/IPC and by cold
    worker start-up, so the pool dispatcher parcels them into chunks and
    each warm worker burns through a parcel at in-process speed. One
    outcome dict is returned per payload, in order; a failing job yields
    ``{"error": exception}`` instead of aborting its chunk-mates, and the
    dispatcher requeues it as a singleton so retry accounting stays per
    spec.

    ``directives`` carries chaos sabotage per payload (``None`` entries
    are benign): ``crash`` kills the worker process outright, ``hang``
    sleeps before executing (long enough to trip the dispatcher's
    timeout), and ``corrupt`` returns a malformed outcome in place of the
    job's result. The parameter is only ever passed by a chaos-enabled
    runner.
    """
    outcomes: list[dict[str, Any]] = []
    for position, payload in enumerate(payloads):
        directive = directives[position] if directives else None
        if directive is not None:
            action = directive.get("action")
            if action == "crash":
                os._exit(13)  # the pool sees BrokenProcessPool
            elif action == "hang":
                time.sleep(float(directive.get("seconds", 30.0)))
            elif action == "corrupt":
                # Missing "elapsed": fails the dispatcher's outcome-shape
                # validation, so the job is retried, never persisted.
                outcomes.append({"result": "\x00corrupt"})
                continue
        try:
            outcomes.append(execute_spec(payload))
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as error:
            outcomes.append({"error": error})
    return outcomes


@dataclass(slots=True)
class CampaignConfig:
    """Execution knobs for one campaign run."""

    jobs: int = 1
    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.5
    resume: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ConfigError("jobs must be >= 0 (0 = one worker per CPU)")
        if self.jobs == 0:
            self.jobs = os.cpu_count() or 1
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError("per-job timeout must be positive")
        if self.retries < 0:
            raise ConfigError("retries cannot be negative")


@dataclass(slots=True)
class CampaignResult:
    """Everything a completed campaign produced, reassembled in spec order."""

    campaign: str
    specs: list[JobSpec]
    payloads: dict[str, Any] = field(default_factory=dict)
    cached: set[str] = field(default_factory=set)
    executed: int = 0
    retried: int = 0
    elapsed: float = 0.0
    mode: str = "serial"

    def results_in_order(self) -> list[Any]:
        """One result payload per spec, in the original spec order."""
        return [self.payloads[spec.content_hash()] for spec in self.specs]

    def summary(self) -> str:
        return (
            f"campaign {self.campaign}: {len(self.specs)} jobs "
            f"({self.executed} run, {len(self.cached)} cached, "
            f"{self.retried} retried) in {self.elapsed:.1f}s [{self.mode}]"
        )


class CampaignRunner:
    """Executes job specs against a store, optionally in parallel."""

    def __init__(
        self,
        store: ResultStore,
        config: CampaignConfig | None = None,
        telemetry=None,
        fault_hook: Callable[[int], None] | None = None,
        chaos: ChaosPolicy | None = None,
        spans: SpanRecorder | None = None,
    ) -> None:
        self.store = store
        self.config = config or CampaignConfig()
        self.telemetry = telemetry
        self.fault_hook = fault_hook
        self.chaos = chaos
        #: Span recorder for queue/execute/store timelines, or None.
        #: Worker outcomes may lack timestamps (tests monkeypatch
        #: execute_spec with bare {"result", "elapsed"} dicts), so every
        #: span site reads them with ``.get`` and skips what is missing.
        self.spans = spans
        #: Job hashes already sabotaged — each job is chaos'd at most
        #: once, so retries make progress and the campaign converges.
        self._chaos_fired: set[str] = set()
        self._persisted = 0

    # ------------------------------------------------------------ plumbing

    def _emit(self, event) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(event)

    def _persist(
        self,
        result: CampaignResult,
        index: int,
        spec: JobSpec,
        outcome: dict[str, Any],
        attempt: int,
    ) -> None:
        save_started = tick()
        job_hash = self.store.save(
            spec, outcome["result"], outcome["elapsed"], attempt
        )
        if self.spans is not None:
            self.spans.span(
                f"store {spec.label()}", "store", save_started, tick(),
                args={"job": job_hash, "attempt": attempt},
            )
            self._record_job_span(spec, outcome, attempt)
        result.payloads[job_hash] = outcome["result"]
        result.executed += 1
        self._persisted += 1
        self._emit(
            JobCompleted(
                campaign=result.campaign,
                job=job_hash,
                index=index,
                attempts=attempt,
                elapsed=outcome["elapsed"],
                cached=False,
            )
        )
        if self.fault_hook is not None:
            self.fault_hook(self._persisted)

    def _record_job_span(
        self, spec: JobSpec, outcome: dict[str, Any], attempt: int
    ) -> None:
        """One ``job`` span on the executing worker's track, if timed."""
        started = outcome.get("started")
        ended = outcome.get("ended")
        if started is None or ended is None:
            return  # a monkeypatched/legacy worker without timestamps
        pid = outcome.get("pid", DISPATCHER_TID)
        self.spans.name_track(
            pid, "dispatcher" if pid == DISPATCHER_TID else f"worker {pid}"
        )
        self.spans.span(
            spec.label(), "job", started, ended, tid=pid,
            args={"attempt": attempt, "experiment": spec.experiment},
        )

    def _record_chunk_spans(
        self,
        chunk: list[tuple[int, JobSpec, int]],
        outcomes: list[dict[str, Any]],
        submitted: float,
    ) -> None:
        """``queue`` + ``chunk`` spans for one pool submission.

        Queue-wait runs from the dispatcher's submit mark to the first
        worker-side ``started`` timestamp — both on the shared monotonic
        clock, so the difference is meaningful across processes.
        """
        timed = [
            outcome
            for outcome in outcomes
            if isinstance(outcome, dict)
            and outcome.get("started") is not None
            and outcome.get("ended") is not None
        ]
        if not timed:
            return
        first_start = min(outcome["started"] for outcome in timed)
        last_end = max(outcome["ended"] for outcome in timed)
        pid = timed[0].get("pid", DISPATCHER_TID)
        self.spans.name_track(
            pid, "dispatcher" if pid == DISPATCHER_TID else f"worker {pid}"
        )
        self.spans.span(
            f"queue ({len(chunk)} job(s))", "queue", submitted, first_start,
            args={"jobs": len(chunk)},
        )
        self.spans.span(
            f"chunk ({len(chunk)} job(s))", "chunk", first_start, last_end,
            tid=pid, args={"jobs": len(chunk)},
        )

    def _chaos_directives(
        self, campaign: str, chunk: list[tuple[int, JobSpec, int]]
    ) -> list[dict[str, Any] | None] | None:
        """Sabotage orders for one chunk submission (None = chaos off).

        Deterministic in the policy seed and each job's content hash, and
        at most one strike per job across the whole campaign.
        """
        if self.chaos is None or not self.chaos.active:
            return None
        directives: list[dict[str, Any] | None] = []
        for _index, spec, _attempt in chunk:
            job_hash = spec.content_hash()
            directive = None
            if job_hash not in self._chaos_fired:
                directive = self.chaos.directive(job_hash)
                if directive is not None:
                    self._chaos_fired.add(job_hash)
                    self._emit(
                        ChaosInjected(
                            campaign=campaign,
                            job=job_hash,
                            action=directive["action"],
                        )
                    )
            directives.append(directive)
        return directives

    def _next_attempt(
        self, result: CampaignResult, index: int, spec: JobSpec,
        attempt: int, error: BaseException,
    ) -> int:
        """Account one failure; returns the next attempt number."""
        if isinstance(error, CampaignError):
            # The worker already classified this as deterministic (e.g.
            # an invariant-audit failure): retrying cannot help.
            raise error
        if isinstance(error, ConfigError):
            raise CampaignError(
                f"job {spec.label()} is misconfigured: {error}"
            ) from error
        if attempt > self.config.retries:
            raise CampaignError(
                f"job {spec.label()} failed after {attempt} attempt(s): {error}"
            ) from error
        result.retried += 1
        if self.spans is not None:
            self.spans.instant(
                "retry", "retry", tick(),
                args={
                    "job": spec.label(),
                    "attempt": attempt + 1,
                    "error": str(error) or type(error).__name__,
                },
            )
        self._emit(
            JobRetried(
                campaign=result.campaign,
                job=spec.content_hash(),
                index=index,
                attempt=attempt + 1,
                error=str(error) or type(error).__name__,
            )
        )
        delay = min(self.config.backoff * (2 ** (attempt - 1)), _MAX_BACKOFF)
        if delay > 0:
            time.sleep(delay)
        return attempt + 1

    # ----------------------------------------------------------------- run

    def run(
        self,
        specs: list[JobSpec],
        campaign: str = "campaign",
        options: dict[str, Any] | None = None,
    ) -> CampaignResult:
        """Execute ``specs``; every completed job lands in the store."""
        if not specs:
            raise ConfigError("a campaign needs at least one job spec")
        started = tick()
        result = CampaignResult(campaign=campaign, specs=list(specs))
        self._persisted = 0
        self.store.write_manifest(campaign, result.specs, options or {})

        hashes = [spec.content_hash() for spec in result.specs]
        cached = self.store.completed(hashes) if self.config.resume else set()
        pending: list[tuple[int, JobSpec]] = []
        seen: set[str] = set()
        for index, (spec, job_hash) in enumerate(zip(result.specs, hashes)):
            self._emit(
                JobSubmitted(
                    campaign=campaign,
                    job=job_hash,
                    experiment=spec.experiment,
                    index=index,
                )
            )
            record = None
            if job_hash in cached:
                try:
                    record = self.store.load(job_hash)
                except ConfigError as error:
                    # The stored result was corrupt: load() quarantined
                    # it to <hash>.json.corrupt, so the job is simply
                    # incomplete again — demote it to pending instead of
                    # failing the whole resume.
                    print(
                        f"campaign: {error}", file=sys.stderr
                    )
            if record is not None:
                result.payloads[job_hash] = record["result"]
                result.cached.add(job_hash)
                self._emit(
                    JobCompleted(
                        campaign=campaign,
                        job=job_hash,
                        index=index,
                        attempts=record.get("attempts", 1),
                        elapsed=record.get("elapsed", 0.0),
                        cached=True,
                    )
                )
            elif job_hash not in seen:  # identical specs run once
                seen.add(job_hash)
                pending.append((index, spec))

        # SIGTERM normally kills the process outright; translate it into
        # SystemExit for the duration of the dispatch so the interrupt
        # path below runs (installable only from the main thread).
        def raise_sigterm(_signum, _frame):
            raise SystemExit(143)

        previous_handler = None
        try:
            previous_handler = signal.signal(signal.SIGTERM, raise_sigterm)
        except ValueError:  # not the main thread
            pass
        try:
            if self.config.jobs > 1 and len(pending) > 1:
                result.mode = "pool"
                self._run_pool(result, pending)
            else:
                result.mode = "serial"
                self._run_serial(result, pending)
        except (KeyboardInterrupt, SystemExit) as error:
            # Everything persisted before the signal survives in the
            # store; announce how much is left and let the signal
            # propagate — a --resume completes just the rest.
            done = sum(1 for h in hashes if h in result.payloads)
            self._emit(
                CampaignInterrupted(
                    campaign=campaign,
                    signal=(
                        "SIGINT"
                        if isinstance(error, KeyboardInterrupt)
                        else "SIGTERM"
                    ),
                    completed=done,
                    pending=len(hashes) - done,
                )
            )
            raise
        finally:
            if previous_handler is not None:
                signal.signal(signal.SIGTERM, previous_handler)
            if self.spans is not None:
                self.spans.name_track(DISPATCHER_TID, "dispatcher")
                self.spans.span(
                    f"campaign {campaign}", "campaign", started, tick(),
                    args={
                        "jobs": len(result.specs),
                        "executed": result.executed,
                        "cached": len(result.cached),
                        "retried": result.retried,
                        "mode": result.mode,
                    },
                )
        result.elapsed = tick() - started
        return result

    # -------------------------------------------------------------- serial

    def _run_serial(
        self, result: CampaignResult, pending: list[tuple[int, JobSpec]]
    ) -> None:
        for index, spec in pending:
            attempt = 1
            while True:
                self._emit(
                    JobStarted(
                        campaign=result.campaign,
                        job=spec.content_hash(),
                        index=index,
                        attempt=attempt,
                    )
                )
                try:
                    outcome = execute_spec(spec.as_payload())
                except (KeyboardInterrupt, SystemExit, CampaignError):
                    raise
                except Exception as error:
                    attempt = self._next_attempt(
                        result, index, spec, attempt, error
                    )
                else:
                    self._persist(result, index, spec, outcome, attempt)
                    break

    # ---------------------------------------------------------------- pool

    def _run_pool(
        self, result: CampaignResult, pending: list[tuple[int, JobSpec]]
    ) -> None:
        # Never spawn more workers than cores: oversubscribed process
        # pools lose to serial execution outright on few-core machines
        # (start-up cost per worker, then contention).
        cores = os.cpu_count() or self.config.jobs
        workers = max(1, min(self.config.jobs, len(pending), cores))
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except Exception as error:  # pool unavailable: sandboxed env etc.
            print(
                f"campaign: worker pool unavailable ({error}); "
                "falling back to serial execution",
                file=sys.stderr,
            )
            result.mode = "serial-fallback"
            self._run_serial(result, pending)
            return

        # Parcel the jobs into chunks — about four per worker, so load
        # stays balanced while per-submission overhead amortises across
        # the chunk. Requeued work (retries, timeouts) travels as
        # singleton chunks to keep attribution per spec.
        chunk_size = max(1, len(pending) // (workers * 4))
        items = [(index, spec, 1) for index, spec in pending]
        queue: deque[list[tuple[int, JobSpec, int]]] = deque(
            items[start : start + chunk_size]
            for start in range(0, len(items), chunk_size)
        )
        active: dict[Any, tuple[list[tuple[int, JobSpec, int]], float]] = {}
        pool_breaks = 0

        def requeue_active() -> None:
            for other_chunk, _t in active.values():
                queue.append(other_chunk)
            active.clear()

        try:
            while queue or active:
                while queue and len(active) < workers:
                    chunk = queue.popleft()
                    payloads = [spec.as_payload() for _i, spec, _a in chunk]
                    directives = self._chaos_directives(
                        result.campaign, chunk
                    )
                    if directives is None:
                        # Chaos off: the submission is byte-identical to
                        # a runner without the feature.
                        future = pool.submit(execute_chunk, payloads)
                    else:
                        future = pool.submit(
                            execute_chunk, payloads, directives
                        )
                    active[future] = (chunk, tick())
                    for index, spec, attempt in chunk:
                        self._emit(
                            JobStarted(
                                campaign=result.campaign,
                                job=spec.content_hash(),
                                index=index,
                                attempt=attempt,
                            )
                        )
                done, _ = wait(
                    set(active), timeout=_POLL_INTERVAL,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    chunk, submitted = active.pop(future)
                    try:
                        outcomes = future.result()
                    except (BrokenProcessPool, OSError) as error:
                        # The pool died under us; every in-flight chunk
                        # is lost. Requeue them all, charge the first
                        # job of the surfacing chunk one attempt, and
                        # rebuild the pool.
                        pool_breaks += 1
                        if self.spans is not None:
                            self.spans.instant(
                                "pool-break", "pool", tick(),
                                args={
                                    "breaks": pool_breaks,
                                    "error": str(error)
                                    or type(error).__name__,
                                },
                            )
                        if pool_breaks > self.config.retries + 1:
                            print(
                                "campaign: worker pool keeps breaking; "
                                "falling back to serial execution",
                                file=sys.stderr,
                            )
                            queue.appendleft(chunk)
                            requeue_active()
                            pool.shutdown(wait=False, cancel_futures=True)
                            result.mode = "serial-fallback"
                            self._run_serial(result, [
                                (i, s)
                                for queued in queue
                                for i, s, _a in queued
                            ])
                            return
                        index, spec, attempt = chunk[0]
                        chunk[0] = (
                            index, spec,
                            self._next_attempt(
                                result, index, spec, attempt, error
                            ),
                        )
                        queue.appendleft(chunk)
                        requeue_active()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=workers)
                        broken = True
                        break
                    except Exception as error:
                        # The chunk call itself failed (e.g. an outcome
                        # that would not pickle); isolate its specs and
                        # charge the first one the attempt.
                        index, spec, attempt = chunk[0]
                        attempt = self._next_attempt(
                            result, index, spec, attempt, error
                        )
                        queue.append([(index, spec, attempt)])
                        for index, spec, attempt in chunk[1:]:
                            queue.append([(index, spec, attempt)])
                    else:
                        if (
                            not isinstance(outcomes, list)
                            or len(outcomes) != len(chunk)
                        ):
                            # A corrupted chunk return: requeue every job
                            # as a singleton, charging the first one.
                            error = RuntimeError(
                                "worker returned a malformed chunk: "
                                f"{type(outcomes).__name__} for "
                                f"{len(chunk)} job(s)"
                            )
                            index, spec, attempt = chunk[0]
                            attempt = self._next_attempt(
                                result, index, spec, attempt, error
                            )
                            queue.append([(index, spec, attempt)])
                            for index, spec, attempt in chunk[1:]:
                                queue.append([(index, spec, attempt)])
                            continue
                        if self.spans is not None:
                            self._record_chunk_spans(
                                chunk, outcomes, submitted
                            )
                        for (index, spec, attempt), outcome in zip(
                            chunk, outcomes
                        ):
                            if not isinstance(outcome, dict):
                                error = RuntimeError(
                                    "worker returned a malformed outcome: "
                                    f"{type(outcome).__name__}"
                                )
                            else:
                                error = outcome.get("error")
                                if error is None and (
                                    "result" not in outcome
                                    or "elapsed" not in outcome
                                ):
                                    error = RuntimeError(
                                        "worker returned a malformed "
                                        "outcome: missing result/elapsed"
                                    )
                            if error is not None:
                                attempt = self._next_attempt(
                                    result, index, spec, attempt, error
                                )
                                queue.append([(index, spec, attempt)])
                            else:
                                self._persist(
                                    result, index, spec, outcome, attempt
                                )
                if broken:
                    continue
                if self.config.timeout is not None and active:
                    # The budget scales with chunk length: ``timeout``
                    # stays a *per-job* bound, as in serial mode.
                    now = tick()
                    expired = [
                        future
                        for future, (queued, t0) in active.items()
                        if now - t0 > self.config.timeout * len(queued)
                    ]
                    if expired:
                        # A stuck worker cannot be cancelled
                        # individually: tear the pool down, requeue
                        # survivors unchanged and the expired chunk's
                        # jobs as singletons with one attempt charged —
                        # the true offender then times out alone on the
                        # next round.
                        for future in expired:
                            chunk, _t0 = active.pop(future)
                            if self.spans is not None:
                                self.spans.instant(
                                    "timeout", "timeout", now,
                                    args={
                                        "jobs": len(chunk),
                                        "budget_s": self.config.timeout
                                        * len(chunk),
                                    },
                                )
                            for index, spec, attempt in chunk:
                                attempt = self._next_attempt(
                                    result, index, spec, attempt,
                                    TimeoutError(
                                        f"exceeded "
                                        f"{self.config.timeout:.1f}s/job"
                                    ),
                                )
                                queue.append([(index, spec, attempt)])
                        requeue_active()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=workers)
        finally:
            # Normal completion has drained queue and active, so waiting
            # is instant and joins the worker/management threads before
            # interpreter exit (otherwise the atexit hook races their
            # pipe teardown and prints an ignored OSError). Abnormal
            # exits may leave stuck workers in flight: don't block.
            pool.shutdown(wait=not (queue or active), cancel_futures=True)
