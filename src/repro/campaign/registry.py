"""The experiment registry: one declarative table of runnable targets.

Every paper experiment is registered here with its default
``refs_per_app``, the options it accepts, and three campaign hooks:

* ``decompose`` — turn the experiment into an ordered list of
  :class:`~repro.campaign.spec.JobSpec` (one per independent cell);
* ``execute`` — run one spec inside a worker and return a JSON payload;
* ``assemble`` — fold the payloads, in spec order, back into the same
  result object the serial ``run_*`` function produces, so a parallel
  sweep's ``format()`` output is byte-identical to the serial path.

``table1`` decomposes into one job per benchmark combination (11 jobs)
and ``figure5`` into one job per design x size cell (24 jobs); the
remaining targets run as a single whole-experiment job — still
cacheable and resumable through the result store.

The CLI's ``experiment`` command looks its dispatch and default
reference counts up here instead of a hardcoded if/elif ladder, so the
serial and campaign defaults cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.campaign.spec import JobSpec
from repro.common.errors import ConfigError
from repro.sim.scale import scaled


@dataclass(frozen=True, slots=True)
class FormattedResult:
    """Wraps a whole-experiment job's stored text as a result object."""

    text: str

    def format(self) -> str:
        return self.text


@dataclass(frozen=True, slots=True)
class ExperimentTarget:
    """One runnable experiment and its campaign decomposition."""

    name: str
    default_refs: int
    description: str
    serial: Callable[..., Any]
    options: tuple[str, ...] = ()
    decompose: Callable[..., list[JobSpec]] | None = None
    execute: Callable[[JobSpec], Any] | None = None
    assemble: Callable[..., Any] | None = None

    def _check_options(self, options: Mapping[str, Any]) -> dict[str, Any]:
        unknown = set(options) - set(self.options)
        if unknown:
            raise ConfigError(
                f"experiment {self.name!r} does not accept option(s) "
                f"{sorted(unknown)}; accepted: {list(self.options) or 'none'}"
            )
        return dict(options)

    def resolve_refs(self, refs: int | None) -> int:
        """The registry default when the caller passed none."""
        if refs is not None and refs <= 0:
            raise ConfigError(f"refs_per_app must be positive, got {refs}")
        return refs if refs else self.default_refs

    def run_serial(self, refs: int | None = None, seed: int = 1, **options):
        """The plain in-process path (``repro experiment``)."""
        options = self._check_options(options)
        return self.serial(
            refs_per_app=self.resolve_refs(refs), seed=seed, **options
        )

    def jobs(
        self, refs: int | None = None, seed: int = 1, **options
    ) -> list[JobSpec]:
        """Decompose into campaign jobs, in deterministic spec order."""
        options = self._check_options(options)
        refs = self.resolve_refs(refs)
        if self.decompose is not None:
            return self.decompose(self.name, refs, seed, options)
        return _decompose_whole(self.name, refs, seed, options)

    def assemble_results(
        self, specs: list[JobSpec], results: list[Any], **options
    ) -> Any:
        """Fold job payloads (spec order) back into a result object."""
        options = self._check_options(options)
        if self.assemble is not None:
            return self.assemble(specs, results, options)
        return _assemble_whole(specs, results, options)


# --------------------------------------------------------- whole-experiment

def _decompose_whole(
    name: str, refs: int, seed: int, options: dict[str, Any]
) -> list[JobSpec]:
    """A single job covering the entire experiment.

    ``refs_per_app`` stays *unscaled* here because the serial runner
    applies ``REPRO_SCALE`` itself; the spec's captured ``scale`` keeps
    the content hash faithful to the effective workload size.
    """
    params = {"refs_per_app": refs, **options}
    return [JobSpec.make(name, "whole", params, seed=seed)]


def _execute_whole(spec: JobSpec) -> Any:
    target = get_experiment(spec.experiment)
    params = spec.params_dict
    refs = params.pop("refs_per_app")
    result = target.serial(refs_per_app=refs, seed=spec.seed, **params)
    return {"formatted": result.format()}


def _assemble_whole(
    specs: list[JobSpec], results: list[Any], options: dict[str, Any]
) -> FormattedResult:
    return FormattedResult(text=results[0]["formatted"])


# ------------------------------------------------------------------ table1

def _decompose_table1(
    name: str, refs: int, seed: int, options: dict[str, Any]
) -> list[JobSpec]:
    from repro.sim.experiments.table1 import table1_combos

    resolved = scaled(refs)
    return [
        JobSpec.make(
            name,
            "combo",
            {
                "combo": list(combo),
                "refs": resolved,
                "size_bytes": 1 << 20,
                "associativity": 4,
            },
            seed=seed,
        )
        for combo in table1_combos()
    ]


def _execute_table1(spec: JobSpec) -> Any:
    from repro.sim.experiments.table1 import run_table1_combo

    params = spec.params_dict
    rates = run_table1_combo(
        tuple(params["combo"]),
        params["refs"],
        seed=spec.seed,
        size_bytes=params["size_bytes"],
        associativity=params["associativity"],
    )
    return {"rates": rates}


def _assemble_table1(
    specs: list[JobSpec], results: list[Any], options: dict[str, Any]
):
    from repro.sim.experiments.table1 import Table1Result

    first = specs[0].params_dict
    result = Table1Result(
        cache_label=(
            f"{first['size_bytes'] >> 20}MB {first['associativity']}-way L2"
        )
    )
    for spec, payload in zip(specs, results):
        combo = tuple(spec.params_dict["combo"])
        result.combos[combo] = payload["rates"]
    return result


# ----------------------------------------------------------------- figure5

def _decompose_figure5(
    name: str, refs: int, seed: int, options: dict[str, Any]
) -> list[JobSpec]:
    from repro.sim.experiments.figure5 import SIZES_MB, figure5_series

    resolved = scaled(refs)
    graph = str(options.get("graph", "A")).upper()
    specs: list[JobSpec] = []
    for label, kind, parameter in figure5_series():
        for size_mb in SIZES_MB:
            specs.append(
                JobSpec.make(
                    name,
                    "cell",
                    {
                        "label": label,
                        "kind": kind,
                        "parameter": parameter,
                        "size_mb": size_mb,
                        "graph": graph,
                        "refs": resolved,
                        "mode": "absolute",
                    },
                    seed=seed,
                )
            )
    return specs


def _execute_figure5(spec: JobSpec) -> Any:
    from repro.analysis.metrics import DeviationMode
    from repro.sim.experiments.figure5 import run_figure5_cell

    params = spec.params_dict
    deviation, rates = run_figure5_cell(
        params["kind"],
        params["parameter"],
        params["size_mb"],
        graph=params["graph"],
        refs=params["refs"],
        seed=spec.seed,
        deviation_mode=DeviationMode(params["mode"]),
    )
    return {"deviation": deviation, "rates": rates}


def _assemble_figure5(
    specs: list[JobSpec], results: list[Any], options: dict[str, Any]
):
    from repro.sim.experiments.figure5 import SIZES_MB, Figure5Result

    graph = str(options.get("graph", "A")).upper()
    result = Figure5Result(graph=graph, sizes_mb=tuple(SIZES_MB))
    for spec, payload in zip(specs, results):
        params = spec.params_dict
        label, size_mb = params["label"], params["size_mb"]
        result.series.setdefault(label, []).append(payload["deviation"])
        result.miss_rates[(label, size_mb)] = payload["rates"]
    return result


# ------------------------------------------------------------- degradation

def _decompose_degradation(
    name: str, refs: int, seed: int, options: dict[str, Any]
) -> list[JobSpec]:
    from repro.sim.experiments.degradation import resolve_fractions

    resolved = scaled(refs)
    # resolve_fractions forces the 0.0 baseline in, so the first spec is
    # always the fault-free run every other cell is normalised against.
    return [
        JobSpec.make(
            name, "fraction", {"fraction": fraction, "refs": resolved}, seed=seed
        )
        for fraction in resolve_fractions(options.get("fractions"))
    ]


def _execute_degradation(spec: JobSpec) -> Any:
    from repro.sim.experiments.degradation import run_degradation_cell

    params = spec.params_dict
    return run_degradation_cell(params["fraction"], params["refs"], seed=spec.seed)


def _assemble_degradation(
    specs: list[JobSpec], results: list[Any], options: dict[str, Any]
):
    from repro.sim.experiments.degradation import assemble_rows

    return assemble_rows(results)


# ----------------------------------------------------------------- tenancy

def _decompose_tenancy(
    name: str, refs: int, seed: int, options: dict[str, Any]
) -> list[JobSpec]:
    from repro.sim.experiments.tenancy import resolve_grid

    resolved = scaled(refs)
    return [
        JobSpec.make(
            name,
            "cell",
            {
                "tenants": tenants,
                "churn": churn,
                "skew": skew,
                "policy": policy,
                "refs": resolved,
            },
            seed=seed,
        )
        for tenants, churn, skew, policy in resolve_grid(options)
    ]


def _execute_tenancy(spec: JobSpec) -> Any:
    from repro.sim.experiments.tenancy import run_tenancy_cell

    params = spec.params_dict
    return run_tenancy_cell(
        params["tenants"],
        params["churn"],
        params["skew"],
        params["policy"],
        params["refs"],
        seed=spec.seed,
    )


def _assemble_tenancy(
    specs: list[JobSpec], results: list[Any], options: dict[str, Any]
):
    from repro.sim.experiments.tenancy import assemble_cells

    return assemble_cells(results)


# -------------------------------------------------------- resize-mechanism

def _decompose_resize_mechanism(
    name: str, refs: int, seed: int, options: dict[str, Any]
) -> list[JobSpec]:
    from repro.sim.experiments.resize_mechanism import resolve_grid

    resolved = scaled(refs)
    return [
        JobSpec.make(
            name,
            "cell",
            {"mechanism": mechanism, "trigger": trigger, "refs": resolved},
            seed=seed,
        )
        for trigger, mechanism in resolve_grid(
            options.get("resize_mechanism")
        )
    ]


def _execute_resize_mechanism(spec: JobSpec) -> Any:
    from repro.sim.experiments.resize_mechanism import run_resize_mechanism_cell

    params = spec.params_dict
    return run_resize_mechanism_cell(
        params["mechanism"],
        params["trigger"],
        params["refs"],
        seed=spec.seed,
    )


def _assemble_resize_mechanism(
    specs: list[JobSpec], results: list[Any], options: dict[str, Any]
):
    from repro.sim.experiments.resize_mechanism import assemble_cells

    return assemble_cells(results)


# ---------------------------------------------------------------- registry

def _serial(module: str, func: str) -> Callable[..., Any]:
    """Late-bound serial runner so importing the registry stays cheap."""

    def run(**kwargs):
        import importlib

        return getattr(importlib.import_module(module), func)(**kwargs)

    return run


EXPERIMENTS: dict[str, ExperimentTarget] = {}


def _register(target: ExperimentTarget) -> None:
    EXPERIMENTS[target.name] = target


_register(ExperimentTarget(
    name="table1",
    default_refs=500_000,
    description="inter-application interference on a shared 1MB 4-way L2",
    serial=_serial("repro.sim.experiments.table1", "run_table1"),
    decompose=_decompose_table1,
    execute=_execute_table1,
    assemble=_assemble_table1,
))
_register(ExperimentTarget(
    name="table2",
    default_refs=300_000,
    description="mixed 12-benchmark workload, deviation from a 25% goal",
    serial=_serial("repro.sim.experiments.table2", "run_table2"),
))
_register(ExperimentTarget(
    name="table4",
    default_refs=150_000,
    description="CACTI power at 0.07um, traditional vs molecular",
    serial=_serial("repro.sim.experiments.table4", "run_table4"),
))
_register(ExperimentTarget(
    name="table5",
    default_refs=300_000,
    description="power-deviation product",
    serial=_serial("repro.sim.experiments.table5", "run_table5"),
))
_register(ExperimentTarget(
    name="figure5",
    default_refs=400_000,
    description="average deviation from the 10% goal vs cache size",
    serial=_serial("repro.sim.experiments.figure5", "run_figure5"),
    options=("graph",),
    decompose=_decompose_figure5,
    execute=_execute_figure5,
    assemble=_assemble_figure5,
))
_register(ExperimentTarget(
    name="degradation",
    default_refs=200_000,
    description="miss rate and relative IPC vs fraction of failed molecules",
    serial=_serial("repro.sim.experiments.degradation", "run_degradation"),
    options=("fractions",),
    decompose=_decompose_degradation,
    execute=_execute_degradation,
    assemble=_assemble_degradation,
))
_register(ExperimentTarget(
    name="figure6",
    default_refs=300_000,
    description="hits-per-molecule, Random vs Randy placement",
    serial=_serial("repro.sim.experiments.figure6", "run_figure6"),
))
_register(ExperimentTarget(
    name="tenancy",
    default_refs=60_000,
    description="multi-tenant cache service: allocation policy vs "
                "tenant count, churn and skew",
    serial=_serial("repro.sim.experiments.tenancy", "run_tenancy"),
    options=("tenants", "churn", "skew", "policies"),
    decompose=_decompose_tenancy,
    execute=_execute_tenancy,
    assemble=_assemble_tenancy,
))
_register(ExperimentTarget(
    name="resize-mechanism",
    default_refs=60_000,
    description="resize backends under churn: flush vs consistent "
                "hashing, data moved and miss-rate recovery per trigger",
    serial=_serial(
        "repro.sim.experiments.resize_mechanism", "run_resize_mechanism"
    ),
    options=("resize_mechanism",),
    decompose=_decompose_resize_mechanism,
    execute=_execute_resize_mechanism,
    assemble=_assemble_resize_mechanism,
))


def experiment_names() -> list[str]:
    """Registered targets, in registration (paper) order."""
    return list(EXPERIMENTS)


def get_experiment(name: str) -> ExperimentTarget:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {name!r}; available: {experiment_names()}"
        ) from None


def execute_job(spec: JobSpec) -> Any:
    """Dispatch one spec to its target's job executor (worker side).

    An :class:`~repro.audit.invariants.AuditError` (the jobs run their
    simulations under ``$REPRO_AUDIT`` when ``repro sweep --audit`` set
    it — worker processes inherit the environment) is re-raised as a
    :class:`~repro.common.errors.CampaignError` naming the job: invariant
    violations are deterministic, so the runner must fail the job instead
    of burning its retry budget.
    """
    from repro.audit.invariants import AuditError
    from repro.common.errors import CampaignError

    target = get_experiment(spec.experiment)
    try:
        if spec.job == "whole" or target.execute is None:
            return _execute_whole(spec)
        return target.execute(spec)
    except AuditError as error:
        raise CampaignError(
            f"audit failed in job {spec.label()}: {error}"
        ) from error
