"""Campaign orchestration: parallel, resumable experiment sweeps.

Every paper artifact is a sweep of *independent* simulations (Table 1's
eleven benchmark combinations, Figure 5's six designs x four sizes);
this package turns such a sweep into deterministic
:class:`~repro.campaign.spec.JobSpec` jobs, executes them on a
:class:`~repro.campaign.runner.CampaignRunner` worker pool, and caches
every completed job in a content-hashed
:class:`~repro.campaign.store.ResultStore` — so an interrupted campaign
resumes by skipping finished jobs, a re-run with identical specs is a
pure cache hit, and parallel results reassemble byte-identical to the
serial path (jobs regenerate their traces from the seed).

Quick start::

    from repro.campaign import (
        CampaignConfig, CampaignRunner, ResultStore, get_experiment,
    )

    target = get_experiment("figure5")
    specs = target.jobs(graph="A")
    runner = CampaignRunner(ResultStore("campaigns/figure5"),
                            CampaignConfig(jobs=4))
    outcome = runner.run(specs, campaign="figure5")
    result = target.assemble_results(specs, outcome.results_in_order(),
                                     graph="A")
    print(result.format())        # byte-identical to run_figure5().format()

The CLI front end is ``python -m repro sweep`` (``--jobs``, ``--resume``,
``--timeout``, ``--retries``, ``--out``); campaign lifecycle events
(job submitted/started/retried/completed) flow through the standard
:mod:`repro.telemetry` event bus.
"""

from __future__ import annotations

from repro.campaign.registry import (
    EXPERIMENTS,
    ExperimentTarget,
    FormattedResult,
    execute_job,
    experiment_names,
    get_experiment,
)
from repro.campaign.runner import (
    CampaignConfig,
    CampaignResult,
    CampaignRunner,
    execute_spec,
)
from repro.campaign.lease import Lease, LeaseConfig, LeaseManager
from repro.campaign.spec import JobSpec, expand_grid
from repro.campaign.store import ResultStore
from repro.campaign.worker import (
    DistributedOutcome,
    WorkerReport,
    merge_worker_events,
    run_distributed,
    run_worker,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CampaignRunner",
    "DistributedOutcome",
    "Lease",
    "LeaseConfig",
    "LeaseManager",
    "WorkerReport",
    "merge_worker_events",
    "run_distributed",
    "run_worker",
    "EXPERIMENTS",
    "ExperimentTarget",
    "FormattedResult",
    "JobSpec",
    "ResultStore",
    "execute_job",
    "execute_spec",
    "expand_grid",
    "experiment_names",
    "get_experiment",
]
