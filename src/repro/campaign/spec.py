"""Job specifications: the deterministic unit of campaign work.

A :class:`JobSpec` names one independent simulation — an experiment
target, the job kind within it, a JSON-safe parameter mapping, the RNG
seed and the ``REPRO_SCALE`` factor in effect when the spec was built.
Its :meth:`~JobSpec.content_hash` is a SHA-256 over the canonical JSON
form of exactly those five fields, so

* two specs describing the same computation hash identically regardless
  of parameter insertion order or which process built them, and
* any change that could alter the result (a parameter, the seed, the
  scale) produces a different hash.

The hash is the key of the :class:`~repro.campaign.store.ResultStore`
cache: a re-run with identical specs is a pure cache hit, and a resumed
campaign skips every hash already on disk.

:func:`expand_grid` turns a parameter grid (name -> list of values) into
the cartesian-product list of specs, in deterministic grid order — the
*spec order* that campaign results are reassembled in.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from itertools import product
from typing import Any, Mapping

from repro.common.errors import ConfigError
from repro.sim.scale import scale_factor


def _canonical(value: Any) -> Any:
    """Reject parameter values that cannot round-trip through JSON."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _canonical(val) for key, val in value.items()}
    raise ConfigError(
        f"job parameter {value!r} is not JSON-serialisable; campaign specs "
        "must round-trip through the on-disk result store"
    )


@dataclass(frozen=True, slots=True)
class JobSpec:
    """One deterministic, independently runnable unit of an experiment.

    ``params`` is stored as a tuple of sorted ``(name, json_text)`` pairs
    so the spec itself is hashable; use :attr:`params_dict` for the
    decoded mapping.
    """

    experiment: str
    job: str
    params: tuple[tuple[str, str], ...]
    seed: int = 1
    scale: float = 1.0

    @classmethod
    def make(
        cls,
        experiment: str,
        job: str,
        params: Mapping[str, Any] | None = None,
        seed: int = 1,
        scale: float | None = None,
    ) -> "JobSpec":
        """Build a spec, canonicalising ``params`` and capturing the
        current ``REPRO_SCALE`` when ``scale`` is not given."""
        if not experiment:
            raise ConfigError("a job spec needs an experiment name")
        frozen = tuple(
            sorted(
                (name, json.dumps(_canonical(value), sort_keys=True))
                for name, value in (params or {}).items()
            )
        )
        return cls(
            experiment=experiment,
            job=job,
            params=frozen,
            seed=seed,
            scale=scale_factor() if scale is None else scale,
        )

    @property
    def params_dict(self) -> dict[str, Any]:
        return {name: json.loads(text) for name, text in self.params}

    def content_hash(self) -> str:
        """Stable SHA-256 of the canonical JSON form of this spec."""
        payload = json.dumps(
            {
                "experiment": self.experiment,
                "job": self.job,
                "params": {name: json.loads(text) for name, text in self.params},
                "seed": self.seed,
                "scale": self.scale,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """A short human-readable identity for logs and telemetry."""
        return f"{self.experiment}/{self.job}:{self.content_hash()[:12]}"

    # ------------------------------------------------------- serialisation

    def as_payload(self) -> dict[str, Any]:
        """JSON-safe form (manifest entries, worker hand-off)."""
        return {
            "experiment": self.experiment,
            "job": self.job,
            "params": self.params_dict,
            "seed": self.seed,
            "scale": self.scale,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobSpec":
        return cls.make(
            experiment=payload["experiment"],
            job=payload["job"],
            params=payload.get("params", {}),
            seed=payload.get("seed", 1),
            scale=payload.get("scale", 1.0),
        )


def expand_grid(
    experiment: str,
    job: str,
    grid: Mapping[str, list[Any]],
    base: Mapping[str, Any] | None = None,
    seed: int = 1,
    scale: float | None = None,
) -> list[JobSpec]:
    """Cartesian-product a parameter grid into an ordered spec list.

    Axes vary in the grid's insertion order, last axis fastest — the same
    nesting a hand-written ``for`` loop over the grid would produce, so
    assembly code can rely on the order.
    """
    if not grid:
        raise ConfigError("an empty grid expands to no jobs")
    names = list(grid)
    specs: list[JobSpec] = []
    for values in product(*(grid[name] for name in names)):
        params = dict(base or {})
        params.update(zip(names, values))
        specs.append(JobSpec.make(experiment, job, params, seed=seed, scale=scale))
    return specs
