"""Filesystem-coordinated job leases: the distributed-campaign protocol.

N worker processes — on one machine or on many machines sharing the
store directory over a network filesystem — drain one campaign with no
central dispatcher. The only coordination primitives are atomic
filesystem operations every POSIX (and NFS) implementation provides:

* ``O_CREAT | O_EXCL`` — at most one worker creates ``leases/<hash>.json``
  for a never-leased job; everyone else sees ``FileExistsError``;
* ``os.replace`` — lease renewals, reclaims and result commits are
  all-or-nothing; a reader never observes a truncated JSON file.

Layout added to a :class:`~repro.campaign.store.ResultStore` directory::

    <root>/
        leases/<hash>.json      # one live or reacquirable lease per job
        quarantine/<hash>.json  # poison jobs parked with attempt history

A lease record carries the owning worker's id, a **fencing token** (the
number of acquisitions the job has ever had — strictly monotonic, since
every transfer of ownership goes through the previous record), the
acquisition and last-heartbeat wall-clock stamps, and the full attempt
``history``. Wall-clock (``time.time``) rather than the monotonic tick is
deliberate: heartbeats must be comparable *across machines*, and the
protocol tolerates skew (see below).

Safety model
------------

The protocol does **not** try to guarantee mutual exclusion under every
interleaving — over NFS that is a fool's errand. It guarantees something
campaigns actually need:

* **at-most-one effective commit** — ``commit`` re-checks the lease
  record immediately before publishing; a zombie worker whose lease was
  reclaimed (its owner/token no longer match) discards its write, and
  the results file itself is only ever created once (first
  ``os.replace`` wins, later committers observe ``results/<hash>.json``
  and stand down);
* **progress despite lost races** — jobs are deterministic and results
  content-hashed, so in the worst interleaving (two workers both believe
  they reclaimed the same expired lease) both compute byte-identical
  payloads and the double execution wastes time, never correctness.

That pair is why clock skew is survivable: a fast-clock worker reclaims
early and merely races the original owner; a slow-clock worker reclaims
late and merely wastes patience. Fencing decides the commit either way.

Liveness model
--------------

A worker heartbeats its lease every ``heartbeat`` seconds while the job
runs. A lease whose heartbeat is older than ``ttl`` is *expired* — its
owner is presumed dead — and any worker may **reclaim** it (token + 1,
history entry appended). ``job_timeout`` bounds how long a heartbeat is
willing to vouch for one job: past it the heartbeat stops renewing, so a
*hung* worker (alive but stuck) loses its lease too instead of pinning
the job forever — when it finally wakes its commit is fenced off.

A job whose attempt history reaches ``max_reclaims`` entries is not
re-leased but **quarantined**: parked in ``quarantine/<hash>.json`` with
every attempt on record, so one poison job cannot crash-loop the fleet.
The drain then completes *degraded*, reporting the quarantined jobs.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.campaign.spec import JobSpec
from repro.campaign.store import ResultStore
from repro.common.errors import ConfigError
from repro.common.io import atomic_write_json
from repro.telemetry.events import JobQuarantined, LeaseAcquired, LeaseExpired

__all__ = [
    "Lease",
    "LeaseConfig",
    "LeaseManager",
    "Heartbeat",
    "make_owner_id",
]


def make_owner_id() -> str:
    """A worker identity unique across hosts, processes and restarts."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


@dataclass(slots=True)
class LeaseConfig:
    """Knobs of the lease protocol (one instance per worker).

    ``ttl`` is the liveness horizon: a lease not heartbeated for this
    long is presumed orphaned and may be reclaimed. ``heartbeat``
    defaults to a third of it so two renewals can be lost before a peer
    moves in. ``job_timeout`` caps how long the heartbeat vouches for a
    single job (None = forever — only a dead process loses its lease);
    set it when hung jobs must be reclaimable. ``max_reclaims`` is K:
    a job whose lease dies K times is quarantined, not re-leased.
    """

    ttl: float = 30.0
    heartbeat: float | None = None
    job_timeout: float | None = None
    max_reclaims: int = 3
    #: First contention backoff in seconds; doubles per idle pass.
    backoff: float = 0.05
    #: Backoff ceiling — also bounds how stale a worker's view of a
    #: peer's death can be, so keep it well under ``ttl``.
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.ttl <= 0:
            raise ConfigError(f"lease ttl must be positive, got {self.ttl}")
        if self.heartbeat is None:
            self.heartbeat = self.ttl / 3.0
        if self.heartbeat <= 0 or self.heartbeat > self.ttl:
            raise ConfigError(
                f"heartbeat interval must be in (0, ttl], got {self.heartbeat}"
            )
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ConfigError("job_timeout must be positive when set")
        if self.max_reclaims < 1:
            raise ConfigError(
                f"max_reclaims must be >= 1, got {self.max_reclaims}"
            )
        if self.backoff <= 0 or self.backoff_cap < self.backoff:
            raise ConfigError(
                "backoff must be positive and no larger than backoff_cap"
            )


@dataclass(slots=True)
class Lease:
    """A worker's handle on one acquired job."""

    job_hash: str
    owner: str
    token: int
    acquired: float
    #: Set by the heartbeat (or a failed renewal) when ownership was
    #: observably lost — the worker should finish quietly and expect
    #: its commit to be fenced.
    lost: bool = False
    #: Set by the heartbeat when ``job_timeout`` elapsed and renewals
    #: stopped: the lease may still nominally be ours, but we no longer
    #: defend it.
    abandoned: bool = False


class Heartbeat:
    """Background renewal of one lease while its job executes.

    Renewal re-reads the record and verifies ownership before touching
    it, so a reclaimed lease is *detected*, never overwritten — the
    thread then flips ``lease.lost`` and exits. After ``job_timeout``
    seconds it stops renewing without marking the lease lost
    (``lease.abandoned``): the job keeps running, but a peer may now
    reclaim, and the eventual commit must pass the fence to count.
    """

    def __init__(
        self, manager: "LeaseManager", lease: Lease, interval: float,
        job_timeout: float | None,
    ) -> None:
        self._manager = manager
        self._lease = lease
        self._interval = interval
        self._job_timeout = job_timeout
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{lease.job_hash[:8]}",
            daemon=True,
        )
        self._started = manager.clock()

    def __enter__(self) -> "Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval * 4 + 1.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if (
                self._job_timeout is not None
                and self._manager.clock() - self._started > self._job_timeout
            ):
                self._lease.abandoned = True
                return
            if not self._manager.renew(self._lease):
                return


class LeaseManager:
    """Lease acquisition, renewal, reclamation, commit and quarantine.

    One instance per worker; all instances sharing a store directory
    coordinate purely through its ``leases/`` and ``quarantine/``
    subdirectories. ``clock`` is injectable (wall-clock seconds) so
    tests — and the chaos harness — can skew one worker's view of time.
    """

    def __init__(
        self,
        store: ResultStore,
        owner: str | None = None,
        config: LeaseConfig | None = None,
        telemetry=None,
        clock: Callable[[], float] = time.time,
        campaign: str = "campaign",
    ) -> None:
        self.store = store
        self.owner = owner or make_owner_id()
        self.config = config or LeaseConfig()
        self.telemetry = telemetry
        self.clock = clock
        self.campaign = campaign
        self.leases_dir = store.root / "leases"
        self.quarantine_dir = store.root / "quarantine"
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ plumbing

    def _emit(self, event) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(event)

    def _lease_path(self, job_hash: str) -> Path:
        return self.leases_dir / f"{job_hash}.json"

    def _quarantine_path(self, job_hash: str) -> Path:
        return self.quarantine_dir / f"{job_hash}.json"

    def read(self, job_hash: str) -> dict[str, Any] | None:
        """The current lease record, or None (never leased / released /
        corrupt — a torn record is treated as absent, the same way a
        crashed write would be)."""
        try:
            with self._lease_path(job_hash).open(
                "r", encoding="utf-8"
            ) as fh:
                return json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def _owns(self, record: dict[str, Any] | None, lease: Lease) -> bool:
        return (
            record is not None
            and record.get("state") == "active"
            and record.get("owner") == lease.owner
            and record.get("token") == lease.token
        )

    def expired(self, record: dict[str, Any]) -> bool:
        """Liveness judgement by *this worker's* clock — skew shifts the
        judgement, fencing keeps it safe."""
        if record.get("state") == "open":
            return True  # released after an in-process failure
        heartbeat = float(record.get("heartbeat", 0.0))
        return self.clock() - heartbeat > self.config.ttl

    # ------------------------------------------------------- acquisition

    def try_acquire(self, job_hash: str) -> Lease | None:
        """Claim a never-leased job via ``O_EXCL``; None when contended.

        For a job with an existing lease record use :meth:`try_reclaim`
        — acquisition must go through the old record so the fencing
        token stays monotonic.
        """
        if self._quarantine_path(job_hash).exists():
            # A peer parked the job (possibly mid-way through our drain
            # pass); its lease file is gone, but it must stay dead.
            return None
        now = self.clock()
        record = {
            "state": "active",
            "owner": self.owner,
            "token": 1,
            "acquired": now,
            "heartbeat": now,
            "history": [],
        }
        path = self._lease_path(job_hash)
        try:
            fd = os.open(
                path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
            )
        except FileExistsError:
            return None
        except OSError as error:
            raise ConfigError(
                f"cannot create lease {path}: {error}"
            ) from None
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(record, fh, separators=(",", ":"), sort_keys=True)
        lease = Lease(
            job_hash=job_hash, owner=self.owner, token=1, acquired=now
        )
        self._emit(
            LeaseAcquired(
                campaign=self.campaign, job=job_hash, owner=self.owner,
                token=1, reclaimed=False, at=now,
            )
        )
        return lease

    def try_reclaim(self, job_hash: str) -> Lease | None:
        """Take over an expired (or failure-released) lease.

        Returns the new lease, or None when the record is live, gone,
        lost to a racing reclaimer, or pushed over the quarantine
        threshold (in which case the job was parked, not re-leased).
        """
        record = self.read(job_hash)
        if record is None or not self.expired(record):
            return None
        now = self.clock()
        history = list(record.get("history", ()))
        if record.get("state") == "active":
            # A dead (or hung past job_timeout) owner: record the death.
            # ``open`` records already carry their last chapter — fail()
            # appended it, and abandon() deliberately added nothing.
            history.append({
                "owner": record.get("owner"),
                "token": record.get("token", 0),
                "acquired": record.get("acquired"),
                "last_heartbeat": record.get("heartbeat"),
                "reason": "expired",
                "error": None,
                "ended": now,
            })
            self._emit(
                LeaseExpired(
                    campaign=self.campaign, job=job_hash,
                    owner=str(record.get("owner")),
                    token=int(record.get("token", 0)),
                    age=now - float(record.get("heartbeat", now)),
                    by=self.owner, at=now,
                )
            )
            if len(history) >= self.config.max_reclaims:
                self._quarantine(job_hash, history)
                return None
        token = int(record.get("token", 0)) + 1
        new_record = {
            "state": "active",
            "owner": self.owner,
            "token": token,
            "acquired": now,
            "heartbeat": now,
            "history": history,
        }
        atomic_write_json(self._lease_path(job_hash), new_record)
        # CAS-less takeover: a racing reclaimer may have replaced the
        # record between our read and write. Re-read to learn who the
        # filesystem says won; the loser backs off (and if it was
        # already running, the commit fence stops it).
        lease = Lease(
            job_hash=job_hash, owner=self.owner, token=token, acquired=now
        )
        if not self._owns(self.read(job_hash), lease):
            return None
        self._emit(
            LeaseAcquired(
                campaign=self.campaign, job=job_hash, owner=self.owner,
                token=token, reclaimed=True, at=now,
            )
        )
        return lease

    # ---------------------------------------------------------- lifetime

    def renew(self, lease: Lease) -> bool:
        """Refresh the heartbeat; False (and ``lease.lost``) when the
        record no longer names us — never overwrites a reclaimer."""
        record = self.read(lease.job_hash)
        if not self._owns(record, lease):
            lease.lost = True
            return False
        record["heartbeat"] = self.clock()
        atomic_write_json(self._lease_path(lease.job_hash), record)
        return True

    def heartbeat(self, lease: Lease) -> Heartbeat:
        """A context manager renewing ``lease`` while a job runs."""
        return Heartbeat(
            self, lease, self.config.heartbeat, self.config.job_timeout
        )

    def fail(self, lease: Lease, error: BaseException) -> bool:
        """Record an in-process job failure and release the lease.

        The record flips to ``state: open`` (immediately reclaimable by
        anyone, ourselves included) with the failure appended to the
        history — in-process crashes and worker deaths draw down the
        same ``max_reclaims`` budget. Returns False when the job was
        quarantined instead of released.
        """
        record = self.read(lease.job_hash)
        if not self._owns(record, lease):
            return True  # already reclaimed; the reclaimer owns the story
        now = self.clock()
        history = list(record.get("history", ())) + [{
            "owner": lease.owner,
            "token": lease.token,
            "acquired": record.get("acquired"),
            "last_heartbeat": record.get("heartbeat"),
            "reason": "failed",
            "error": str(error) or type(error).__name__,
            "ended": now,
        }]
        if len(history) >= self.config.max_reclaims:
            self._quarantine(lease.job_hash, history)
            return False
        atomic_write_json(
            self._lease_path(lease.job_hash),
            {
                "state": "open",
                "owner": lease.owner,
                "token": lease.token,
                "acquired": record.get("acquired"),
                "heartbeat": now,
                "history": history,
            },
        )
        return True

    def abandon(self, lease: Lease) -> None:
        """Reopen the lease without charging its quarantine budget.

        For interruptions (SIGINT/SIGTERM) that are the *worker's*
        story, not the job's: the record flips to ``state: open`` with
        the history untouched, so any worker — including a restarted
        us — can take the job straight back.
        """
        record = self.read(lease.job_hash)
        if not self._owns(record, lease):
            return
        record["state"] = "open"
        record["heartbeat"] = self.clock()
        atomic_write_json(self._lease_path(lease.job_hash), record)

    def commit(
        self, lease: Lease, spec: JobSpec, result: Any, elapsed: float,
    ) -> bool:
        """Fencing-checked idempotent result publication.

        True — our write is the one in ``results/``. False — we were a
        stale duplicate: the result already existed, or the lease record
        stopped naming our (owner, token) because a peer reclaimed it.
        Either way the job *is* complete or will be completed by the
        fence winner; the caller just must not count it as its own.
        """
        if self.store.has(lease.job_hash):
            self._release(lease)
            return False
        if not self._owns(self.read(lease.job_hash), lease):
            lease.lost = True
            return False
        self.store.save(spec, result, elapsed, lease.token)
        self._release(lease)
        return True

    def _release(self, lease: Lease) -> None:
        """Drop the lease file once its job is durable in ``results/``.

        Only when the record still names us: a reclaimer's record must
        survive so *its* commit path sees a fenced view, not a void.
        """
        if self._owns(self.read(lease.job_hash), lease):
            try:
                os.unlink(self._lease_path(lease.job_hash))
            except FileNotFoundError:
                pass

    # -------------------------------------------------------- quarantine

    def _quarantine(self, job_hash: str, history: list[dict]) -> None:
        now = self.clock()
        atomic_write_json(
            self._quarantine_path(job_hash),
            {
                "job": job_hash,
                "attempts": len(history),
                "history": history,
                "quarantined_at": now,
                "by": self.owner,
            },
        )
        try:
            os.unlink(self._lease_path(job_hash))
        except FileNotFoundError:
            pass
        self._emit(
            JobQuarantined(
                campaign=self.campaign, job=job_hash,
                attempts=len(history),
                owners=[str(entry.get("owner")) for entry in history],
                at=now,
            )
        )

    def quarantined(self) -> set[str]:
        """Hashes parked in ``quarantine/`` (one scandir, like
        :meth:`ResultStore.completed`)."""
        try:
            with os.scandir(self.quarantine_dir) as entries:
                return {
                    entry.name[:-5]
                    for entry in entries
                    if entry.name.endswith(".json")
                }
        except FileNotFoundError:
            return set()

    def quarantine_record(self, job_hash: str) -> dict[str, Any] | None:
        try:
            with self._quarantine_path(job_hash).open(
                "r", encoding="utf-8"
            ) as fh:
                return json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
