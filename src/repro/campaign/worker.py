"""The dispatcherless campaign worker: drain a shared store via leases.

``run_worker`` is the whole distributed protocol from one process's
point of view: read the campaign manifest, then loop — claim an
unleased job (:meth:`~repro.campaign.lease.LeaseManager.try_acquire`),
or reclaim an expired one, execute it with a heartbeat, and publish the
result through the fencing-checked commit. When every job is either in
``results/`` or ``quarantine/``, the worker exits. N such processes
pointed at one store directory *are* the campaign runner; none of them
is special, and any of them can die at any instant without stopping the
drain (a peer reclaims its lease after ``ttl``).

Contention is handled with exponential backoff plus jitter: a pass over
the remaining jobs that acquires nothing (everything is leased by live
peers) sleeps before the next pass, doubling up to ``backoff_cap`` —
so a fleet stampeding one store settles into polite polling while the
leaseholders work.

``run_distributed`` is the single-host convenience wrapper behind
``repro sweep --distributed N``: it writes the manifest, spawns N local
worker processes, waits for the drain, and either assembles the results
(byte-identical to the serial path) or reports the campaign *degraded*
with its quarantined jobs. Worker chaos directives
(:class:`~repro.faults.chaos.WorkerChaos`) can sabotage individual
workers — SIGKILL mid-job, hang, clock skew — which is how the chaos
suite proves convergence.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.campaign.lease import LeaseConfig, LeaseManager, make_owner_id
from repro.campaign.runner import execute_spec
from repro.campaign.spec import JobSpec
from repro.campaign.store import ResultStore
from repro.common.errors import CampaignError, ConfigError
from repro.faults.chaos import WorkerChaos
from repro.telemetry.events import JobCompleted, JobStarted

__all__ = [
    "WorkerReport",
    "run_worker",
    "DistributedOutcome",
    "run_distributed",
    "merge_worker_events",
]


@dataclass(slots=True)
class WorkerReport:
    """What one worker did to the store before the drain completed."""

    owner: str
    campaign: str
    committed: int = 0
    fenced: int = 0
    failed: int = 0
    reclaims: int = 0
    backoffs: int = 0
    quarantined: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"worker {self.owner} [{self.campaign}]: "
            f"{self.committed} committed, {self.fenced} fenced, "
            f"{self.failed} failed, {self.reclaims} reclaimed, "
            f"{len(self.quarantined)} quarantined, "
            f"{self.backoffs} backoff(s)"
        )


def _manifest_jobs(store: ResultStore) -> tuple[str, list[tuple[str, dict]]]:
    """Campaign name + ordered unique (hash, spec payload) pairs."""
    manifest = store.read_manifest()
    if manifest is None:
        raise ConfigError(
            f"{store.root} has no campaign manifest; run `repro sweep "
            "<experiment> --out <store>` (or write_manifest) first"
        )
    jobs: list[tuple[str, dict]] = []
    seen: set[str] = set()
    for entry in manifest.get("jobs", ()):
        job_hash = entry["hash"]
        if job_hash not in seen:
            seen.add(job_hash)
            jobs.append((job_hash, entry["spec"]))
    if not jobs:
        raise ConfigError(f"{store.root}: manifest lists no jobs")
    return str(manifest.get("campaign", "campaign")), jobs


def run_worker(
    store: ResultStore | str | Path,
    config: LeaseConfig | None = None,
    owner: str | None = None,
    telemetry=None,
    chaos: WorkerChaos | None = None,
    clock: Callable[[], float] = time.time,
) -> WorkerReport:
    """Drain one campaign store until every job is done or quarantined.

    Safe to run N-fold concurrently against the same directory; exits
    when there is nothing left this worker could ever do. ``chaos``
    sabotages *this* worker only (the chaos harness's lever), ``clock``
    skews its view of lease time.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    config = config or LeaseConfig()
    campaign, jobs = _manifest_jobs(store)
    manager = LeaseManager(
        store, owner=owner, config=config, telemetry=telemetry,
        clock=clock, campaign=campaign,
    )
    report = WorkerReport(owner=manager.owner, campaign=campaign)
    index_of = {job_hash: i for i, (job_hash, _p) in enumerate(jobs)}
    rng = random.Random(manager.owner)
    acquisitions = 0
    idle_passes = 0

    while True:
        done = store.completed(h for h, _p in jobs)
        parked = manager.quarantined()
        remaining = [
            (job_hash, payload)
            for job_hash, payload in jobs
            if job_hash not in done and job_hash not in parked
        ]
        if not remaining:
            break
        progressed = False
        for job_hash, payload in remaining:
            if store.has(job_hash):  # a peer finished it this pass
                continue
            lease = manager.try_acquire(job_hash)
            if lease is None:
                lease = manager.try_reclaim(job_hash)
                if lease is not None:
                    report.reclaims += 1
                elif manager.quarantine_record(job_hash) is not None:
                    # our reclaim attempt pushed it over max_reclaims
                    report.quarantined.append(job_hash)
                    progressed = True
                    continue
            if lease is None:
                continue
            progressed = True
            acquisitions += 1
            if chaos is not None:
                # kill@N fires *after* the lease is durable on disk and
                # before any result is — the orphaned-lease scenario.
                chaos.on_acquire(acquisitions)
            if telemetry is not None:
                telemetry.emit(
                    JobStarted(
                        campaign=campaign, job=job_hash,
                        index=index_of[job_hash], attempt=lease.token,
                    )
                )
            outcome = error = None
            with manager.heartbeat(lease):
                try:
                    if chaos is not None:
                        chaos.before_execute(acquisitions, job_hash)
                    outcome = execute_spec(payload)
                except (KeyboardInterrupt, SystemExit):
                    # Not the job's fault: reopen the lease without
                    # drawing down its quarantine budget.
                    manager.abandon(lease)
                    raise
                except BaseException as caught:
                    error = caught
            if error is not None:
                report.failed += 1
                if not manager.fail(lease, error):
                    report.quarantined.append(job_hash)
                continue
            spec = JobSpec.from_payload(payload)
            if manager.commit(
                lease, spec, outcome["result"], outcome["elapsed"]
            ):
                report.committed += 1
                if telemetry is not None:
                    telemetry.emit(
                        JobCompleted(
                            campaign=campaign, job=job_hash,
                            index=index_of[job_hash], attempts=lease.token,
                            elapsed=outcome["elapsed"], cached=False,
                        )
                    )
            else:
                report.fenced += 1
        if progressed:
            idle_passes = 0
        else:
            # Everything left is leased by live peers (or waiting out a
            # dead peer's ttl): exponential backoff with jitter so the
            # fleet doesn't hammer the store in lockstep.
            idle_passes += 1
            report.backoffs += 1
            delay = min(
                config.backoff_cap,
                config.backoff * (2 ** (idle_passes - 1)),
            ) * (0.5 + rng.random())
            time.sleep(delay)
    return report


# ------------------------------------------------------------- distributed


@dataclass(slots=True)
class DistributedOutcome:
    """What a ``--distributed N`` drain left in the store."""

    campaign: str
    specs: list[JobSpec]
    workers: int
    exitcodes: list[int | None]
    completed: int = 0
    quarantined: list[dict[str, Any]] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined)

    def results_in_order(self, store: ResultStore) -> list[Any]:
        return [
            store.load_result(spec.content_hash()) for spec in self.specs
        ]

    def summary(self) -> str:
        deaths = sum(1 for code in self.exitcodes if code not in (0, 1))
        text = (
            f"campaign {self.campaign}: {len(self.specs)} jobs over "
            f"{self.workers} worker(s) ({self.completed} completed, "
            f"{len(self.quarantined)} quarantined, {deaths} worker "
            f"death(s)) in {self.elapsed:.1f}s [distributed]"
        )
        return text

    def degraded_report(self) -> str:
        """The explicit quarantined-jobs report of a degraded campaign."""
        lines = [
            f"campaign {self.campaign}: DEGRADED — "
            f"{len(self.quarantined)} job(s) quarantined after repeated "
            "lease reclaims"
        ]
        for record in self.quarantined:
            history = record.get("history", [])
            owners = ", ".join(
                str(entry.get("owner", "?")) for entry in history
            )
            errors = [
                entry.get("error")
                for entry in history
                if entry.get("error")
            ]
            lines.append(
                f"  job {record.get('job', '?')[:12]}: "
                f"{record.get('attempts', len(history))} attempt(s) "
                f"by [{owners}]"
                + (f"; last error: {errors[-1]}" if errors else "")
            )
        lines.append(
            "  re-run with a fresh quarantine/ to retry these jobs"
        )
        return "\n".join(lines)


def _worker_entry(
    store_root: str,
    config_kwargs: dict[str, Any],
    owner: str,
    record: str | None,
    chaos_spec: str | None,
    skew: float,
) -> None:
    """Child-process body of one ``--distributed`` worker (picklable)."""
    bus = None
    if record is not None:
        from repro.telemetry import EventBus, JsonlSink

        bus = EventBus([JsonlSink(record)], epoch_refs=0)
    clock: Callable[[], float] = (
        (lambda: time.time() + skew) if skew else time.time
    )
    try:
        report = run_worker(
            store_root,
            config=LeaseConfig(**config_kwargs),
            owner=owner,
            telemetry=bus,
            chaos=WorkerChaos.parse(chaos_spec) if chaos_spec else None,
            clock=clock,
        )
        # Stderr, never stdout: the parent's stdout must stay
        # byte-comparable with the serial sweep.
        print(report.summary(), file=sys.stderr, flush=True)
    finally:
        if bus is not None:
            bus.close()


def _mp_context():
    """fork when the platform has it (fast), spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context("spawn")


def run_distributed(
    store: ResultStore,
    specs: list[JobSpec],
    campaign: str,
    workers: int,
    options: dict[str, Any] | None = None,
    config: LeaseConfig | None = None,
    record_events: bool = False,
    worker_chaos: list[str | None] | None = None,
    worker_skews: list[float] | None = None,
) -> DistributedOutcome:
    """Write the manifest, spawn N local workers, wait out the drain.

    The processes coordinate purely through the store directory — this
    function could exit after writing the manifest and workers on other
    machines would drain it just the same; spawning locally is only a
    convenience. ``worker_chaos[i]``/``worker_skews[i]`` sabotage worker
    i (the chaos harness's entry point).
    """
    if workers < 2:
        raise ConfigError(
            "run_distributed needs >= 2 workers; use the serial runner "
            "for one"
        )
    if not specs:
        raise ConfigError("a campaign needs at least one job spec")
    config = config or LeaseConfig()
    store.write_manifest(campaign, specs, dict(options or {}))
    events_dir = store.root / "events"
    if record_events:
        events_dir.mkdir(parents=True, exist_ok=True)

    started = time.perf_counter()
    context = _mp_context()
    processes = []
    for rank in range(workers):
        owner = f"{make_owner_id()}:w{rank}"
        chaos_spec = (worker_chaos or [None] * workers)[rank]
        skew = (worker_skews or [0.0] * workers)[rank]
        record = (
            str(events_dir / f"worker-{rank}.jsonl")
            if record_events
            else None
        )
        config_kwargs = {
            "ttl": config.ttl,
            "heartbeat": config.heartbeat,
            "job_timeout": config.job_timeout,
            "max_reclaims": config.max_reclaims,
            "backoff": config.backoff,
            "backoff_cap": config.backoff_cap,
        }
        process = context.Process(
            target=_worker_entry,
            args=(
                str(store.root), config_kwargs, owner, record,
                chaos_spec, skew,
            ),
            name=f"repro-worker-{rank}",
            daemon=False,
        )
        process.start()
        processes.append(process)
    for process in processes:
        process.join()

    hashes = [spec.content_hash() for spec in specs]
    done = store.completed(hashes)
    manager = LeaseManager(store, config=config, campaign=campaign)
    parked = manager.quarantined()
    outcome = DistributedOutcome(
        campaign=campaign,
        specs=list(specs),
        workers=workers,
        exitcodes=[process.exitcode for process in processes],
        completed=len(done),
        quarantined=[
            record
            for job_hash in sorted(parked)
            if (record := manager.quarantine_record(job_hash)) is not None
        ],
        elapsed=time.perf_counter() - started,
    )
    pending = [h for h in hashes if h not in done and h not in parked]
    if pending:
        raise CampaignError(
            f"distributed drain stalled: {len(pending)} job(s) neither "
            f"completed nor quarantined and every worker has exited "
            f"(exit codes {outcome.exitcodes}); re-run `repro worker "
            f"{store.root}` to finish"
        )
    return outcome


def merge_worker_events(store_root: str | Path, out_path: str | Path) -> int:
    """Merge per-worker JSONL streams into one ``repro inspect`` file.

    Lease events carry a wall-clock ``at``; events without one (job
    lifecycle) inherit the last ``at`` seen in their own file, which
    keeps each worker's stream in order while interleaving workers by
    time. Returns the number of merged events.
    """
    events_dir = Path(store_root) / "events"
    decorated: list[tuple[float, int, int, str]] = []
    try:
        files = sorted(events_dir.glob("*.jsonl"))
    except OSError:
        files = []
    for file_index, path in enumerate(files):
        last_at = 0.0
        with path.open("r", encoding="utf-8") as fh:
            for line_index, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    at = json.loads(line).get("at")
                except json.JSONDecodeError:
                    continue  # torn tail of a killed worker's stream
                if isinstance(at, (int, float)):
                    last_at = float(at)
                decorated.append((last_at, file_index, line_index, line))
    decorated.sort(key=lambda item: (item[0], item[1], item[2]))
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with out_path.open("w", encoding="utf-8") as fh:
        for _at, _file, _line, text in decorated:
            fh.write(text + "\n")
    return len(decorated)
