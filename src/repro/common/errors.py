"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library throws with one handler while still
distinguishing configuration mistakes from runtime simulation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """A structural parameter is invalid (non-power-of-two size, zero ways, ...).

    Inherits from :class:`ValueError` because configuration errors are a kind
    of invalid-argument error and callers may already handle those.
    """


class SimulationError(ReproError, RuntimeError):
    """An invariant was violated while a simulation was running."""


class AllocationError(ReproError):
    """A molecule allocation request could not be satisfied.

    Raised only for *illegal* requests (e.g. stealing an owned molecule);
    running out of free molecules is an expected condition reported through
    return values, not exceptions, because Algorithm 1 treats it as a normal
    "no resize this period" outcome.
    """


class UnknownASIDError(ReproError, KeyError):
    """An access carried an ASID for which no cache region exists."""


class CampaignError(ReproError, RuntimeError):
    """A campaign could not complete: a job exhausted its retries, was
    structurally misconfigured, or the worker pool failed permanently.

    Jobs persisted before the failure remain in the result store, so a
    corrected re-run with ``resume`` skips them.
    """
