"""Deterministic random number generators.

The paper's Random replacement policy depends on a *hardware* random number
generator and explicitly notes that its load-balancing quality "is highly
dependent on the entropy of the random number generator implemented in
hardware". To study that dependence (and to keep every simulation
reproducible), this module provides:

* :class:`XorShift64` — a good-quality, fast 64-bit xorshift generator; the
  default used by all replacement policies.
* :class:`LFSR16` — a deliberately weak 16-bit linear-feedback shift
  register, standing in for a cheap hardware RNG. Used by the RNG-entropy
  ablation bench.

Both implement the small :class:`DeterministicRNG` interface, which is all
the simulators need (uniform integers below a bound and choice from a
sequence).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, TypeVar

from repro.common.errors import ConfigError

T = TypeVar("T")

_MASK64 = (1 << 64) - 1


class DeterministicRNG(ABC):
    """Minimal RNG interface used by replacement and placement policies."""

    @abstractmethod
    def next_u64(self) -> int:
        """Return the next raw value in ``[0, 2**64)``."""

    def randrange(self, bound: int) -> int:
        """Uniform-ish integer in ``[0, bound)``.

        Uses simple modulo reduction — the bias is negligible for the small
        bounds (way counts, molecule counts) used by the simulators, and
        matches what trivial hardware would do.
        """
        if bound <= 0:
            raise ConfigError(f"randrange bound must be positive, got {bound!r}")
        return self.next_u64() % bound

    def choice(self, seq: Sequence[T]) -> T:
        """Return a pseudo-randomly chosen element of a non-empty sequence."""
        if not seq:
            raise ConfigError("choice from an empty sequence")
        return seq[self.randrange(len(seq))]

    def random(self) -> float:
        """Float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))


class XorShift64(DeterministicRNG):
    """Marsaglia xorshift64* generator — fast and good enough for simulation."""

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        seed &= _MASK64
        if seed == 0:
            # xorshift has an all-zero fixed point; remap to a fixed non-zero
            # state so seed=0 is usable.
            seed = 0xDEADBEEFCAFEF00D
        self._state = seed

    def next_u64(self) -> int:
        x = self._state
        x ^= (x << 13) & _MASK64
        x ^= x >> 7
        x ^= (x << 17) & _MASK64
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64


class LFSR16(DeterministicRNG):
    """A 16-bit Fibonacci LFSR (taps 16,15,13,4) — a *low-entropy* RNG.

    Period is at most 2**16 - 1 and successive outputs are strongly
    correlated, which is exactly the kind of cheap hardware generator the
    paper warns about. Provided for the RNG-sensitivity ablation.
    """

    def __init__(self, seed: int = 0xACE1) -> None:
        seed &= 0xFFFF
        if seed == 0:
            seed = 0xACE1
        self._state = seed

    def _step(self) -> int:
        s = self._state
        bit = ((s >> 0) ^ (s >> 2) ^ (s >> 3) ^ (s >> 5)) & 1
        self._state = (s >> 1) | (bit << 15)
        return self._state

    def next_u64(self) -> int:
        # Concatenate four successive 16-bit states. This keeps the weak
        # statistical structure (which is the point) while satisfying the
        # 64-bit interface.
        value = 0
        for _ in range(4):
            value = (value << 16) | self._step()
        return value
