"""The one clock every elapsed/deadline computation uses.

The campaign runner used to mix ``time.perf_counter`` (job elapsed
times) with ``time.monotonic`` (chunk submission deadlines). On Linux
those are *different* kernel clocks (``CLOCK_MONOTONIC`` vs, depending
on the CPython build, ``CLOCK_MONOTONIC_RAW``) that drift relative to
each other, so span timestamps derived from one and timeout arithmetic
derived from the other could disagree. Everything now routes through
:func:`tick`.

``tick`` is ``time.monotonic`` deliberately:

* it is system-wide on the platforms we run on, so a timestamp taken in
  a campaign worker process is directly comparable with one taken in
  the dispatcher — which is what turns (submit, start, end) triples
  into queue-wait/execute spans;
* it never goes backwards, so deadlines computed from it are safe.

Timestamps from :func:`tick` are *durations from an arbitrary origin*
(boot, typically), never wall-clock times; anything persisted for humans
should pair them with :func:`time.time` separately.
"""

from __future__ import annotations

from time import monotonic as _monotonic

__all__ = ["elapsed_since", "tick"]


def tick() -> float:
    """Seconds on the shared monotonic clock (arbitrary origin)."""
    return _monotonic()


def elapsed_since(start: float) -> float:
    """Seconds elapsed since a ``tick()`` value ``start``."""
    return _monotonic() - start
