"""Atomic file writes shared by every on-disk artifact.

One idiom, used by the campaign result store, the benchmark results
directory and the performance ledger: write to a same-directory
temporary file, then ``os.replace`` onto the target. A process killed
mid-write leaves at most an orphaned ``*.tmp`` — never a truncated
JSON/text file that a later reader would choke on.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["atomic_write_json", "atomic_write_text"]


def atomic_write_text(path: str | Path, text: str) -> None:
    """Replace ``path`` with ``text`` via a same-directory tmp + rename."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str | Path, payload: Any, sort_keys: bool = True
) -> None:
    """Serialise ``payload`` as compact JSON and write it atomically."""
    atomic_write_text(
        path,
        json.dumps(payload, separators=(",", ":"), sort_keys=sort_keys) + "\n",
    )
