"""Bit-manipulation helpers used throughout the cache simulators.

All cache geometry in this library is power-of-two, so index/tag extraction
reduces to shifts and masks. These helpers centralise the arithmetic and the
validation so the simulators themselves stay readable.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


def is_power_of_two(value: int) -> bool:
    """Return ``True`` if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Integer log base 2 of a power-of-two ``value``.

    Raises
    ------
    ConfigError
        If ``value`` is not a positive power of two. Cache geometry code
        calls this during construction, so a bad size fails fast with a
        configuration error rather than producing a silently wrong index.
    """
    if not is_power_of_two(value):
        raise ConfigError(f"{value!r} is not a positive power of two")
    return value.bit_length() - 1


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (``value`` must be positive)."""
    if value <= 0:
        raise ConfigError(f"next_power_of_two requires a positive value, got {value!r}")
    return 1 << (value - 1).bit_length()


def align_down(address: int, alignment: int) -> int:
    """Round ``address`` down to a multiple of power-of-two ``alignment``."""
    if not is_power_of_two(alignment):
        raise ConfigError(f"alignment {alignment!r} is not a power of two")
    return address & ~(alignment - 1)


def align_up(address: int, alignment: int) -> int:
    """Round ``address`` up to a multiple of power-of-two ``alignment``."""
    if not is_power_of_two(alignment):
        raise ConfigError(f"alignment {alignment!r} is not a power of two")
    return (address + alignment - 1) & ~(alignment - 1)


def bit_slice(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``.

    ``bit_slice(0b110100, 2, 3) == 0b101``.
    """
    if low < 0 or width < 0:
        raise ConfigError("bit_slice offsets must be non-negative")
    return (value >> low) & ((1 << width) - 1)


def block_address(address: int, block_size: int) -> int:
    """Map a byte address to its cache-block number.

    The block number (not the block-aligned byte address) is the canonical
    identity used by every simulator in this library, because it makes
    presence maps and tag arithmetic independent of the byte offset bits.
    """
    return address >> ilog2(block_size)
