"""Shared low-level substrate: bit utilities, deterministic RNGs, core types.

Everything in this package is dependency-free (standard library only) and is
used by every other subpackage.
"""

from repro.common.bitops import (
    align_down,
    align_up,
    bit_slice,
    block_address,
    ilog2,
    is_power_of_two,
    next_power_of_two,
)
from repro.common.clock import elapsed_since, tick
from repro.common.io import atomic_write_json, atomic_write_text
from repro.common.errors import (
    AllocationError,
    ConfigError,
    ReproError,
    SimulationError,
    UnknownASIDError,
)
from repro.common.rng import LFSR16, DeterministicRNG, XorShift64
from repro.common.types import Access, AccessResult, AccessType

__all__ = [
    "Access",
    "AccessResult",
    "AccessType",
    "AllocationError",
    "ConfigError",
    "DeterministicRNG",
    "LFSR16",
    "ReproError",
    "SimulationError",
    "UnknownASIDError",
    "XorShift64",
    "align_down",
    "align_up",
    "atomic_write_json",
    "atomic_write_text",
    "bit_slice",
    "elapsed_since",
    "block_address",
    "ilog2",
    "is_power_of_two",
    "next_power_of_two",
    "tick",
]
