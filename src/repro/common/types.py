"""Core value types shared by every simulator.

An :class:`Access` is one memory reference as seen by a cache: a byte
address, the ASID (Application Space IDentifier) of the issuing application,
and whether it is a read or a write. Traces are sequences of accesses.

An :class:`AccessResult` is what a cache reports back for one access. The
molecular cache additionally reports how many molecules were probed locally
and remotely, which is the raw material for the dynamic-energy accounting of
Table 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AccessType(enum.Enum):
    """Read/write discriminator for a memory reference."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class Access:
    """A single memory reference.

    Parameters
    ----------
    address:
        Byte address. Address spaces of distinct applications must not
        overlap when fed to a *shared* traditional cache; the workload
        generators guarantee this by offsetting each application's space.
    asid:
        Application Space Identifier of the issuing application.
    kind:
        Read or write. Defaults to read; the evaluated metrics (miss rate,
        deviation, power) are insensitive to the mix, but writeback
        statistics are maintained.
    """

    address: int
    asid: int = 0
    kind: AccessType = AccessType.READ

    @property
    def is_write(self) -> bool:
        return self.kind is AccessType.WRITE


@dataclass(slots=True)
class AccessResult:
    """Outcome of one cache access.

    ``molecules_probed_local``/``remote`` are zero for traditional caches;
    the molecular cache fills them in so the power model can integrate
    per-access probe energy (hierarchical lookup: local tile first, then the
    Ulmo-directed remote tiles).
    """

    hit: bool
    evicted_block: int | None = None
    writeback: bool = False
    molecules_probed_local: int = 0
    molecules_probed_remote: int = 0
    lines_filled: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def miss(self) -> bool:
        return not self.hit

    @property
    def molecules_probed(self) -> int:
        return self.molecules_probed_local + self.molecules_probed_remote
