"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``models``
    List the bundled workload models with their footprints.
``workloads``
    List the registered workload families (SPEC stand-ins, mixed suite,
    multi-tenant mixes) and their members.
``tenants``
    Multi-tenant cache-service sweep: allocation policies (static /
    need-driven / Algorithm 1) vs tenant count, churn and skew, with
    per-tenant hit-rate accounting, Jain fairness and SLA tracking.
    ``--jobs`` runs it as a campaign; ``--record`` captures one cell's
    telemetry for ``repro inspect``.
``profile MODEL``
    Characterise a model's trace (footprint, locality, LRU miss curve).
``experiment {table1,table2,table4,table5,figure5,figure6,...}``
    Run one of the paper's experiments (or a repo experiment such as
    ``resize-mechanism``, the flush-vs-consistent-hashing resize
    comparison) and print its table/series.
``sweep {table1,table2,table4,table5,figure5,figure6,...}``
    Run an experiment as a campaign: independent jobs on a worker pool
    (``--jobs``), cached in a content-hashed result store (``--out``),
    resumable after interruption (``--resume``). Output is
    byte-identical to ``experiment``. ``--distributed N`` drains the
    sweep with N lease-coordinated worker processes sharing the store
    (crash-tolerant: dead workers' jobs are reclaimed; poison jobs are
    quarantined after ``--max-reclaims`` attempts).
``worker STORE``
    Join a campaign as one lease-protocol worker: claim jobs from the
    store's manifest via atomic lease files, heartbeat while running,
    commit results fenced by lease token. Any number of workers on a
    shared filesystem drain one campaign with no dispatcher.
``simulate``
    Run a workload mix on a molecular or traditional cache; ``--record``
    writes a telemetry JSONL stream alongside the run, ``--faults``
    schedules hardware faults (molecule retirement, transient line
    drops, degraded tiles) against a molecular run, and
    ``--resize-mechanism {flush,chash}`` picks the resize backend.
``inspect``
    Replay a recorded telemetry stream: resize timeline, per-region
    miss-rate/occupancy/HPM epochs, and a convergence summary.
``power``
    Evaluate a cache organization with the analytical power model.
``trace-export``
    Summarise a span trace recorded by ``sweep --spans`` (per-category
    durations, queue-wait share, retry/timeout markers) or write a
    category-filtered copy for Perfetto.
``bench-report``
    Diff the machine-readable benchmark ledger
    (``benchmarks/results/ledger/``): pair each metric's latest entry
    with the previous same-scale one and fail on changes beyond
    ``--threshold`` in the worse direction (``--soft`` reports only).
``fuzz``
    Differential fuzzing: randomized op streams through every access
    path with the full-state invariant auditor at epoch boundaries;
    failures are shrunk to a minimal repro. ``--faults`` mixes random
    fault schedules into every stream; ``--mechanism {all,flush,chash}``
    adds the resize-mechanism axis to the fuzz grid.
``chaos``
    Chaos-test the campaign runner: run an experiment once cleanly and
    once under a seeded sabotage policy (worker crashes, hangs,
    corrupted results) with resume-until-converged, then verify the two
    outputs are byte-identical.

``simulate`` and ``sweep`` additionally accept ``--audit [CADENCE]`` to
run the invariant auditor every CADENCE accesses during the run (sweep
propagates the cadence to campaign workers via ``$REPRO_AUDIT``).
``simulate --profile [SAMPLE]`` prints a per-stage hot-path breakdown
(see :mod:`repro.prof`); ``sweep --spans PATH`` records a
Chrome-tracing timeline of the campaign.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import ConfigError, ReproError


def parse_size(text: str) -> int:
    """Parse ``"512KB"`` / ``"4MB"`` / ``"8192"`` into bytes."""
    raw = text.strip().upper()
    multiplier = 1
    for suffix, factor in (("KB", 1 << 10), ("MB", 1 << 20), ("GB", 1 << 30),
                           ("K", 1 << 10), ("M", 1 << 20), ("B", 1)):
        if raw.endswith(suffix):
            raw = raw[: -len(suffix)]
            multiplier = factor
            break
    try:
        size = int(float(raw) * multiplier)
    except ValueError:
        raise ConfigError(f"cannot parse size {text!r}") from None
    if size <= 0:
        raise ConfigError(f"size must be positive, got {text!r}")
    return size


def validate_audit_cadence(value: int | None) -> int | None:
    """Reject a zero/negative ``--audit`` cadence with a usable message.

    ``--audit 0`` used to silently disable the auditor — indistinguishable
    from a typo that turns the safety net off. Disabling is the default;
    asking for it explicitly is an error.
    """
    if value is not None and value <= 0:
        raise ConfigError(
            f"--audit cadence must be a positive access count, got {value}; "
            "omit the flag to run without auditing"
        )
    return value


# ---------------------------------------------------------------- commands


def cmd_models(args: argparse.Namespace) -> int:
    from repro.sim.report import format_table
    from repro.workloads import available_models, get_model

    rows = []
    for name in available_models():
        model = get_model(name)
        cacheable = sum(
            c.blocks for c in model.components if c.blocks < (1 << 20)
        )
        rows.append(
            [
                name,
                len(model.components),
                f"{cacheable * 64 // 1024} KB",
                f"{model.expected_miss_rate(1 << 14):.3f}",
            ]
        )
    print(
        format_table(
            ["model", "rings", "cacheable footprint", "est. miss @1MB"],
            rows,
            title="Bundled workload models",
        )
    )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.trace.analyze import profile_trace
    from repro.workloads import get_model

    model = get_model(args.model)
    trace = model.generate(args.refs, seed=args.seed)
    profile = profile_trace(trace)
    print(f"profile of {args.model} ({args.refs} references):")
    for key, value in profile.as_dict().items():
        if key == "miss_curve":
            print("  LRU miss curve:")
            for capacity, rate in sorted(value.items()):
                print(f"    {capacity * 64 // 1024:>6} KB: {rate:.3f}")
        else:
            print(f"  {key}: {value}")
    return 0


def _experiment_options(target, args: argparse.Namespace) -> dict:
    """The registry options this target accepts, taken from the CLI."""
    return {
        name: getattr(args, name)
        for name in target.options
        if getattr(args, name, None) is not None
    }


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.campaign.registry import get_experiment

    name = args.name
    target = get_experiment(name)
    result = target.run_serial(refs=args.refs, **_experiment_options(target, args))
    print(result.format())
    if name == "figure5" and args.chart:
        from repro.sim.plot import ascii_chart

        print()
        print(
            ascii_chart(
                [f"{mb}MB" for mb in result.sizes_mb],
                result.series,
                title=f"Figure 5 graph {result.graph} (deviation, lower is better)",
            )
        )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import average_deviation
    from repro.caches import SetAssociativeCache
    from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
    from repro.sim import CMPRunConfig, CMPRunner
    from repro.workloads import get_model

    validate_audit_cadence(args.audit)
    names = [n.strip() for n in args.workloads.split(",") if n.strip()]
    if not names:
        raise ConfigError("no workloads given")
    faults = None
    if args.faults:
        from repro.faults import FaultPlan

        if args.cache != "molecular":
            raise ConfigError(
                "--faults needs the molecular cache (got --cache "
                f"{args.cache})"
            )
        faults = FaultPlan.parse(args.faults)
    size = parse_size(args.size)
    traces = {
        asid: get_model(name).generate(args.refs, seed=args.seed, asid=asid)
        for asid, name in enumerate(names)
    }
    goals = {asid: args.goal for asid in range(len(names))}

    if args.cache == "molecular":
        config = MolecularCacheConfig.for_total_size(
            size, clusters=1, tiles_per_cluster=args.tiles, strict=False
        )
        cache = MolecularCache(
            config,
            resize_policy=ResizePolicy(mechanism=args.resize_mechanism),
            placement=args.placement,
        )
        for asid in range(len(names)):
            cache.assign_application(
                asid, goal=args.goal, tile_id=asid % args.tiles
            )
    else:
        cache = SetAssociativeCache(size, args.assoc)

    bus = sink = None
    if args.record:
        if args.cache != "molecular":
            print(
                "warning: --record needs the molecular cache; not recording",
                file=sys.stderr,
            )
        else:
            from repro.telemetry import EventBus, JsonlSink

            sink = JsonlSink(args.record)
            bus = EventBus(
                [sink],
                epoch_refs=args.record_epoch,
                sample_interval=args.record_sample,
                remote_search_sample=args.record_remote_sample,
            )

    profiler = None
    if args.profile is not None:
        if args.cache != "molecular":
            print(
                "warning: --profile needs the molecular cache; not profiling",
                file=sys.stderr,
            )
        else:
            from repro.prof import HotPathProfiler

            profiler = HotPathProfiler(sample_every=args.profile)
            cache.attach_profiler(profiler)

    runner = CMPRunner(
        cache,
        CMPRunConfig(
            args.miss_penalty,
            warmup_refs=args.refs // 4,
            audit_every=args.audit,
            faults=faults,
        ),
        telemetry=bus,
    )
    # The CMP runner issues references one at a time through sessions, so
    # the profiler cannot see stream wall clock — measure the run here
    # and hand it to the report.
    from repro.common.clock import tick

    run_started = tick()
    try:
        result = runner.run(traces)
    finally:
        if bus is not None:
            bus.close()
    run_wall = tick() - run_started
    print(f"{args.cache} cache, {args.size}, {len(names)} applications:")
    for asid, name in enumerate(names):
        print(f"  {name:10s} miss rate {result.miss_rate(asid):.3f}")
    if args.goal is not None:
        print(
            f"  average deviation from {args.goal:.0%} goal: "
            f"{average_deviation(result.miss_rates(), goals):.3f}"
        )
    if args.cache == "molecular":
        print(f"  partition sizes (molecules): {cache.partition_sizes()}")
        print(f"  mean molecules probed/access: "
              f"{cache.stats.mean_molecules_probed():.1f}")
        print(f"  mean access latency (cycles): "
              f"{cache.stats.mean_latency_cycles():.1f}")
        if faults is not None:
            stats = cache.stats
            print(
                f"  faults: {stats.faults_injected} injected, "
                f"{stats.molecules_retired} molecule(s) retired, "
                f"{stats.molecules_repaired} repaired, "
                f"{stats.lines_invalidated} line(s) invalidated"
            )
    if sink is not None:
        print(
            f"  telemetry: {sink.count} events -> {sink.path} "
            f"(replay with `python -m repro inspect {sink.path}`)"
        )
    if profiler is not None:
        print(profiler.format_report(run_wall))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    from repro.campaign import CampaignConfig, CampaignRunner, ResultStore
    from repro.campaign.registry import get_experiment

    if validate_audit_cadence(args.audit) is not None:
        # Worker processes inherit the environment, so this single
        # variable carries the audit cadence into every pool job.
        os.environ["REPRO_AUDIT"] = str(args.audit)

    target = get_experiment(args.name)
    options = _experiment_options(target, args)
    specs = target.jobs(refs=args.refs, seed=args.seed, **options)

    out = Path(args.out) if args.out else Path("campaigns") / args.name
    store = ResultStore(out)
    if args.distributed is not None and args.distributed >= 2:
        return _sweep_distributed(args, target, specs, options, store)
    config = CampaignConfig(
        # --distributed 1 degrades gracefully to the plain serial path:
        # one process, no leases, no coordination overhead.
        jobs=1 if args.distributed is not None else args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        resume=args.resume,
    )

    bus = sink = None
    if args.record:
        from repro.telemetry import EventBus, JsonlSink

        sink = JsonlSink(args.record)
        bus = EventBus([sink], epoch_refs=0)

    spans = None
    if args.spans:
        from repro.prof import SpanRecorder

        spans = SpanRecorder()

    runner = CampaignRunner(store, config, telemetry=bus, spans=spans)
    try:
        outcome = runner.run(specs, campaign=args.name, options=options)
    finally:
        if bus is not None:
            bus.close()
        if spans is not None:
            # Export whatever was recorded even on an interrupt — a
            # partial timeline is exactly what post-mortems need.
            path = spans.export(args.spans)
            print(
                f"campaign spans: {len(spans)} events -> {path} "
                "(load in Perfetto / chrome://tracing, or summarise with "
                f"`python -m repro trace-export {path}`)",
                file=sys.stderr,
            )

    result = target.assemble_results(
        specs, outcome.results_in_order(), **options
    )
    # Stdout carries exactly what `repro experiment <name>` prints, so the
    # two paths stay byte-comparable; campaign bookkeeping goes to stderr.
    print(result.format())
    print(f"{outcome.summary()} -> {store.root}", file=sys.stderr)
    if sink is not None:
        print(
            f"campaign telemetry: {sink.count} events -> {sink.path}",
            file=sys.stderr,
        )
    return 0


def _sweep_distributed(args, target, specs, options, store) -> int:
    """``repro sweep --distributed N``: N lease-protocol workers, one store."""
    from repro.campaign import (
        LeaseConfig,
        merge_worker_events,
        run_distributed,
    )
    from repro.faults.chaos import WorkerChaos

    config = LeaseConfig(
        ttl=args.ttl,
        job_timeout=args.timeout,
        max_reclaims=args.max_reclaims,
    )
    worker_chaos = None
    if args.worker_chaos:
        parts = [part.strip() for part in args.worker_chaos.split(";")]
        for part in parts:
            WorkerChaos.parse(part)  # fail fast on grammar errors
        worker_chaos = [
            parts[rank] if rank < len(parts) and parts[rank] else None
            for rank in range(args.distributed)
        ]

    outcome = run_distributed(
        store,
        specs,
        campaign=args.name,
        workers=args.distributed,
        options=options,
        config=config,
        record_events=bool(args.record),
        worker_chaos=worker_chaos,
    )
    if args.record:
        count = merge_worker_events(store.root, args.record)
        print(
            f"campaign telemetry: {count} events -> {args.record} "
            "(replay with `python -m repro inspect`)",
            file=sys.stderr,
        )
    if outcome.degraded:
        # The campaign *completed*, minus its poison jobs: say exactly
        # which they are and who died on them, and exit nonzero so
        # automation notices the degradation.
        print(outcome.degraded_report())
        print(f"{outcome.summary()} -> {store.root}", file=sys.stderr)
        return 1
    result = target.assemble_results(
        specs, outcome.results_in_order(store), **options
    )
    print(result.format())
    print(f"{outcome.summary()} -> {store.root}", file=sys.stderr)
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    import time

    from repro.campaign import (
        LeaseConfig,
        LeaseManager,
        ResultStore,
        run_worker,
    )
    from repro.faults.chaos import WorkerChaos

    bus = sink = None
    if args.record:
        from pathlib import Path

        from repro.telemetry import EventBus, JsonlSink

        Path(args.record).parent.mkdir(parents=True, exist_ok=True)
        sink = JsonlSink(args.record)
        bus = EventBus([sink], epoch_refs=0)
    clock = (
        (lambda: time.time() + args.skew) if args.skew else time.time
    )
    store = ResultStore(args.store)
    try:
        report = run_worker(
            store,
            config=LeaseConfig(
                ttl=args.ttl,
                heartbeat=args.heartbeat,
                job_timeout=args.job_timeout,
                max_reclaims=args.max_reclaims,
            ),
            owner=args.owner,
            telemetry=bus,
            chaos=WorkerChaos.parse(args.chaos),
            clock=clock,
        )
    finally:
        if bus is not None:
            bus.close()
            print(
                f"worker telemetry: {sink.count} events -> {sink.path}",
                file=sys.stderr,
            )
    print(report.summary(), file=sys.stderr)
    # Degraded drain (poison jobs parked by anyone) exits 1 so scripts
    # babysitting a fleet notice without parsing stderr.
    parked = LeaseManager(store).quarantined()
    if parked:
        print(
            f"worker: store holds {len(parked)} quarantined job(s); "
            "the campaign completed degraded",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    from repro.telemetry.replay import load_report

    report = load_report(args.events)
    print(report.format(max_rows=args.max_rows))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.audit.fuzz import (
        ALL_MECHANISMS,
        ALL_PLACEMENTS,
        ALL_TRIGGERS,
        fuzz,
    )

    placements = ALL_PLACEMENTS if args.placement == "all" else (args.placement,)
    triggers = ALL_TRIGGERS if args.trigger == "all" else (args.trigger,)
    mechanisms = ALL_MECHANISMS if args.mechanism == "all" else (args.mechanism,)
    report = fuzz(
        ops=args.ops,
        seed=args.seed,
        placements=placements,
        triggers=triggers,
        audit_every=args.audit,
        shrink=not args.no_shrink,
        log=lambda message: print(message, file=sys.stderr),
        faults=args.faults,
        mechanisms=mechanisms,
    )
    print(report.summary())
    if report.ok:
        return 0
    for failure in report.failures:
        print()
        print(f"FAIL {failure.summary()}")
        print("  minimal op stream:")
        for op in failure.ops[:40]:
            print(f"    {op}")
        if len(failure.ops) > 40:
            print(f"    ... {len(failure.ops) - 40} more")
        for divergence in failure.divergences[:10]:
            print(f"  divergence: {divergence}")
    return 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Clean serial run vs chaos-with-resume run, compared byte-for-byte."""
    from pathlib import Path

    from repro.campaign import CampaignConfig, CampaignRunner, ResultStore
    from repro.campaign.registry import get_experiment
    from repro.faults.chaos import ChaosPolicy

    target = get_experiment(args.name)
    specs = target.jobs(refs=args.refs, seed=args.seed)
    out = Path(args.out) if args.out else Path("campaigns") / f"chaos-{args.name}"

    clean = CampaignRunner(
        ResultStore(out / "clean"), CampaignConfig(jobs=1, resume=False)
    ).run(specs, campaign=args.name)
    clean_text = target.assemble_results(specs, clean.results_in_order()).format()

    policy = ChaosPolicy(
        seed=args.chaos_seed,
        crash_rate=args.crash,
        hang_rate=args.hang,
        corrupt_rate=args.corrupt,
        hang_seconds=args.hang_seconds,
    )
    store = ResultStore(out / "chaos")
    config = CampaignConfig(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        resume=True,
    )
    runs = 0
    while True:
        runs += 1
        runner = CampaignRunner(store, config, chaos=policy)
        try:
            outcome = runner.run(specs, campaign=args.name)
            break
        except ReproError as error:
            if runs > args.max_restarts:
                print(
                    f"error: chaos campaign still failing after {runs} "
                    f"run(s): {error}",
                    file=sys.stderr,
                )
                return 2
            print(
                f"chaos: run {runs} died ({error}); resuming from the "
                f"store",
                file=sys.stderr,
            )
    chaos_text = target.assemble_results(specs, outcome.results_in_order()).format()

    print(chaos_text)
    identical = chaos_text == clean_text
    verdict = "IDENTICAL to" if identical else "DIVERGES from"
    print(
        f"chaos: policy seed={policy.seed} crash={policy.crash_rate} "
        f"hang={policy.hang_rate} corrupt={policy.corrupt_rate}; "
        f"converged in {runs} run(s) ({outcome.summary()}); "
        f"output {verdict} the clean serial run",
        file=sys.stderr,
    )
    return 0 if identical else 1


def cmd_power(args: argparse.Namespace) -> int:
    from repro.power import CacheOrganization, CactiModel

    model = CactiModel()
    org = CacheOrganization(
        parse_size(args.size), args.assoc, args.line, args.ports
    )
    evaluation = model.evaluate(org)
    print(f"{args.size} {args.assoc}-way, {args.line}B lines, {args.ports} port(s):")
    print(f"  access time : {evaluation.access_time_ns:.2f} ns")
    print(f"  frequency   : {evaluation.frequency_mhz:.0f} MHz")
    print(f"  energy      : {evaluation.energy_nj:.2f} nJ/access")
    print(f"  power       : {evaluation.power_watts():.2f} W at own frequency")
    return 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    """Summarise a recorded span trace, optionally writing a filtered copy."""
    from repro.prof import load_trace, summarize_trace
    from repro.prof.spans import filter_trace

    events = load_trace(args.trace)
    if args.category:
        events = filter_trace(events, args.category)
    print(summarize_trace(events))
    if args.out:
        from repro.common.io import atomic_write_json

        atomic_write_json(
            args.out,
            {"traceEvents": events, "displayTimeUnit": "ms"},
            sort_keys=False,
        )
        print(f"wrote {len(events)} event(s) -> {args.out}", file=sys.stderr)
    return 0


def _parse_axis(text: str | None, cast):
    """``"10,100,1000"`` -> ``[10, 100, 1000]`` (None passes through)."""
    if text is None:
        return None
    values = [cast(part.strip()) for part in text.split(",") if part.strip()]
    if not values:
        raise ConfigError(f"empty axis value {text!r}")
    return values


def cmd_workloads(args: argparse.Namespace) -> int:
    """List the registered workload families and their members."""
    from repro.workloads.registry import available_families

    for family in available_families():
        print(f"{family.name} ({family.kind}): {family.description}")
        for member in family.members:
            print(f"  {member}")
    return 0


def cmd_tenants(args: argparse.Namespace) -> int:
    """Run the tenancy sweep (serial, campaign, or one recorded cell)."""
    from pathlib import Path

    from repro.campaign.registry import get_experiment

    target = get_experiment("tenancy")
    options = {
        name: value
        for name, value in (
            ("tenants", _parse_axis(args.tenants, int)),
            ("churn", _parse_axis(args.churn, float)),
            ("skew", _parse_axis(args.skew, float)),
            ("policies", _parse_axis(args.policies, str)),
        )
        if value is not None
    }

    if args.record:
        # One showcase cell with full telemetry instead of the sweep:
        # the most hostile grid point, under one explicit policy.
        from repro.sim.experiments.tenancy import record_tenancy_cell, resolve_grid
        from repro.sim.scale import scaled

        grid = resolve_grid(options)
        tenants, churn, skew, _ = max(
            grid, key=lambda cell: (cell[0], cell[1], cell[2])
        )
        policy = (options.get("policies") or ["need"])[0]
        refs = scaled(target.resolve_refs(args.refs))
        payload, events = record_tenancy_cell(
            tenants, churn, skew, policy, refs, seed=args.seed,
            path=args.record,
        )
        print(
            f"recorded tenancy cell: {tenants} tenants, churn {churn:g}, "
            f"skew {skew:g}, policy {policy} -> aggregate hit rate "
            f"{payload['aggregate_hit_rate']:.4f}, jain {payload['jain']:.3f}, "
            f"{payload['sla_violation_epochs']} SLA epoch(s)"
        )
        print(
            f"telemetry: {events} events -> {args.record} "
            "(replay with `python -m repro inspect`)",
            file=sys.stderr,
        )
        return 0

    if args.jobs is None:
        result = target.run_serial(refs=args.refs, seed=args.seed, **options)
        print(result.format())
        return 0

    from repro.campaign import CampaignConfig, CampaignRunner, ResultStore

    specs = target.jobs(refs=args.refs, seed=args.seed, **options)
    out = Path(args.out) if args.out else Path("campaigns") / "tenancy"
    store = ResultStore(out)
    config = CampaignConfig(jobs=args.jobs, resume=args.resume)
    runner = CampaignRunner(store, config)
    outcome = runner.run(specs, campaign="tenancy", options=options)
    result = target.assemble_results(
        specs, outcome.results_in_order(), **options
    )
    print(result.format())
    print(f"{outcome.summary()} -> {store.root}", file=sys.stderr)
    return 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    """Diff the benchmark ledger; non-zero exit on a regression (unless --soft)."""
    from repro.prof.ledger import (
        diff_ledger,
        format_report,
        read_ledger,
        singleton_metrics,
    )

    entries = read_ledger(args.ledger)
    if args.validate:
        # read_ledger already validated every entry against the schema.
        print(f"ledger OK: {len(entries)} valid entr(y/ies) in {args.ledger}")
    diffs = diff_ledger(entries, threshold=args.threshold)
    print(format_report(diffs, args.threshold,
                        singletons=singleton_metrics(entries)))
    regressions = [diff for diff in diffs if diff.regression]
    if regressions and args.soft:
        print(
            "bench-report: --soft set; reporting only, not failing",
            file=sys.stderr,
        )
        return 0
    return 1 if regressions else 0


# ------------------------------------------------------------------ parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Molecular Caches (MICRO 2006) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list bundled workload models")

    profile = sub.add_parser("profile", help="characterise a workload model")
    profile.add_argument("model")
    profile.add_argument("--refs", type=int, default=100_000)
    profile.add_argument("--seed", type=int, default=1)

    from repro.campaign.registry import experiment_names

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name", choices=experiment_names())
    experiment.add_argument("--refs", type=int, default=None,
                            help="references per application")
    experiment.add_argument("--graph", choices=["A", "B"], default="A",
                            help="figure5 graph")
    experiment.add_argument("--chart", action="store_true",
                            help="render figure5 as an ASCII chart")
    experiment.add_argument("--resize-mechanism",
                            choices=["flush", "chash"], default=None,
                            help="restrict the resize-mechanism experiment "
                                 "to one backend (default: compare both)")

    sweep = sub.add_parser(
        "sweep",
        help="run an experiment as a parallel, resumable campaign",
    )
    sweep.add_argument("name", choices=experiment_names())
    sweep.add_argument("--jobs", type=int, default=0,
                       help="worker processes (0 = one per CPU, 1 = serial "
                            "in-process)")
    sweep.add_argument("--resume", action="store_true",
                       help="skip jobs already completed in the result store")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-job timeout in seconds")
    sweep.add_argument("--retries", type=int, default=2,
                       help="retry budget per job for transient failures")
    sweep.add_argument("--out", default=None,
                       help="result store directory "
                            "(default: campaigns/<name>)")
    sweep.add_argument("--refs", type=int, default=None,
                       help="references per application")
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--graph", choices=["A", "B"], default="A",
                       help="figure5 graph")
    sweep.add_argument("--record", metavar="PATH", default=None,
                       help="record campaign lifecycle events to a JSONL "
                            "file (replay with `repro inspect`)")
    sweep.add_argument("--audit", metavar="CADENCE", nargs="?", type=int,
                       const=100_000, default=None,
                       help="run the invariant auditor every CADENCE "
                            "accesses inside every job (default 100000; "
                            "propagated to workers via $REPRO_AUDIT)")
    sweep.add_argument("--spans", metavar="PATH", default=None,
                       help="record job/chunk/queue/store spans to a "
                            "Chrome-tracing JSON file (view in Perfetto or "
                            "chrome://tracing)")
    sweep.add_argument("--resize-mechanism",
                       choices=["flush", "chash"], default=None,
                       help="restrict the resize-mechanism experiment to "
                            "one backend (default: compare both)")
    sweep.add_argument("--distributed", metavar="N", type=int, default=None,
                       help="drain the sweep with N lease-coordinated worker "
                            "processes over the shared store (1 = plain "
                            "serial, no coordination overhead)")
    sweep.add_argument("--ttl", type=float, default=15.0,
                       help="lease time-to-live in seconds before a dead "
                            "worker's job is reclaimed (--distributed only)")
    sweep.add_argument("--max-reclaims", type=int, default=3,
                       help="reclaims/failures before a job is quarantined "
                            "as poison (--distributed only)")
    sweep.add_argument("--worker-chaos", metavar="SPECS", default=None,
                       help="semicolon-separated per-worker sabotage "
                            "directives for fault-tolerance testing, e.g. "
                            "'kill@2;;hang@1:5' (--distributed only)")

    worker = sub.add_parser(
        "worker",
        help="drain a campaign store as one lease-protocol worker",
    )
    worker.add_argument("store",
                        help="result store directory holding the campaign "
                             "manifest (written by `repro sweep`)")
    worker.add_argument("--owner", default=None,
                        help="worker identity for leases "
                             "(default: host:pid:uuid)")
    worker.add_argument("--ttl", type=float, default=30.0,
                        help="lease time-to-live in seconds")
    worker.add_argument("--heartbeat", type=float, default=None,
                        help="lease renewal interval (default: ttl/3)")
    worker.add_argument("--job-timeout", type=float, default=None,
                        help="stop heartbeating a job after this many "
                             "seconds so peers can reclaim it")
    worker.add_argument("--max-reclaims", type=int, default=3,
                        help="reclaims/failures before a job is "
                             "quarantined as poison")
    worker.add_argument("--record", metavar="PATH", default=None,
                        help="record lease/job events to a JSONL file "
                             "(replay with `repro inspect`)")
    worker.add_argument("--chaos", metavar="SPEC", default=None,
                        help="self-sabotage directive for fault-tolerance "
                             "testing: kill@N, hang@N:SECONDS, "
                             "poison@PREFIX[:raise]")
    worker.add_argument("--skew", type=float, default=0.0,
                        help="artificial clock skew in seconds (testing)")

    simulate = sub.add_parser("simulate", help="run a workload mix on a cache")
    simulate.add_argument("--cache", choices=["molecular", "setassoc"],
                          default="molecular")
    simulate.add_argument("--size", default="4MB")
    simulate.add_argument("--assoc", type=int, default=4)
    simulate.add_argument("--tiles", type=int, default=4)
    simulate.add_argument("--placement", default="randy",
                          choices=["randy", "random", "lru_direct"])
    simulate.add_argument("--resize-mechanism",
                          choices=["flush", "chash"], default="flush",
                          help="how resizes are applied: flush withdrawn "
                               "molecules (the paper) or consistent-hash "
                               "remap (molecular cache only)")
    simulate.add_argument("--workloads", default="art,ammp,parser,mcf")
    simulate.add_argument("--goal", type=float, default=0.10)
    simulate.add_argument("--refs", type=int, default=200_000)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument("--miss-penalty", type=float, default=10.0)
    simulate.add_argument("--record", metavar="PATH", default=None,
                          help="record telemetry events to a JSONL file "
                               "(molecular cache only)")
    simulate.add_argument("--record-epoch", type=int, default=5_000,
                          help="accesses per telemetry metrics epoch")
    simulate.add_argument("--record-sample", type=int, default=0,
                          help="emit every Nth access as an AccessSampled "
                               "event (0 = off)")
    simulate.add_argument("--record-remote-sample", type=int, default=100,
                          help="emit every Nth RemoteSearch event "
                               "(1 = all; epoch aggregates are unaffected)")
    simulate.add_argument("--audit", metavar="CADENCE", nargs="?", type=int,
                          const=100_000, default=None,
                          help="run the invariant auditor every CADENCE "
                               "accesses (default 100000 when the flag is "
                               "given; $REPRO_AUDIT otherwise)")
    simulate.add_argument("--faults", metavar="SPEC", default=None,
                          help="comma-separated fault schedule, e.g. "
                               "'hard@5000:m3,degraded@10000:t1+8' "
                               "(molecular cache only)")
    simulate.add_argument("--profile", metavar="SAMPLE", nargs="?", type=int,
                          const=512, default=None,
                          help="print a per-stage hot-path breakdown; one "
                               "access in every SAMPLE is stage-timed "
                               "(default 512; molecular cache only)")

    inspect = sub.add_parser(
        "inspect", help="replay a recorded telemetry JSONL stream"
    )
    inspect.add_argument("events", help="JSONL file written by --record")
    inspect.add_argument("--max-rows", type=int, default=40,
                         help="cap rows per table (use a large value for "
                              "the full timeline)")

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing with the invariant auditor",
    )
    fuzz.add_argument("--ops", type=int, default=50_000,
                      help="operations per placement x trigger cell")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--placement", default="all",
                      choices=["all", "random", "randy", "lru_direct"])
    fuzz.add_argument("--trigger", default="all",
                      choices=["all", "constant", "global_adaptive",
                               "per_app_adaptive"])
    fuzz.add_argument("--audit", metavar="CADENCE", nargs="?", type=int,
                      const=None, default=None,
                      help="audit every CADENCE operations (default: the "
                           "harness's 500-op epoch)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report failures without minimising them")
    fuzz.add_argument("--faults", action="store_true",
                      help="mix random fault schedules (retirement, "
                           "transient drops, degraded tiles) into every "
                           "cell's stream")
    fuzz.add_argument("--mechanism", default="flush",
                      choices=["all", "flush", "chash"],
                      help="resize mechanism axis (default flush keeps the "
                           "established fixed-seed streams byte-stable)")

    chaos = sub.add_parser(
        "chaos",
        help="chaos-test the campaign runner against a clean serial run",
    )
    chaos.add_argument("name", choices=experiment_names())
    chaos.add_argument("--refs", type=int, default=None,
                       help="references per application")
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--jobs", type=int, default=2,
                       help="worker processes for the chaos run")
    chaos.add_argument("--chaos-seed", type=int, default=0,
                       help="seed of the sabotage policy")
    chaos.add_argument("--crash", type=float, default=0.2,
                       help="per-job worker crash probability")
    chaos.add_argument("--hang", type=float, default=0.0,
                       help="per-job hang probability (needs --timeout)")
    chaos.add_argument("--corrupt", type=float, default=0.2,
                       help="per-job corrupted-result probability")
    chaos.add_argument("--hang-seconds", type=float, default=30.0,
                       help="how long a sabotaged job hangs")
    chaos.add_argument("--timeout", type=float, default=None,
                       help="per-job timeout in seconds")
    chaos.add_argument("--retries", type=int, default=2,
                       help="retry budget per job")
    chaos.add_argument("--max-restarts", type=int, default=3,
                       help="resume attempts before giving up")
    chaos.add_argument("--out", default=None,
                       help="store directory (default: "
                            "campaigns/chaos-<name>)")

    power = sub.add_parser("power", help="evaluate a cache organization")
    power.add_argument("--size", default="8MB")
    power.add_argument("--assoc", type=int, default=4)
    power.add_argument("--line", type=int, default=64)
    power.add_argument("--ports", type=int, default=4)

    trace_export = sub.add_parser(
        "trace-export",
        help="summarise or filter a recorded campaign span trace",
    )
    trace_export.add_argument("trace", help="span JSON written by "
                                            "`repro sweep --spans`")
    trace_export.add_argument("--category", default=None,
                              help="keep only one span category "
                                   "(job, chunk, queue, store, campaign)")
    trace_export.add_argument("--out", default=None,
                              help="write the (filtered) trace to a new "
                                   "Chrome-tracing JSON file")

    sub.add_parser(
        "workloads",
        help="list registered workload families and their members",
    )

    tenants = sub.add_parser(
        "tenants",
        help="multi-tenant cache-service sweep (policies vs churn/skew)",
    )
    tenants.add_argument("--tenants", default=None,
                         help="comma list of tenant counts (default 10,100)")
    tenants.add_argument("--churn", default=None,
                         help="comma list of churn rates (default 0,0.3)")
    tenants.add_argument("--skew", default=None,
                         help="comma list of tenant-popularity skews "
                              "(default 0.5,1)")
    tenants.add_argument("--policies", default=None,
                         help="comma list of allocation policies "
                              "(default static,need,alg1)")
    tenants.add_argument("--refs", type=int, default=None,
                         help="references per cell")
    tenants.add_argument("--seed", type=int, default=1)
    tenants.add_argument("--jobs", type=int, default=None,
                         help="run as a campaign with this many workers "
                              "(0 = one per CPU; omit for serial in-process)")
    tenants.add_argument("--resume", action="store_true",
                         help="skip jobs already completed in the result "
                              "store (campaign mode)")
    tenants.add_argument("--out", default=None,
                         help="campaign result store directory "
                              "(default: campaigns/tenancy)")
    tenants.add_argument("--record", metavar="PATH", default=None,
                         help="instead of the sweep, run the most hostile "
                              "grid cell with telemetry recorded to PATH "
                              "(replay with `repro inspect`)")

    bench_report = sub.add_parser(
        "bench-report",
        help="diff the benchmark ledger and flag perf regressions",
    )
    bench_report.add_argument("--ledger",
                              default="benchmarks/results/ledger",
                              help="ledger directory (default: "
                                   "benchmarks/results/ledger)")
    bench_report.add_argument("--threshold", type=float, default=0.20,
                              help="regression threshold as a fraction "
                                   "(default 0.20 = 20%%)")
    bench_report.add_argument("--soft", action="store_true",
                              help="report regressions but exit 0 "
                                   "(CI soft gate)")
    bench_report.add_argument("--validate", action="store_true",
                              help="also report that every entry passed "
                                   "schema validation")

    return parser


_COMMANDS = {
    "models": cmd_models,
    "profile": cmd_profile,
    "experiment": cmd_experiment,
    "sweep": cmd_sweep,
    "worker": cmd_worker,
    "simulate": cmd_simulate,
    "inspect": cmd_inspect,
    "fuzz": cmd_fuzz,
    "chaos": cmd_chaos,
    "power": cmd_power,
    "trace-export": cmd_trace_export,
    "bench-report": cmd_bench_report,
    "workloads": cmd_workloads,
    "tenants": cmd_tenants,
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout was closed early (e.g. `repro inspect ... | head`).
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
