"""MESI coherence for private L1 caches above a shared last-level cache.

The paper's Figure 2 lists a "Cache Coherency Unit" among Ulmo's
responsibilities: with per-core L1s above the (molecular or traditional)
shared cache, lines cached privately must stay coherent. This module
implements a classic snooping MESI protocol:

* every L1 line carries a state — Modified / Exclusive / Shared / Invalid;
* a read miss broadcasts ``BusRd``: a Modified holder supplies the line
  (writing it back) and both end Shared; with no other holder the
  requester loads Exclusive;
* a write miss broadcasts ``BusRdX`` (everyone else invalidates); a write
  to a Shared line broadcasts ``BusUpgr``;
* silent E->M upgrade on a write hit.

The shared level below can be any object with ``access_block`` — a
:class:`~repro.caches.SetAssociativeCache` or a
:class:`~repro.molecular.MolecularCache` — which is exactly how the
molecular cache composes with coherent cores.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.caches.setassoc import SetAssociativeCache
from repro.common.errors import ConfigError, SimulationError


class MESIState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass(slots=True)
class CoherenceStats:
    """Protocol activity counters."""

    bus_reads: int = 0
    bus_read_exclusives: int = 0
    bus_upgrades: int = 0
    invalidations_received: int = 0
    interventions: int = 0  # a Modified holder supplied the line
    writebacks: int = 0
    read_hits: int = 0
    write_hits: int = 0
    read_misses: int = 0
    write_misses: int = 0

    @property
    def bus_transactions(self) -> int:
        return self.bus_reads + self.bus_read_exclusives + self.bus_upgrades


class CoherentL1:
    """A private L1 with MESI state per resident line."""

    def __init__(self, core_id: int, size_bytes: int, associativity: int,
                 line_bytes: int = 64) -> None:
        self.core_id = core_id
        self.cache = SetAssociativeCache(
            size_bytes, associativity, line_bytes, name=f"L1[{core_id}]"
        )
        self.states: dict[int, MESIState] = {}

    def state_of(self, block: int) -> MESIState:
        return self.states.get(block, MESIState.INVALID)

    def holds(self, block: int) -> bool:
        return self.state_of(block) is not MESIState.INVALID

    def _touch(self, block: int) -> int | None:
        """Install/refresh a block in the data array; returns an evicted
        block whose state must also be dropped."""
        result = self.cache.access_block(block, self.core_id)
        return result.evicted_block

    def install(self, block: int, state: MESIState) -> int | None:
        evicted = self._touch(block)
        if evicted is not None and evicted != block:
            self.states.pop(evicted, None)
        self.states[block] = state
        return evicted

    def invalidate(self, block: int) -> MESIState:
        previous = self.states.pop(block, MESIState.INVALID)
        return previous

    def downgrade(self, block: int) -> MESIState:
        previous = self.state_of(block)
        if previous in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
            self.states[block] = MESIState.SHARED
        return previous


class SnoopingBus:
    """N coherent L1s over one shared cache, connected by a snooping bus.

    Parameters
    ----------
    cores:
        Number of private L1s.
    l1_size_bytes / l1_associativity / line_bytes:
        Geometry of each L1.
    shared_cache:
        The next level (must expose ``access_block(block, asid, write)``).
    asid_of_core:
        ASID presented to the shared level for each core's traffic
        (defaults to the core id — relevant when the shared level is a
        molecular cache with per-application regions).
    """

    def __init__(
        self,
        cores: int,
        shared_cache,
        l1_size_bytes: int = 16 * 1024,
        l1_associativity: int = 4,
        line_bytes: int = 64,
        asid_of_core: dict[int, int] | None = None,
    ) -> None:
        if cores < 1:
            raise ConfigError("need at least one core")
        self.l1s = [
            CoherentL1(core, l1_size_bytes, l1_associativity, line_bytes)
            for core in range(cores)
        ]
        self.shared = shared_cache
        self.stats = CoherenceStats()
        self._asid_of_core = asid_of_core or {}

    def asid_of(self, core: int) -> int:
        return self._asid_of_core.get(core, core)

    # --------------------------------------------------------------- checks

    def check_invariants(self) -> None:
        """SWMR: at most one M/E holder per block; M/E excludes all others."""
        holders: dict[int, list[tuple[int, MESIState]]] = {}
        for l1 in self.l1s:
            for block, state in l1.states.items():
                holders.setdefault(block, []).append((l1.core_id, state))
        for block, entries in holders.items():
            exclusive = [e for e in entries if e[1] in
                         (MESIState.MODIFIED, MESIState.EXCLUSIVE)]
            if exclusive and len(entries) > 1:
                raise SimulationError(
                    f"block {block}: exclusive holder coexists with sharers: "
                    f"{entries}"
                )
            if len(exclusive) > 1:  # pragma: no cover - caught above
                raise SimulationError(f"block {block}: two exclusive holders")

    # --------------------------------------------------------------- access

    def read(self, core: int, block: int) -> bool:
        """Core read; returns True on an L1 hit."""
        l1 = self.l1s[core]
        state = l1.state_of(block)
        if state is not MESIState.INVALID:
            self.stats.read_hits += 1
            l1._touch(block)
            return True

        self.stats.read_misses += 1
        self.stats.bus_reads += 1
        shared_elsewhere = False
        for other in self.l1s:
            if other is l1:
                continue
            previous = other.downgrade(block)
            if previous is MESIState.MODIFIED:
                # Intervention: the dirty holder supplies the line and
                # writes it back to the shared level.
                self.stats.interventions += 1
                self.stats.writebacks += 1
                shared_elsewhere = True
            elif previous in (MESIState.EXCLUSIVE, MESIState.SHARED):
                shared_elsewhere = True
        self.shared.access_block(block, self.asid_of(core), False)
        l1.install(
            block,
            MESIState.SHARED if shared_elsewhere else MESIState.EXCLUSIVE,
        )
        return False

    def write(self, core: int, block: int) -> bool:
        """Core write; returns True on an L1 hit (M/E)."""
        l1 = self.l1s[core]
        state = l1.state_of(block)
        if state is MESIState.MODIFIED:
            self.stats.write_hits += 1
            l1._touch(block)
            return True
        if state is MESIState.EXCLUSIVE:
            self.stats.write_hits += 1
            l1._touch(block)
            l1.states[block] = MESIState.MODIFIED  # silent upgrade
            return True
        if state is MESIState.SHARED:
            # Upgrade: invalidate the other sharers, no data transfer.
            self.stats.write_hits += 1
            self.stats.bus_upgrades += 1
            self._invalidate_others(core, block)
            l1._touch(block)
            l1.states[block] = MESIState.MODIFIED
            return True

        self.stats.write_misses += 1
        self.stats.bus_read_exclusives += 1
        self._invalidate_others(core, block)
        self.shared.access_block(block, self.asid_of(core), True)
        l1.install(block, MESIState.MODIFIED)
        return False

    def _invalidate_others(self, core: int, block: int) -> None:
        for other in self.l1s:
            if other.core_id == core:
                continue
            previous = other.invalidate(block)
            if previous is MESIState.MODIFIED:
                self.stats.writebacks += 1
            if previous is not MESIState.INVALID:
                self.stats.invalidations_received += 1

    def access(self, core: int, block: int, write: bool = False) -> bool:
        return self.write(core, block) if write else self.read(core, block)
