"""Partitioned shared caches from the paper's related work (Suh et al.).

Section 2 positions molecular caches against "the state of the art" in
cache partitioning — Suh, Rudolph and Devadas' two schemes:

* **Modified LRU** — replacement depends on the requesting process's
  quota: "If the process has not exceeded its predefined space threshold,
  a global replacement is performed, else a local replacement is
  performed" (a victim from the process's own lines).
* **Column caching** — "restricts some processes to place data in some
  'columns' (i.e. ways) of a multi-way associative cache"; lookups still
  search every way, placement is confined to the permitted columns.

Both are implemented over the same per-set ``OrderedDict`` machinery as
:class:`~repro.caches.SetAssociativeCache`, so they drop into every runner
and experiment in the library. A comparison bench
(`benchmarks/test_ablation_partitioning.py`) pits them against the
molecular cache on the SPEC quartet.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.caches.line import CacheLine
from repro.caches.stats import CacheStats
from repro.common.bitops import ilog2, is_power_of_two
from repro.common.errors import ConfigError
from repro.common.types import Access, AccessResult


class _PartitionedBase:
    """Shared geometry/stats plumbing for the partitioned caches."""

    def __init__(self, size_bytes: int, associativity: int, line_bytes: int,
                 name: str) -> None:
        if not is_power_of_two(size_bytes) or not is_power_of_two(line_bytes):
            raise ConfigError("size and line size must be powers of two")
        if associativity < 1:
            raise ConfigError("associativity must be >= 1")
        total_lines = size_bytes // line_bytes
        if total_lines % associativity:
            raise ConfigError("lines do not divide into sets")
        num_sets = total_lines // associativity
        if not is_power_of_two(num_sets):
            raise ConfigError("number of sets must be a power of two")
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.num_sets = num_sets
        self.name = name
        self.stats = CacheStats()
        self._line_shift = ilog2(line_bytes)
        self._set_mask = num_sets - 1
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(num_sets)
        ]

    def access(self, access: Access) -> AccessResult:
        return self.access_block(
            access.address >> self._line_shift, access.asid, access.is_write
        )

    def occupancy_by_asid(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for cache_set in self._sets:
            for line in cache_set.values():
                counts[line.asid] = counts.get(line.asid, 0) + 1
        return counts

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class ModifiedLRUCache(_PartitionedBase):
    """Suh et al.'s Modified LRU: quota-gated global/local replacement.

    Parameters
    ----------
    quotas:
        ``asid -> maximum resident lines``. Applications without an entry
        are unconstrained (always global replacement). Quotas may be
        changed at run time via :meth:`set_quota` (Suh's scheme re-derives
        them periodically from marginal-gain counters; supplying that
        outer loop is the caller's choice).
    """

    def __init__(
        self,
        size_bytes: int,
        associativity: int,
        line_bytes: int = 64,
        quotas: dict[int, int] | None = None,
        name: str = "",
    ) -> None:
        super().__init__(size_bytes, associativity, line_bytes,
                         name or f"{size_bytes >> 10}KB modified-LRU")
        self.quotas: dict[int, int] = dict(quotas or {})
        self._resident: dict[int, int] = {}

    def set_quota(self, asid: int, lines: int | None) -> None:
        """Set (or clear, with ``None``) an application's line quota."""
        if lines is None:
            self.quotas.pop(asid, None)
        elif lines < 0:
            raise ConfigError("quota cannot be negative")
        else:
            self.quotas[asid] = lines

    def resident_lines(self, asid: int) -> int:
        return self._resident.get(asid, 0)

    def _over_quota(self, asid: int) -> bool:
        quota = self.quotas.get(asid)
        return quota is not None and self._resident.get(asid, 0) >= quota

    def access_block(self, block: int, asid: int = 0, write: bool = False) -> AccessResult:
        cache_set = self._sets[block & self._set_mask]
        line = cache_set.get(block)
        if line is not None:
            self.stats.record_access(asid, hit=True)
            cache_set.move_to_end(block)
            if write:
                line.dirty = True
            return AccessResult(hit=True)

        self.stats.record_access(asid, hit=False)
        evicted_block: int | None = None
        writeback = False
        if len(cache_set) >= self.associativity:
            evicted_block = self._choose_victim(cache_set, asid)
            victim = cache_set.pop(evicted_block)
            writeback = victim.dirty
            self._resident[victim.asid] = self._resident.get(victim.asid, 1) - 1
            self.stats.record_eviction(victim.asid, writeback)
        cache_set[block] = CacheLine(block=block, asid=asid, dirty=write)
        self._resident[asid] = self._resident.get(asid, 0) + 1
        return AccessResult(hit=False, evicted_block=evicted_block, writeback=writeback)

    def _choose_victim(self, cache_set: OrderedDict[int, CacheLine], asid: int) -> int:
        if self._over_quota(asid):
            # Local replacement: the requester's own LRU line, if it has
            # one in this set; otherwise fall back to global LRU.
            for block, line in cache_set.items():
                if line.asid == asid:
                    return block
        return next(iter(cache_set))


class ColumnCache(_PartitionedBase):
    """Suh et al.'s column caching: way-restricted placement.

    Parameters
    ----------
    columns:
        ``asid -> tuple of way indices`` the application may *place* lines
        into. Applications without an entry may use every way. Lookups
        always search the whole set (data placed before a re-assignment
        remains reachable, as in the original proposal).
    """

    def __init__(
        self,
        size_bytes: int,
        associativity: int,
        line_bytes: int = 64,
        columns: dict[int, tuple[int, ...]] | None = None,
        name: str = "",
    ) -> None:
        super().__init__(size_bytes, associativity, line_bytes,
                         name or f"{size_bytes >> 10}KB column-cache")
        self._columns: dict[int, tuple[int, ...]] = {}
        # way occupancy is tracked per set: way index -> block
        self._ways: list[list[int | None]] = [
            [None] * associativity for _ in range(self.num_sets)
        ]
        self._way_of: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        for asid, ways in (columns or {}).items():
            self.assign_columns(asid, ways)

    def assign_columns(self, asid: int, ways: tuple[int, ...]) -> None:
        """Restrict an application's placement to the given ways."""
        if not ways:
            raise ConfigError("an application needs at least one column")
        if any(not 0 <= w < self.associativity for w in ways):
            raise ConfigError(
                f"ways must be in [0, {self.associativity}), got {ways}"
            )
        self._columns[asid] = tuple(sorted(set(ways)))

    def columns_of(self, asid: int) -> tuple[int, ...]:
        return self._columns.get(asid, tuple(range(self.associativity)))

    def access_block(self, block: int, asid: int = 0, write: bool = False) -> AccessResult:
        set_index = block & self._set_mask
        cache_set = self._sets[set_index]
        line = cache_set.get(block)
        if line is not None:
            self.stats.record_access(asid, hit=True)
            cache_set.move_to_end(block)
            if write:
                line.dirty = True
            return AccessResult(hit=True)

        self.stats.record_access(asid, hit=False)
        ways = self._ways[set_index]
        way_of = self._way_of[set_index]
        permitted = self.columns_of(asid)

        evicted_block: int | None = None
        writeback = False
        target_way = None
        for way in permitted:  # an empty permitted column first
            if ways[way] is None:
                target_way = way
                break
        if target_way is None:
            # Evict the least-recently-used line among the permitted ways.
            for candidate in cache_set:  # OrderedDict: oldest first
                way = way_of[candidate]
                if way in permitted:
                    target_way = way
                    evicted_block = candidate
                    break
            if target_way is None:  # pragma: no cover - permitted non-empty
                raise ConfigError("no evictable line in permitted columns")
            victim = cache_set.pop(evicted_block)
            writeback = victim.dirty
            del way_of[evicted_block]
            self.stats.record_eviction(victim.asid, writeback)

        ways[target_way] = block
        way_of[block] = target_way
        cache_set[block] = CacheLine(block=block, asid=asid, dirty=write)
        return AccessResult(hit=False, evicted_block=evicted_block, writeback=writeback)
