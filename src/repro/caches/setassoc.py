"""Set-associative cache simulator (direct-mapped is associativity 1).

This is the workhorse baseline: the paper's DM / 2-way / 4-way / 8-way
shared L2 configurations (Table 1, Figure 5, Table 2) are all instances of
:class:`SetAssociativeCache`. Per-ASID statistics come for free because
every access carries its application's ASID, which is how the shared-cache
interference study (Table 1) and the deviation metric are computed.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import repeat

import numpy as np

from repro.caches.line import CacheLine
from repro.caches.replacement import ReplacementPolicy, make_replacement_policy
from repro.caches.stats import CacheStats
from repro.common.bitops import ilog2, is_power_of_two
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRNG
from repro.common.types import Access, AccessResult


class SetAssociativeCache:
    """A classic N-way set-associative cache with pluggable replacement.

    Parameters
    ----------
    size_bytes:
        Total data capacity; must be a power of two.
    associativity:
        Ways per set (1 = direct mapped). Must divide the number of lines.
    line_bytes:
        Line (block) size in bytes; the paper uses 64 B throughout.
    policy:
        Replacement policy name (``"lru"``, ``"fifo"``, ``"random"``) or a
        :class:`ReplacementPolicy` instance.
    rng:
        Deterministic RNG handed to the Random policy when ``policy`` is
        given by name.
    name:
        Label used in reports (e.g. ``"8MB 4way"``).
    """

    def __init__(
        self,
        size_bytes: int,
        associativity: int,
        line_bytes: int = 64,
        policy: str | ReplacementPolicy = "lru",
        rng: DeterministicRNG | None = None,
        name: str = "",
    ) -> None:
        if not is_power_of_two(size_bytes):
            raise ConfigError(f"cache size must be a power of two, got {size_bytes}")
        if not is_power_of_two(line_bytes):
            raise ConfigError(f"line size must be a power of two, got {line_bytes}")
        if associativity < 1:
            raise ConfigError(f"associativity must be >= 1, got {associativity}")
        total_lines = size_bytes // line_bytes
        if total_lines == 0 or total_lines % associativity != 0:
            raise ConfigError(
                f"{size_bytes} B / {line_bytes} B lines does not divide into "
                f"{associativity}-way sets"
            )
        num_sets = total_lines // associativity
        if not is_power_of_two(num_sets):
            raise ConfigError(
                f"number of sets ({num_sets}) must be a power of two "
                f"(size {size_bytes}, {associativity}-way, {line_bytes} B lines)"
            )

        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.num_sets = num_sets
        self.name = name or f"{size_bytes // 1024}KB {associativity}way"
        self.stats = CacheStats()

        if isinstance(policy, ReplacementPolicy):
            self._policy = policy
        else:
            self._policy = make_replacement_policy(policy, rng)

        self._line_shift = ilog2(line_bytes)
        self._set_mask = num_sets - 1
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(num_sets)
        ]

    # ------------------------------------------------------------------ API

    @property
    def policy(self) -> ReplacementPolicy:
        return self._policy

    def block_of(self, address: int) -> int:
        """Block number for a byte address."""
        return address >> self._line_shift

    def access(self, access: Access) -> AccessResult:
        """Simulate one memory reference given as an :class:`Access`."""
        return self.access_block(
            access.address >> self._line_shift, access.asid, access.is_write
        )

    def access_block(self, block: int, asid: int = 0, write: bool = False) -> AccessResult:
        """Fast-path access by pre-computed block number.

        Bulk drivers use this to avoid constructing an :class:`Access`
        object per reference.
        """
        cache_set = self._sets[block & self._set_mask]
        line = cache_set.get(block)
        if line is not None:
            self.stats.record_access(asid, hit=True)
            self._policy.touch(cache_set, block)
            if write:
                line.dirty = True
            return AccessResult(hit=True)

        self.stats.record_access(asid, hit=False)
        evicted_block: int | None = None
        writeback = False
        if len(cache_set) >= self.associativity:
            evicted_block = self._policy.victim(cache_set)
            victim_line = cache_set.pop(evicted_block)
            writeback = victim_line.dirty
            self.stats.record_eviction(victim_line.asid, writeback)
        cache_set[block] = CacheLine(block=block, asid=asid, dirty=write)
        return AccessResult(hit=False, evicted_block=evicted_block, writeback=writeback)

    def access_many(self, blocks, asids=0, writes=False) -> int:
        """Batched fast path mirroring the molecular engine's contract.

        Streams a whole reference array with the per-ASID stat counters
        resolved once per ASID run instead of per access, and without
        constructing an :class:`AccessResult` per reference. Stats are
        byte-identical to calling :meth:`access_block` per element
        (``tests/test_prop_batched.py`` checks the equivalence).
        Returns the number of accesses simulated.
        """
        if isinstance(blocks, np.ndarray):
            blocks = blocks.tolist()
        n = len(blocks)
        asid_iter = (
            asids.tolist() if isinstance(asids, np.ndarray)
            else asids if isinstance(asids, (list, tuple))
            else repeat(asids)
        )
        write_iter = (
            writes.tolist() if isinstance(writes, np.ndarray)
            else writes if isinstance(writes, (list, tuple))
            else repeat(writes)
        )
        stats = self.stats
        tot = stats.total
        wtot = stats.window_total
        sets = self._sets
        mask = self._set_mask
        policy = self._policy
        touch = policy.touch
        associativity = self.associativity
        counters_for = stats.counters_for
        cur_asid: int | None = None
        tc = wc = None
        for block, asid, write in zip(blocks, asid_iter, write_iter):
            if asid != cur_asid:
                tc, wc = counters_for(asid)
                cur_asid = asid
            cache_set = sets[block & mask]
            line = cache_set.get(block)
            tot.accesses += 1
            wtot.accesses += 1
            tc.accesses += 1
            wc.accesses += 1
            if line is not None:
                tot.hits += 1
                wtot.hits += 1
                tc.hits += 1
                wc.hits += 1
                touch(cache_set, block)
                if write:
                    line.dirty = True
                continue
            if len(cache_set) >= associativity:
                evicted_block = policy.victim(cache_set)
                victim_line = cache_set.pop(evicted_block)
                stats.record_eviction(victim_line.asid, victim_line.dirty)
            cache_set[block] = CacheLine(block=block, asid=asid, dirty=write)
        return n

    def access_session(self) -> "_SetAssocSession":
        """Allocation-free per-access session (``access(...) -> bool``).

        The set-associative twin of the molecular cache's session: the
        same stats updates as :meth:`access_block` without the
        ``AccessResult``, for feedback drivers that interleave
        applications one reference at a time.
        """
        return _SetAssocSession(self)

    def run(self, blocks, asids=None, writes=None) -> CacheStats:
        """Feed an iterable of block numbers through the cache.

        ``asids``/``writes`` are optional parallel iterables; scalars are
        broadcast. Delegates to :meth:`access_many` (byte-identical to
        the scalar loop) after materialising any lazy iterables. Returns
        :attr:`stats` for convenience.
        """
        if asids is None:
            asids = 0
        if writes is None:
            writes = False
        if not isinstance(blocks, (list, tuple, np.ndarray)):
            blocks = list(blocks)
        if not isinstance(asids, (int, list, tuple, np.ndarray)):
            asids = list(asids)
        if not isinstance(writes, (bool, list, tuple, np.ndarray)):
            writes = list(writes)
        self.access_many(blocks, asids, writes)
        return self.stats

    # --------------------------------------------------------- introspection

    def contains_block(self, block: int) -> bool:
        """True if the block is currently resident (no state update)."""
        return block in self._sets[block & self._set_mask]

    def iter_sets(self):
        """Iterate the sets in index order (read-only audit hook).

        The audit subsystem (:mod:`repro.audit.invariants`) walks every
        set to check structural invariants; the dispatch there keys off
        this method's presence.
        """
        return iter(self._sets)

    def resident_blocks(self) -> list[int]:
        """All resident block numbers (test/diagnostic helper)."""
        resident: list[int] = []
        for cache_set in self._sets:
            resident.extend(cache_set.keys())
        return resident

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(cache_set) for cache_set in self._sets)

    def occupancy_by_asid(self) -> dict[int, int]:
        """Resident line count per owning ASID (shared-cache diagnostics)."""
        counts: dict[int, int] = {}
        for cache_set in self._sets:
            for line in cache_set.values():
                counts[line.asid] = counts.get(line.asid, 0) + 1
        return counts

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines dropped."""
        dirty = 0
        for cache_set in self._sets:
            for line in cache_set.values():
                if line.dirty:
                    dirty += 1
            cache_set.clear()
        return dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"SetAssociativeCache(name={self.name!r}, size={self.size_bytes}, "
            f"assoc={self.associativity}, line={self.line_bytes}, "
            f"policy={self._policy.name})"
        )


class _SetAssocSession:
    """Per-access fast path bound to one :class:`SetAssociativeCache`."""

    __slots__ = ("_cache", "_counters")

    def __init__(self, cache: SetAssociativeCache) -> None:
        self._cache = cache
        # (cumulative, window) counter pairs per ASID. Valid for the
        # session's lifetime: set-associative windows are only reset by
        # external callers, and the contract (as for the molecular
        # session) is that stats are not reset while a session is live.
        self._counters: dict[int, tuple] = {}

    def access(self, block: int, asid: int = 0, write: bool = False) -> bool:
        cache = self._cache
        stats = cache.stats
        pair = self._counters.get(asid)
        if pair is None:
            pair = stats.counters_for(asid)
            self._counters[asid] = pair
        tc, wc = pair
        tot = stats.total
        wtot = stats.window_total
        cache_set = cache._sets[block & cache._set_mask]
        line = cache_set.get(block)
        tot.accesses += 1
        wtot.accesses += 1
        tc.accesses += 1
        wc.accesses += 1
        if line is not None:
            tot.hits += 1
            wtot.hits += 1
            tc.hits += 1
            wc.hits += 1
            cache._policy.touch(cache_set, block)
            if write:
                line.dirty = True
            return True
        if len(cache_set) >= cache.associativity:
            evicted_block = cache._policy.victim(cache_set)
            victim_line = cache_set.pop(evicted_block)
            stats.record_eviction(victim_line.asid, victim_line.dirty)
        cache_set[block] = CacheLine(block=block, asid=asid, dirty=write)
        return False
