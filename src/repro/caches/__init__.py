"""Traditional set-associative cache simulator (the paper's baselines).

This package is the modified-Dinero equivalent the paper runs its traces
through: direct-mapped and N-way set-associative caches with LRU / FIFO /
Random replacement, per-ASID statistics for shared-cache studies, and a
two-level (per-core L1 + shared L2) hierarchy.
"""

from repro.caches.coherence import (
    CoherenceStats,
    CoherentL1,
    MESIState,
    SnoopingBus,
)
from repro.caches.line import CacheLine
from repro.caches.partitioned import ColumnCache, ModifiedLRUCache
from repro.caches.replacement import (
    FIFOReplacement,
    LRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
    make_replacement_policy,
)
from repro.caches.setassoc import SetAssociativeCache
from repro.caches.stats import AsidCounters, CacheStats
from repro.caches.hierarchy import CacheHierarchy

__all__ = [
    "AsidCounters",
    "CacheHierarchy",
    "CacheLine",
    "CacheStats",
    "CoherenceStats",
    "CoherentL1",
    "ColumnCache",
    "ModifiedLRUCache",
    "FIFOReplacement",
    "LRUReplacement",
    "MESIState",
    "RandomReplacement",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "SnoopingBus",
    "make_replacement_policy",
]
