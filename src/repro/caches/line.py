"""Cache line bookkeeping record."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class CacheLine:
    """State of one resident cache line.

    The simulators key their per-set maps by the full *block number* (byte
    address divided by the line size), so the line record does not need to
    store a tag — only the metadata that outlives the lookup: the dirty bit
    (drives writeback counts) and the owning ASID (drives per-application
    eviction statistics in shared caches).
    """

    block: int
    asid: int = 0
    dirty: bool = False
