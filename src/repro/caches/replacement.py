"""Replacement policies for set-associative caches.

The paper's baselines use LRU (the best of FIFO/Random/LRU, per section
3.3); FIFO and Random are provided for completeness and for the replacement
comparison studies. A policy operates on one set at a time; sets are
``OrderedDict[block -> CacheLine]`` so LRU recency is encoded by dictionary
order (oldest first), which makes `touch` and `victim` O(1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from itertools import islice

from repro.caches.line import CacheLine
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRNG, XorShift64


class ReplacementPolicy(ABC):
    """Strategy interface: how a set reacts to hits and chooses victims."""

    name: str = "abstract"

    @abstractmethod
    def touch(self, cache_set: OrderedDict[int, CacheLine], block: int) -> None:
        """Update recency state after a hit on ``block``."""

    @abstractmethod
    def victim(self, cache_set: OrderedDict[int, CacheLine]) -> int:
        """Return the block number to evict from a full set."""


class LRUReplacement(ReplacementPolicy):
    """Least-recently-used: dictionary order *is* the recency stack."""

    name = "lru"

    def touch(self, cache_set: OrderedDict[int, CacheLine], block: int) -> None:
        cache_set.move_to_end(block)

    def victim(self, cache_set: OrderedDict[int, CacheLine]) -> int:
        return next(iter(cache_set))


class FIFOReplacement(ReplacementPolicy):
    """First-in-first-out: insertion order, hits do not refresh."""

    name = "fifo"

    def touch(self, cache_set: OrderedDict[int, CacheLine], block: int) -> None:
        return None

    def victim(self, cache_set: OrderedDict[int, CacheLine]) -> int:
        return next(iter(cache_set))


class RandomReplacement(ReplacementPolicy):
    """Uniform random victim, driven by a deterministic RNG.

    The RNG is injectable so the RNG-entropy ablation can substitute the
    low-entropy :class:`~repro.common.rng.LFSR16`.
    """

    name = "random"

    def __init__(self, rng: DeterministicRNG | None = None) -> None:
        self._rng = rng if rng is not None else XorShift64()

    def touch(self, cache_set: OrderedDict[int, CacheLine], block: int) -> None:
        return None

    def victim(self, cache_set: OrderedDict[int, CacheLine]) -> int:
        index = self._rng.randrange(len(cache_set))
        return next(islice(iter(cache_set), index, None))


_POLICIES = {
    "lru": LRUReplacement,
    "fifo": FIFOReplacement,
    "random": RandomReplacement,
}


def make_replacement_policy(
    name: str, rng: DeterministicRNG | None = None
) -> ReplacementPolicy:
    """Build a replacement policy by name (``"lru"``, ``"fifo"``, ``"random"``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown replacement policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
    if cls is RandomReplacement:
        return RandomReplacement(rng)
    return cls()
