"""Cache statistics with per-ASID breakdown and resettable windows.

Two time horizons matter in this reproduction:

* *cumulative* counters over a whole run — what the paper's tables report;
* *window* counters since the last resize decision — what Algorithm 1 feeds
  on (the molecular resize engine resets the window every period).

:class:`CacheStats` maintains both simultaneously for the cache as a whole
and per ASID.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class AsidCounters:
    """Raw event counters for one ASID (or for the whole cache)."""

    accesses: int = 0
    hits: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        """Miss ratio; 0.0 when no accesses were recorded."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def copy(self) -> "AsidCounters":
        return AsidCounters(self.accesses, self.hits, self.evictions, self.writebacks)

    def add(self, other: "AsidCounters") -> None:
        self.accesses += other.accesses
        self.hits += other.hits
        self.evictions += other.evictions
        self.writebacks += other.writebacks


@dataclass(slots=True)
class CacheStats:
    """Cumulative and windowed statistics, overall and per ASID."""

    total: AsidCounters = field(default_factory=AsidCounters)
    per_asid: dict[int, AsidCounters] = field(default_factory=dict)
    window_total: AsidCounters = field(default_factory=AsidCounters)
    window_per_asid: dict[int, AsidCounters] = field(default_factory=dict)

    def _counters_for(self, table: dict[int, AsidCounters], asid: int) -> AsidCounters:
        counters = table.get(asid)
        if counters is None:
            counters = AsidCounters()
            table[asid] = counters
        return counters

    def counters_for(self, asid: int) -> tuple[AsidCounters, AsidCounters]:
        """The (cumulative, window) counter objects for one ASID.

        Creates them on first use exactly like :meth:`record_access`
        would, so batched engines can hold direct references and bump
        attributes without per-access dictionary lookups. The references
        go stale when a window reset replaces the counter tables —
        callers must re-fetch after any reset (the molecular engine keys
        this on its context epoch).
        """
        return (
            self._counters_for(self.per_asid, asid),
            self._counters_for(self.window_per_asid, asid),
        )

    def record_access(self, asid: int, hit: bool) -> None:
        for total, table in (
            (self.total, self.per_asid),
            (self.window_total, self.window_per_asid),
        ):
            total.accesses += 1
            counters = self._counters_for(table, asid)
            counters.accesses += 1
            if hit:
                total.hits += 1
                counters.hits += 1

    def record_eviction(self, asid: int, writeback: bool) -> None:
        for total, table in (
            (self.total, self.per_asid),
            (self.window_total, self.window_per_asid),
        ):
            total.evictions += 1
            counters = self._counters_for(table, asid)
            counters.evictions += 1
            if writeback:
                total.writebacks += 1
                counters.writebacks += 1

    def reset_window(self) -> None:
        """Zero the window counters (called at every resize decision)."""
        self.window_total = AsidCounters()
        self.window_per_asid = {}

    def reset_window_for(self, asid: int) -> None:
        """Zero only one application's window (per-application adaptive trigger)."""
        removed = self.window_per_asid.pop(asid, None)
        if removed is not None:
            self.window_total.accesses -= removed.accesses
            self.window_total.hits -= removed.hits
            self.window_total.evictions -= removed.evictions
            self.window_total.writebacks -= removed.writebacks

    def reset(self) -> None:
        """Zero everything (e.g. after a warm-up phase)."""
        self.total = AsidCounters()
        self.per_asid = {}
        self.reset_window()

    def miss_rate(self, asid: int | None = None) -> float:
        """Cumulative miss rate, overall or for one ASID."""
        if asid is None:
            return self.total.miss_rate
        counters = self.per_asid.get(asid)
        return counters.miss_rate if counters is not None else 0.0

    def window_miss_rate(self, asid: int | None = None) -> float:
        """Miss rate since the last window reset."""
        if asid is None:
            return self.window_total.miss_rate
        counters = self.window_per_asid.get(asid)
        return counters.miss_rate if counters is not None else 0.0

    def as_dict(self) -> dict:
        """Plain-dict snapshot (handy for reports and JSON dumps)."""
        return {
            "accesses": self.total.accesses,
            "hits": self.total.hits,
            "misses": self.total.misses,
            "miss_rate": self.total.miss_rate,
            "evictions": self.total.evictions,
            "writebacks": self.total.writebacks,
            "per_asid": {
                asid: {
                    "accesses": c.accesses,
                    "hits": c.hits,
                    "misses": c.misses,
                    "miss_rate": c.miss_rate,
                }
                for asid, c in sorted(self.per_asid.items())
            },
        }
