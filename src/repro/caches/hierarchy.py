"""Two-level cache hierarchy: per-core L1s in front of a shared L2.

The paper's methodology records L1-data misses on a CMP simulator and feeds
them to the L2 model. :class:`CacheHierarchy` reproduces that pipeline in
one object for users who want to model the L1 explicitly; the experiment
harnesses instead use workload models calibrated at the L2 (post-L1) level,
as documented in DESIGN.md.
"""

from __future__ import annotations

from repro.caches.setassoc import SetAssociativeCache
from repro.common.errors import ConfigError
from repro.common.types import Access, AccessResult


class CacheHierarchy:
    """Per-core private L1 caches backed by one shared L2.

    Parameters
    ----------
    l1_factory:
        Zero-argument callable producing a fresh L1
        :class:`SetAssociativeCache` for each core.
    l2:
        The shared second-level cache (any object with ``access_block``).
    cores:
        Number of cores, i.e. number of private L1s.
    asid_to_core:
        Optional mapping from ASID to core index. Defaults to
        ``asid % cores`` (one application per core in the paper's setups).
    """

    def __init__(
        self,
        l1_factory,
        l2,
        cores: int,
        asid_to_core: dict[int, int] | None = None,
    ) -> None:
        if cores < 1:
            raise ConfigError(f"need at least one core, got {cores}")
        self.cores = cores
        self.l1s: list[SetAssociativeCache] = [l1_factory() for _ in range(cores)]
        for index, l1 in enumerate(self.l1s):
            if not l1.name or l1.name == self.l1s[0].name and index:
                l1.name = f"L1[{index}]"
        self.l2 = l2
        self._asid_to_core = asid_to_core or {}
        self.l2_accesses = 0

    def core_for(self, asid: int) -> int:
        return self._asid_to_core.get(asid, asid % self.cores)

    def access(self, access: Access) -> AccessResult:
        return self.access_block(
            access.address >> self.l1s[0]._line_shift, access.asid, access.is_write
        )

    def access_block(self, block: int, asid: int = 0, write: bool = False) -> AccessResult:
        """One reference: L1 first; L1 misses propagate to the shared L2."""
        l1 = self.l1s[self.core_for(asid)]
        l1_result = l1.access_block(block, asid, write)
        if l1_result.hit:
            return l1_result
        self.l2_accesses += 1
        # The L2 sees the miss as a read fill; the dirty bit lives in the L1
        # until the victim is written back (writeback L1s are assumed).
        l2_result = self.l2.access_block(block, asid, False)
        l2_result.extra["l1_miss"] = True
        return l2_result

    def run(self, blocks, asids) -> None:
        """Feed parallel iterables of block numbers and ASIDs."""
        access_block = self.access_block
        for block, asid in zip(blocks, asids):
            access_block(block, asid)
