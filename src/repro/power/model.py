"""Analytical cache access-time and per-access-energy model.

A simplified CACTI: given a cache organization (size, associativity, line
size, ports), the model searches sub-banking splits (``Ndbl`` vertical,
``Ndwl`` horizontal) and reports the best organization's access time and
dynamic energy per access. Component structure:

* decoder delay/energy grow with the (sub-)array row count;
* bitline energy grows with active cells x column height — the dominant
  term, and the reason small caches (molecules) are an order of magnitude
  cheaper per access than monolithic megabyte arrays;
* wordline/sense terms grow with the active cells (``assoc x line bits``);
* tag-path terms grow with associativity, superlinearly for energy and
  with an ``A^1.6`` comparator/mux delay (this is what collapses the 8-way
  frequency in Table 4);
* every port beyond the first adds capacitance (energy) and wiring delay.

Coefficients live in :mod:`repro.power.tables` (fit provenance there).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.bitops import is_power_of_two
from repro.common.errors import ConfigError
from repro.power.tables import TECH_70NM, TechnologyCoefficients

_NDBL_CHOICES = (1, 2, 4, 8, 16, 32, 64, 128)
_NDWL_CHOICES = (1, 2, 4, 8, 16)
_MIN_ROWS = 16
_MIN_COLS = 32


@dataclass(frozen=True, slots=True)
class CacheOrganization:
    """A cache structure to be evaluated by the model."""

    size_bytes: int
    associativity: int = 1
    line_bytes: int = 64
    ports: int = 1

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size_bytes):
            raise ConfigError("size must be a power of two")
        if not is_power_of_two(self.line_bytes):
            raise ConfigError("line size must be a power of two")
        if self.associativity < 1 or self.ports < 1:
            raise ConfigError("associativity and ports must be >= 1")
        if self.size_bytes < self.line_bytes * self.associativity:
            raise ConfigError("cache smaller than one set")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True, slots=True)
class Evaluation:
    """Model output for one organization."""

    organization: CacheOrganization
    access_time_ns: float
    energy_nj: float
    ndbl: int
    ndwl: int

    @property
    def frequency_mhz(self) -> float:
        return 1000.0 / self.access_time_ns

    def power_watts(self, frequency_mhz: float | None = None) -> float:
        """Dynamic power at the given operating frequency.

        Defaults to the organization's own maximum frequency. The paper
        compares structures *at the traditional cache's frequency*, so
        Table 4 passes the baseline's frequency here.
        """
        freq = self.frequency_mhz if frequency_mhz is None else frequency_mhz
        return self.energy_nj * 1e-9 * freq * 1e6


class CactiModel:
    """The analytical model with its sub-banking search."""

    def __init__(self, tech: TechnologyCoefficients = TECH_70NM) -> None:
        self.tech = tech

    # ------------------------------------------------------------ internals

    def _evaluate_org(
        self, org: CacheOrganization, ndbl: int, ndwl: int
    ) -> tuple[float, float] | None:
        rows = org.sets / ndbl
        cells = org.associativity * org.line_bytes * 8
        cols = cells / ndwl
        if rows < _MIN_ROWS or cols < _MIN_COLS:
            return None
        t = self.tech.t_base
        t += self.tech.t_decode * math.log2(rows)
        t += self.tech.t_bitline * rows / 1e3
        t += self.tech.t_wordline * cols / 1e3
        t += self.tech.t_compare * (org.associativity**1.6) / 1e1

        e = self.tech.e_bitline * cells * rows / 1e5
        e += self.tech.e_wordline * cells / 1e3
        e += self.tech.e_decode * math.log2(rows) * ndbl * ndwl / 1e2
        e += self.tech.e_htree * math.sqrt(ndbl * ndwl) * org.line_bytes * 8 / 1e3
        e += self.tech.e_sense * cells / 1e3
        e += self.tech.e_tag * org.associativity / 1e1
        if org.associativity > 1:
            e += self.tech.e_assoc * (org.associativity**2) / 1e1

        extra_ports = org.ports - 1
        e *= 1.0 + self.tech.port_energy_factor * extra_ports
        t *= 1.0 + self.tech.port_delay_factor * extra_ports
        return t, e

    # ----------------------------------------------------------------- API

    def evaluate(self, org: CacheOrganization) -> Evaluation:
        """Best (minimum energy-delay) organization for the structure."""
        best: Evaluation | None = None
        for ndbl in _NDBL_CHOICES:
            for ndwl in _NDWL_CHOICES:
                result = self._evaluate_org(org, ndbl, ndwl)
                if result is None:
                    continue
                t, e = result
                candidate = Evaluation(org, t, e, ndbl, ndwl)
                if best is None or t * e < best.access_time_ns * best.energy_nj:
                    best = candidate
        if best is None:
            # Tiny structure: fall back to the smallest legal subarray view.
            rows = max(org.sets, _MIN_ROWS)
            cells = max(org.associativity * org.line_bytes * 8, _MIN_COLS)
            t = self.tech.t_base + self.tech.t_decode * math.log2(rows)
            t += self.tech.t_bitline * rows / 1e3
            t += self.tech.t_wordline * cells / 1e3
            t += self.tech.t_compare * (org.associativity**1.6) / 1e1
            e = self.tech.e_bitline * cells * rows / 1e5
            e += (self.tech.e_wordline + self.tech.e_sense) * cells / 1e3
            e += self.tech.e_tag * org.associativity / 1e1
            best = Evaluation(org, t, e, 1, 1)
        return best

    def molecule_energy_nj(
        self, molecule_bytes: int = 8 * 1024, line_bytes: int = 64
    ) -> float:
        """Per-probe dynamic energy of one molecule (direct mapped, 1 port)."""
        return self.evaluate(
            CacheOrganization(molecule_bytes, 1, line_bytes, ports=1)
        ).energy_nj

    def access_time_ns(self, org: CacheOrganization) -> float:
        return self.evaluate(org).access_time_ns

    def energy_nj(self, org: CacheOrganization) -> float:
        return self.evaluate(org).energy_nj
