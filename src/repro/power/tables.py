"""Technology coefficients for the analytical cache model.

The coefficient set below was fitted (least squares over relative error,
sub-banking organization chosen by minimum energy-delay inside the model)
to five calibration points at 0.07 µm:

* the four traditional-cache rows of the paper's Table 4 — an 8 MB,
  64 B-line, 4-port cache at associativity 1/2/4/8, whose frequency and
  power imply per-access energies of 24.8 / 29.0 / 37.2 / 37.3 nJ and
  cycle times of 5.03 / 4.88 / 4.85 / 10.4 ns;
* one molecule — an 8 KB direct-mapped single-port unit at ~0.42 nJ and
  <2 ns, the figure implied by the paper's "molecular power worst case"
  column (26.6 nJ for a 64-molecule tile).

Fitted model quality: frequencies 194/229/187/101 MHz against the paper's
199/205/206/96; the associativity-energy growth and the 8-way cycle-time
collapse are captured; the 4-way energy is ~17 % low (CACTI 3.2's internal
organization search cannot be recovered exactly from four points). All
downstream comparisons (Table 4, Table 5) report both our model's values
and the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TechnologyCoefficients:
    """Fitted per-component energy (nJ-scale) and delay (ns-scale) factors."""

    # --- energy ---------------------------------------------------------
    e_bitline: float  # per (active cell x row/1e5)
    e_wordline: float  # per active cell / 1e3
    e_decode: float  # per log2(rows) x subarray /1e2
    e_htree: float  # routing, per sqrt(subarrays) x line-bit /1e3
    e_sense: float  # per active cell /1e3
    e_tag: float  # per way /1e1
    e_assoc: float  # superlinear associativity term, per way^2 /1e1
    # --- delay ----------------------------------------------------------
    t_decode: float  # per log2(rows)
    t_bitline: float  # per row /1e3
    t_wordline: float  # per active cell /1e3
    t_compare: float  # per way^1.6 /1e1
    t_base: float  # fixed sense/drive overhead
    # --- multi-port scaling ---------------------------------------------
    port_energy_factor: float = 0.5  # extra energy per additional port
    port_delay_factor: float = 0.12  # extra delay per additional port


#: The 0.07 µm coefficient set used throughout the reproduction.
TECH_70NM = TechnologyCoefficients(
    e_bitline=1.8512,
    e_wordline=0.2095,
    e_decode=0.0607,
    e_htree=0.0106,
    e_sense=0.2095,
    e_tag=0.5412,
    e_assoc=0.4755,
    t_decode=0.0019,
    t_bitline=1.9521,
    t_wordline=0.1255,
    t_compare=1.7777,
    t_base=1.5281,
)

#: Paper Table 4 reference values for comparison in reports:
#: associativity -> (frequency MHz, power W) for the 8 MB 4-port cache.
PAPER_TABLE4_TRADITIONAL = {
    1: (199.0, 4.93),
    2: (205.0, 5.95),
    4: (206.0, 7.66),
    8: (96.0, 3.58),
}

#: Paper Table 4 molecular columns: associativity of the compared
#: traditional cache -> (worst-case W, mixed-workload average W).
PAPER_TABLE4_MOLECULAR = {
    1: (5.29, 4.85),
    2: (5.45, 4.99),
    4: (5.46, 5.00),
    8: (2.55, 2.34),
}
