"""CACTI-like timing/power model and energy accounting (replaces CACTI 3.2).

The paper derives Table 4 from CACTI at 0.07 µm. This package implements an
analytical component model (decoder + wordline + bitline + sense + tag
compare + output, with sub-banking and port scaling) whose coefficients are
*calibrated against the paper's own Table 4 rows* — see
:mod:`repro.power.tables` for the fit provenance. Energy accounting for
molecular caches integrates the probe counters recorded by the simulator.
"""

from repro.power.model import CacheOrganization, CactiModel, Evaluation
from repro.power.energy import MolecularEnergyModel, power_watts
from repro.power.metrics import power_deviation_product

__all__ = [
    "CacheOrganization",
    "CactiModel",
    "Evaluation",
    "MolecularEnergyModel",
    "power_deviation_product",
    "power_watts",
]
