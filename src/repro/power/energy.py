"""Energy accounting for molecular caches.

Converts the probe counters a :class:`~repro.molecular.MolecularCache`
records into per-access energy and power:

* each *probed* molecule costs one molecule access
  (:meth:`~repro.power.model.CactiModel.molecule_energy_nj`);
* each ASID comparison costs a small comparator activation (Figure 3's
  gate runs in every molecule of a searched tile, including non-matching
  ones);
* the paper's **worst case** is every molecule of a tile probed on every
  access — used for the "mol. power worst case" column of Table 4;
* the **measured average** integrates the simulator's actual probe counts
  — the "average mixed workload" column.

Power is energy x frequency; the paper evaluates the molecular cache *at
the frequency of the traditional cache it is compared against*, and so do
we.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.molecular.config import MolecularCacheConfig
from repro.molecular.stats import MolecularStats
from repro.power.model import CactiModel

#: Energy of one ASID comparator activation, nJ. An ~8-bit compare against
#: a configured register — orders of magnitude below a molecule probe; the
#: paper approximates tile power as "the power consumed by all the
#: molecules of a tile", i.e. treats this as negligible, but we account it.
ASID_COMPARE_NJ = 0.002


def power_watts(energy_nj_per_access: float, frequency_mhz: float) -> float:
    """Dynamic power for one access per cycle at ``frequency_mhz``."""
    if frequency_mhz <= 0:
        raise ConfigError("frequency must be positive")
    return energy_nj_per_access * 1e-9 * frequency_mhz * 1e6


@dataclass(frozen=True)
class MolecularEnergyModel:
    """Per-access energy figures for one molecular cache configuration."""

    config: MolecularCacheConfig
    model: CactiModel

    @property
    def molecule_probe_nj(self) -> float:
        return self.model.molecule_energy_nj(
            self.config.molecule_bytes, self.config.line_bytes
        )

    def worst_case_energy_nj(self) -> float:
        """All molecules of a tile probed (the paper's worst case)."""
        per_tile = self.config.molecules_per_tile
        return per_tile * self.molecule_probe_nj + per_tile * ASID_COMPARE_NJ

    def average_energy_nj(self, stats: MolecularStats) -> float:
        """Measured per-access energy from recorded probe counters."""
        accesses = stats.total.accesses
        if accesses == 0:
            return 0.0
        probe_energy = stats.molecules_probed * self.molecule_probe_nj
        compare_energy = stats.asid_comparisons * ASID_COMPARE_NJ
        return (probe_energy + compare_energy) / accesses

    def worst_case_power_w(self, frequency_mhz: float) -> float:
        return power_watts(self.worst_case_energy_nj(), frequency_mhz)

    def average_power_w(self, stats: MolecularStats, frequency_mhz: float) -> float:
        return power_watts(self.average_energy_nj(stats), frequency_mhz)
