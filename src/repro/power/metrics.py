"""QoS-power metrics.

The paper introduces the *power-deviation product* — dynamic power (W)
times average deviation from the miss-rate goal — "to measure the
effectiveness of the cache in meeting the QoS while still being able to
keep the cache power consumption in check" (Table 5). Lower is better on
both axes, so lower products dominate.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


def power_deviation_product(power_w: float, average_deviation: float) -> float:
    """The paper's power-deviation product metric."""
    if power_w < 0:
        raise ConfigError("power cannot be negative")
    if average_deviation < 0:
        raise ConfigError("average deviation cannot be negative")
    return power_w * average_deviation
