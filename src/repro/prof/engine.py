"""The stage-instrumented twin of the batched access engine.

:class:`ProfiledAccessEngine` is what ``MolecularCache.access_many`` /
``access_session`` build when a :class:`~repro.prof.profiler.
HotPathProfiler` is attached and enabled. It subclasses the ordinary
:class:`~repro.molecular.engine.AccessEngine` and changes *when things
are measured*, never *what happens*:

* :meth:`stream` measures the wall clock of the whole stream and routes
  one reference per ``sample_every`` through :meth:`access_profiled`;
  the rest go through the parent's unmodified fast loop in segments.
* :meth:`access` (the per-reference session path) samples with a
  countdown instead of segments.
* :meth:`access_profiled` is a copy of the parent's ``access`` body with
  ``perf_counter`` captures at the stage boundaries — the same
  deliberate duplication the engine already uses between its ``stream``
  and ``access`` bodies, kept honest by
  ``tests/test_prof_profiler.py``'s byte-identical-stats checks.

Stage boundaries (see DESIGN.md section 10): **probe** is the presence-
map lookup (home tile + shared region); **remote-search** is the Ulmo
remote-walk bookkeeping; **replace** is victim choice plus install;
**writeback** is the evicted-line processing and writeback accounting;
**account** is everything else (context refresh, counters, telemetry).
The resize-trigger interval is deliberately left out of every sampled
stage: fires are timed exactly by the resizer, and folding a
milliseconds-long fire into one sampled access would wreck the shares.

The equivalence argument is the engine's own: scalar, batched, session
and profiled paths all produce byte-identical stats, resize logs and
telemetry streams, so *which* path any single reference takes is
unobservable outside timing.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.common.clock import tick
from repro.common.errors import ConfigError
from repro.common.types import AccessResult
from repro.molecular.engine import AccessEngine, _as_scalar_sequence
from repro.prof.profiler import HotPathProfiler


class ProfiledAccessEngine(AccessEngine):
    """An :class:`AccessEngine` that feeds an attached profiler."""

    __slots__ = ("profiler", "_countdown")

    def __init__(self, cache) -> None:
        super().__init__(cache)
        profiler = cache.profiler
        if profiler is None:
            profiler = HotPathProfiler()
        self.profiler = profiler
        self._countdown = profiler.sample_every

    # ------------------------------------------------------------ streaming

    def stream(self, blocks, asids=0, writes=False) -> int:
        prof = self.profiler
        t_start = tick()
        if not self.fast_latency:
            # Custom latency model: the parent already falls back to the
            # scalar reference path; only the wall clock is profiled.
            n = super().stream(blocks, asids, writes)
            prof.add_stream(n, tick() - t_start)
            return n
        if isinstance(blocks, np.ndarray):
            if blocks.ndim != 1:
                raise ConfigError("blocks must be one-dimensional")
            # tolist(), not list(): plain ints, never numpy scalars, so
            # presence keys stay identical to every other path.
            blocks = blocks.tolist()
        elif not isinstance(blocks, (list, tuple)):
            blocks = list(blocks)
        n = len(blocks)
        asid_list, asid_scalar = _as_scalar_sequence(asids, n, "asids")
        write_list, write_scalar = _as_scalar_sequence(writes, n, "writes")
        step = prof.sample_every
        pos = 0
        run = super().stream
        while pos < n:
            stop = min(pos + step, n)
            # Fast segment up to (not including) the sampled reference.
            if stop - 1 > pos:
                run(
                    blocks[pos : stop - 1],
                    asid_list[pos : stop - 1]
                    if asid_list is not None
                    else asid_scalar,
                    write_list[pos : stop - 1]
                    if write_list is not None
                    else write_scalar,
                )
            last = stop - 1
            self.access_profiled(
                blocks[last],
                asid_list[last] if asid_list is not None else asid_scalar,
                bool(write_list[last]) if write_list is not None else bool(write_scalar),
            )
            pos = stop
        prof.add_stream(n, tick() - t_start)
        return n

    # ------------------------------------------------------------- sessions

    def access(self, block: int, asid: int = 0, write: bool = False) -> bool:
        prof = self.profiler
        prof.refs += 1
        self._countdown -= 1
        if self._countdown > 0:
            return super().access(block, asid, write)
        self._countdown = prof.sample_every
        return self.access_profiled(block, asid, write)

    # ------------------------------------------------- instrumented access

    def access_profiled(self, block: int, asid: int = 0, write: bool = False) -> bool:
        """One access with stage timing; side effects identical to
        :meth:`AccessEngine.access`."""
        if not self.fast_latency:
            return super().access(block, asid, write)
        pc = perf_counter
        t0 = pc()
        ctx = self.contexts.get(asid)
        if (
            ctx is None
            or ctx.region_version != ctx.region.version
            or ctx.cache_epoch != self.cache._ctx_epoch
        ):
            ctx = self._build_context(asid)
            self.contexts[asid] = ctx

        cache = self.cache
        stats = self.stats
        region = ctx.region
        tot = stats.total
        wtot = stats.window_total
        tc = ctx.total_counters
        wc = ctx.window_counters
        local_probes = ctx.local_probes
        bus = cache.telemetry
        ctx.home_tile.port_accesses += 1
        result = None
        remote_tiles = 0
        probe_s = remote_s = replace_s = writeback_s = 0.0
        t1 = pc()
        account_s = t1 - t0

        molecule = ctx.region_lookup(block)
        if molecule is None and ctx.shared_lookup is not None:
            molecule = ctx.shared_lookup(block)
        t2 = pc()
        probe_s = t2 - t1

        if molecule is not None:
            hit = True
            if molecule.tile_id != ctx.home_tile_id:
                ulmo_stats = ctx.ulmo_stats
                ulmo_stats.tile_misses += 1
                ulmo_stats.remote_hits += 1
                remote_tiles, remote_probes, comparisons, remote_extra = (
                    ctx.remote_stop[molecule.tile_id]
                )
                stats.molecules_probed_remote += remote_probes
                stats.asid_comparisons += comparisons + ctx.home_comparisons
                stats.latency_cycles += (
                    ctx.hit_cycles
                    + ctx.dispatch_cycles
                    + remote_tiles * ctx.per_tile_cycles
                    + remote_extra
                )
            else:
                remote_probes = 0
                stats.asid_comparisons += ctx.home_comparisons
                stats.latency_cycles += ctx.hit_cycles
            t3 = pc()
            remote_s = t3 - t2
            stats.molecules_probed_local += local_probes
            if write:
                molecule.mark_dirty(block)
            if self.on_hit_live:
                # Recency belongs to the serving region (the hit may have
                # come from the tile's shared region).
                if ctx.shared_lookup is not None and ctx.region_lookup(block) is None:
                    self.placement.on_hit(ctx.shared_region, block)
                else:
                    self.placement.on_hit(region, block)
            tot.accesses += 1
            tot.hits += 1
            wtot.accesses += 1
            wtot.hits += 1
            tc.accesses += 1
            tc.hits += 1
            wc.accesses += 1
            wc.hits += 1
            region.window_accesses += 1
            region.total_accesses += 1
            region.molecule_integral += ctx.molecule_count
            if bus is not None:
                result = AccessResult(
                    hit=True,
                    molecules_probed_local=local_probes,
                    molecules_probed_remote=remote_probes,
                )
            t4 = pc()
            account_s += t4 - t3
        else:
            hit = False
            ulmo_stats = ctx.ulmo_stats
            if ctx.has_remote:
                ulmo_stats.tile_misses += 1
                remote_tiles, remote_probes, comparisons, remote_extra = (
                    ctx.remote_full
                )
                stats.molecules_probed_remote += remote_probes
                stats.asid_comparisons += comparisons + ctx.home_comparisons
            else:
                remote_probes = 0
                stats.asid_comparisons += ctx.home_comparisons
            ulmo_stats.global_misses += 1
            t3 = pc()
            remote_s = t3 - t2
            target, row_index = self.placement.choose(
                region, block, self.lines_per_molecule, self.rng
            )
            evicted = region.install(block, target, row_index, write)
            t4 = pc()
            replace_s = t4 - t3
            dirty = 0
            for _b, was_dirty in evicted:
                if was_dirty:
                    dirty += 1
                stats.record_eviction(asid, was_dirty)
            if self.on_evict_live:
                for b, _was_dirty in evicted:
                    self.placement.on_evict(region, b)
            stats.writebacks_to_memory += dirty
            stats.lines_fetched += ctx.line_multiplier
            t5 = pc()
            writeback_s = t5 - t4
            stats.molecules_probed_local += local_probes
            cycles = ctx.miss_cycles
            if remote_tiles:
                cycles += (
                    ctx.dispatch_cycles
                    + remote_tiles * ctx.per_tile_cycles
                    + remote_extra
                )
            stats.latency_cycles += cycles
            tot.accesses += 1
            wtot.accesses += 1
            tc.accesses += 1
            wc.accesses += 1
            region.window_accesses += 1
            region.window_misses += 1
            region.total_accesses += 1
            region.total_misses += 1
            region.molecule_integral += ctx.molecule_count
            if bus is not None:
                result = AccessResult(
                    hit=False,
                    evicted_block=evicted[0][0] if evicted else None,
                    writeback=dirty > 0,
                    molecules_probed_local=local_probes,
                    molecules_probed_remote=remote_probes,
                    lines_filled=ctx.line_multiplier,
                )
            t6 = pc()
            account_s += t6 - t5

        # The resize-trigger interval is excluded from every stage: fires
        # are timed exactly by the resizer (see module docstring).
        if self.advisor is not None:
            self.advisor.observe(region, block)
        if self.per_app:
            if ctx.managed and region.total_accesses >= region.next_resize_at:
                self.resizer._resize_one(region, tot.accesses)
        elif tot.accesses >= self.resizer.next_global_at:
            self.resizer._resize_all(tot.accesses)
        t7 = pc()

        if bus is not None:
            if remote_tiles:
                result.extra["remote_tiles_searched"] = remote_tiles
            bus.record_access(asid, block, write, result, remote_tiles)
            account_s += pc() - t7

        self.profiler.add_sample(
            asid, probe_s, remote_s, replace_s, writeback_s, account_s
        )
        return hit
