"""Campaign span tracing: queue-wait / execute / store-write timelines.

A multi-hour sweep that converges slowly usually isn't *computing*
slowly — it's starving (workers idle behind a long chunk), churning
(timeouts tearing the pool down), or serialising on the store. None of
that is visible in end-of-run counters. The campaign runner therefore
records **spans**: intervals on the shared monotonic clock
(:func:`repro.common.clock.tick`, comparable across worker processes),
one track per worker pid plus a dispatcher track, with instant markers
for retries, timeouts and pool breaks.

The on-disk format is Chrome's trace-event JSON (the ``traceEvents``
array of ``ph: "X"`` complete events), which loads directly in Perfetto
and ``chrome://tracing`` — no custom viewer to maintain.
``repro trace-export`` summarises a recorded file (per-category
durations, queue-wait share, marker counts) or writes a filtered copy.

Span vocabulary (category → meaning):

== ============ ======================================================
X  ``job``       one job executing inside a worker (or serially)
X  ``chunk``     one pool submission (several jobs) on its worker
X  ``queue``     submit-to-first-execution wait of a chunk
X  ``store``     persisting one result into the ``ResultStore``
X  ``campaign``  the whole run, on the dispatcher track
i  ``retry``     a failed attempt being requeued
i  ``timeout``   a chunk expiring (pool teardown follows)
i  ``pool``      a pool break / rebuild
== ============ ======================================================
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import ConfigError
from repro.common.io import atomic_write_json

#: Dispatcher-track sentinel tid (workers use their real pid).
DISPATCHER_TID = 0


class SpanRecorder:
    """Collects spans and instant markers; exports Chrome trace JSON.

    Timestamps are raw :func:`~repro.common.clock.tick` seconds; the
    export normalises them to microseconds from the earliest event, so
    traces start at t=0 regardless of machine uptime.
    """

    def __init__(self, pid: int = 1) -> None:
        self.pid = pid
        self._events: list[dict] = []
        self._track_names: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------ recording

    def name_track(self, tid: int, name: str) -> None:
        """Label a track (worker pid / dispatcher) in the viewer."""
        self._track_names[tid] = name

    def span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        tid: int = DISPATCHER_TID,
        args: dict | None = None,
    ) -> None:
        """A complete span from ``start`` to ``end`` (tick seconds)."""
        self._events.append(
            {
                "name": name,
                "cat": category,
                "ph": "X",
                "ts": start,
                "dur": max(end - start, 0.0),
                "tid": tid,
                "args": args or {},
            }
        )

    def instant(
        self,
        name: str,
        category: str,
        ts: float,
        tid: int = DISPATCHER_TID,
        args: dict | None = None,
    ) -> None:
        """A zero-duration marker at ``ts`` (tick seconds)."""
        self._events.append(
            {
                "name": name,
                "cat": category,
                "ph": "i",
                "ts": ts,
                "s": "t",
                "tid": tid,
                "args": args or {},
            }
        )

    # ------------------------------------------------------------- exporting

    def trace_events(self) -> list[dict]:
        """The recorded events in Chrome trace format (ts/dur in µs)."""
        if not self._events:
            return []
        origin = min(event["ts"] for event in self._events)
        out: list[dict] = []
        for tid, name in sorted(self._track_names.items()):
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self.pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        for event in self._events:
            converted = dict(event)
            converted["pid"] = self.pid
            converted["ts"] = round((event["ts"] - origin) * 1e6, 3)
            if "dur" in event:
                converted["dur"] = round(event["dur"] * 1e6, 3)
            out.append(converted)
        return out

    def export(self, path: str | Path) -> Path:
        """Write the trace atomically; returns the path written."""
        path = Path(path)
        payload = {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
        }
        try:
            atomic_write_json(path, payload, sort_keys=False)
        except OSError as error:
            raise ConfigError(f"cannot write span trace to {path}: {error}") from None
        return path


# ------------------------------------------------------------------ reading


def load_trace(path: str | Path) -> list[dict]:
    """The ``traceEvents`` of a recorded span file.

    Accepts the object form (``{"traceEvents": [...]}``) and the bare
    array form — both load in Perfetto, so both are accepted here.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"no span trace at {path}")
    try:
        with path.open("r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except json.JSONDecodeError as error:
        raise ConfigError(f"{path}: broken span trace ({error})") from None
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
    else:
        events = payload
    if not isinstance(events, list):
        raise ConfigError(f"{path}: no traceEvents array")
    return events


def filter_trace(events: list[dict], category: str) -> list[dict]:
    """The subset of ``events`` in ``category`` (metadata rows kept)."""
    return [
        event
        for event in events
        if event.get("ph") == "M" or event.get("cat") == category
    ]


def summarize_trace(events: list[dict]) -> str:
    """Per-category duration stats plus marker counts, as a text table."""
    spans: dict[str, list[float]] = {}
    markers: dict[str, int] = {}
    tracks: set[int] = set()
    for event in events:
        ph = event.get("ph")
        if ph == "X":
            spans.setdefault(event.get("cat", "?"), []).append(
                float(event.get("dur", 0.0)) / 1e6
            )
            tracks.add(event.get("tid", 0))
        elif ph == "i":
            key = f"{event.get('cat', '?')}:{event.get('name', '?')}"
            markers[key] = markers.get(key, 0) + 1
    lines = [
        f"span trace: {sum(len(v) for v in spans.values())} spans on "
        f"{len(tracks)} track(s)"
    ]
    lines.append(
        f"  {'category':<10s} {'count':>6s} {'total':>10s} "
        f"{'mean':>10s} {'max':>10s}"
    )
    for category in sorted(spans):
        durations = spans[category]
        total = sum(durations)
        lines.append(
            f"  {category:<10s} {len(durations):>6d} {total:>9.3f}s "
            f"{total / len(durations):>9.4f}s {max(durations):>9.4f}s"
        )
    queue = sum(spans.get("queue", []))
    execute = sum(spans.get("job", []))
    if execute > 0:
        lines.append(
            f"  queue-wait / execute ratio: {queue / execute:.2f} "
            "(high values mean worker starvation)"
        )
    if markers:
        lines.append("  markers:")
        for key in sorted(markers):
            lines.append(f"    {key}: {markers[key]}")
    return "\n".join(lines)
