"""Sampling hot-path profiler for the molecular access engine.

Timing every stage of every access with ``perf_counter`` would multiply
the cost of the hot loop several times over — useless as an instrument.
Instead the profiler combines three measurements, each cheap where it
runs often and exact where it runs rarely:

* **wall clock** — every profiled stream (or the caller, for per-access
  sessions) contributes its measured wall time and reference count;
* **sampled stage splits** — every ``sample_every``-th reference runs
  through a stage-instrumented twin of the engine access body
  (:meth:`repro.prof.engine.ProfiledAccessEngine.access_profiled`),
  accumulating per-stage and per-region sampled time;
* **exact resize timing** — resize rounds are rare and expensive, so the
  resizer times every fire directly instead of relying on sampling.

The report distributes the measured wall clock (minus the exactly-timed
resize share) across the stages proportionally to their sampled shares.
By construction the per-stage times sum to the wall clock — the
breakdown answers "where did this run's time go", not "how fast is each
stage in isolation" (the instrumented samples carry their own timer
overhead, so absolute sampled numbers are only used as ratios).

The equivalence contract of :mod:`repro.molecular.engine` extends to the
profiled paths: a profiled run's stats, resize log and telemetry stream
are byte-identical to an unprofiled one (``tests/test_prof_profiler.py``
asserts it). Disabled, profiling costs nothing on the per-reference
path: ``MolecularCache.access_many``/``access_session`` check
``cache.profiler`` once per call and hand the stream to the ordinary
engine.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

#: Stage keys, in report order. ``account`` absorbs everything that is
#: not one of the four architectural stages: counter updates, context
#: refreshes, resize-trigger checks and telemetry recording.
PROFILE_STAGES = ("probe", "remote_search", "replace", "writeback", "account")


class HotPathProfiler:
    """Accumulates sampled stage time, wall clock and resize time.

    Parameters
    ----------
    sample_every:
        One reference in every ``sample_every`` runs through the
        instrumented access body. The default keeps the enabled
        overhead on the molecular access benchmark under the 5 % budget
        (``benchmarks/test_perf_prof_overhead.py`` guards it).
    """

    __slots__ = (
        "sample_every",
        "enabled",
        "stage_s",
        "asid_s",
        "asid_samples",
        "samples",
        "refs",
        "wall_s",
        "resize_s",
        "resize_fires",
        "streams",
    )

    def __init__(self, sample_every: int = 512) -> None:
        if sample_every < 1:
            raise ConfigError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.enabled = True
        self.reset()

    def reset(self) -> None:
        """Zero every accumulator (a fresh measurement window)."""
        self.stage_s = {stage: 0.0 for stage in PROFILE_STAGES}
        self.asid_s: dict[int, float] = {}
        self.asid_samples: dict[int, int] = {}
        self.samples = 0
        self.refs = 0
        self.wall_s = 0.0
        self.resize_s = 0.0
        self.resize_fires = 0
        self.streams = 0

    # ------------------------------------------------------------- feeding

    def add_sample(
        self,
        asid: int,
        probe: float,
        remote_search: float,
        replace: float,
        writeback: float,
        account: float,
    ) -> None:
        """One instrumented access's stage durations (seconds)."""
        stage_s = self.stage_s
        stage_s["probe"] += probe
        stage_s["remote_search"] += remote_search
        stage_s["replace"] += replace
        stage_s["writeback"] += writeback
        stage_s["account"] += account
        total = probe + remote_search + replace + writeback + account
        self.asid_s[asid] = self.asid_s.get(asid, 0.0) + total
        self.asid_samples[asid] = self.asid_samples.get(asid, 0) + 1
        self.samples += 1

    def add_stream(self, refs: int, wall_s: float) -> None:
        """One profiled stream's reference count and measured wall time."""
        self.refs += refs
        self.wall_s += wall_s
        self.streams += 1

    def add_resize(self, seconds: float) -> None:
        """One resize round, timed exactly at the resizer."""
        self.resize_s += seconds
        self.resize_fires += 1

    # ----------------------------------------------------------- reporting

    def report(self, wall_s: float | None = None) -> dict:
        """The attributed breakdown as a plain dict.

        ``wall_s`` overrides the accumulated stream wall clock — drivers
        that issue references one at a time (sessions) measure the run
        wall themselves and pass it here.
        """
        wall = self.wall_s if wall_s is None else wall_s
        resize = min(self.resize_s, wall) if wall > 0 else self.resize_s
        distributable = max(wall - resize, 0.0)
        sampled_total = sum(self.stage_s.values())
        stages: dict[str, dict[str, float]] = {}
        for stage in PROFILE_STAGES:
            share = (
                self.stage_s[stage] / sampled_total if sampled_total > 0 else 0.0
            )
            stages[stage] = {
                "share": share,
                "time_s": distributable * share,
            }
        regions: dict[int, dict[str, float]] = {}
        for asid in sorted(self.asid_s):
            regions[asid] = {
                "share": (
                    self.asid_s[asid] / sampled_total
                    if sampled_total > 0
                    else 0.0
                ),
                "samples": self.asid_samples[asid],
            }
        return {
            "wall_s": wall,
            "refs": self.refs,
            "refs_per_sec": self.refs / wall if wall > 0 else 0.0,
            "samples": self.samples,
            "sample_every": self.sample_every,
            "stages": stages,
            "resize": {"time_s": resize, "fires": self.resize_fires},
            "regions": regions,
        }

    def format_report(self, wall_s: float | None = None) -> str:
        """The breakdown as the text block ``repro simulate --profile`` prints."""
        data = self.report(wall_s)
        lines = [
            "hot-path profile "
            f"({data['refs']} refs in {data['wall_s'] * 1e3:.1f} ms, "
            f"{data['refs_per_sec']:,.0f} refs/s; "
            f"{data['samples']} sampled, 1/{data['sample_every']})"
        ]
        rows: list[tuple[str, float, float]] = [
            (stage.replace("_", "-"), info["time_s"], info["share"])
            for stage, info in data["stages"].items()
        ]
        wall = data["wall_s"]
        resize = data["resize"]
        rows.append(
            (
                f"resize ({resize['fires']} fires)",
                resize["time_s"],
                resize["time_s"] / wall if wall > 0 else 0.0,
            )
        )
        # Stage shares are of the non-resize wall; print wall fractions so
        # the column sums to 100 %.
        non_resize = max(wall - resize["time_s"], 0.0)
        for name, time_s, share in rows:
            frac = time_s / wall if wall > 0 else 0.0
            if not name.startswith("resize"):
                frac = (share * non_resize / wall) if wall > 0 else 0.0
            lines.append(f"  {name:<22s} {time_s * 1e3:9.2f} ms  {frac:6.1%}")
        total = sum(time_s for _n, time_s, _s in rows)
        lines.append(f"  {'total':<22s} {total * 1e3:9.2f} ms  {total / wall if wall > 0 else 0.0:6.1%}")
        if data["regions"]:
            lines.append("  per-region sampled share:")
            for asid, info in data["regions"].items():
                lines.append(
                    f"    asid {asid:<4d} {info['share']:6.1%} "
                    f"({info['samples']} samples)"
                )
        return "\n".join(lines)
