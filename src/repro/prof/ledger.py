"""The benchmark ledger: machine-readable perf history with diffing.

``benchmarks/results/*.txt`` captures what a bench printed; the ledger
captures what it *measured*, durably enough to diff across commits. One
JSON file per (metric, run) under ``benchmarks/results/ledger/``::

    {"schema": 1, "metric": "molecular_refs_per_sec", "value": 812345.0,
     "unit": "refs/s", "direction": "higher", "scale": 1.0,
     "sha": "54c6880…", "timestamp": 1754560000.0, "extra": {}}

``direction`` says which way is better (``"lower"`` for times and
overheads, ``"higher"`` for throughputs); ``scale`` pins the
``REPRO_SCALE`` the run used so entries from quick passes are never
diffed against paper-scale ones. Writes go through the same atomic
tmp-file+rename path as every other artifact
(:func:`repro.common.io.atomic_write_json`), so a killed bench never
leaves a truncated entry.

``repro bench-report`` reads the ledger, pairs each metric's latest
entry with the previous same-scale one, and flags changes beyond a
configurable threshold in the *worse* direction. CI runs it as a soft
gate (annotate-only) after the ``bench-smoke`` job.
"""

from __future__ import annotations

import os
import re
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ConfigError
from repro.common.io import atomic_write_json

#: Bumped on incompatible entry-layout changes.
LEDGER_SCHEMA_VERSION = 1

#: Default ledger location, relative to the repository root / CWD.
DEFAULT_LEDGER_DIR = Path("benchmarks") / "results" / "ledger"

#: Metric slugs double as file-name stems, so keep them boring.
_METRIC_RE = re.compile(r"^[a-z0-9][a-z0-9_.-]*$")

_DIRECTIONS = ("lower", "higher")

_git_sha_cache: dict[str, str] = {}


def git_sha(cwd: str | Path | None = None) -> str:
    """The current commit's SHA, or ``"unknown"`` outside a checkout."""
    key = str(cwd or ".")
    cached = _git_sha_cache.get(key)
    if cached is not None:
        return cached
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    _git_sha_cache[key] = sha or "unknown"
    return _git_sha_cache[key]


def current_scale() -> float:
    """The run's ``REPRO_SCALE`` (1.0 when unset or unparsable)."""
    try:
        return float(os.environ.get("REPRO_SCALE", "1"))
    except ValueError:
        return 1.0


@dataclass(slots=True)
class LedgerEntry:
    """One measured metric from one benchmark run."""

    metric: str
    value: float
    unit: str
    direction: str = "lower"
    scale: float = 1.0
    sha: str = "unknown"
    timestamp: float = 0.0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "schema": LEDGER_SCHEMA_VERSION,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "scale": self.scale,
            "sha": self.sha,
            "timestamp": self.timestamp,
            "extra": self.extra,
        }


def validate_entry(payload: dict, source: str = "ledger entry") -> LedgerEntry:
    """Check one entry against the schema; returns the parsed entry."""
    if not isinstance(payload, dict):
        raise ConfigError(f"{source}: not a JSON object")
    if payload.get("schema") != LEDGER_SCHEMA_VERSION:
        raise ConfigError(
            f"{source}: schema {payload.get('schema')!r} "
            f"(expected {LEDGER_SCHEMA_VERSION})"
        )
    metric = payload.get("metric")
    if not isinstance(metric, str) or not _METRIC_RE.match(metric):
        raise ConfigError(f"{source}: bad metric slug {metric!r}")
    value = payload.get("value")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigError(f"{source}: value must be a number, got {value!r}")
    if not isinstance(payload.get("unit"), str):
        raise ConfigError(f"{source}: unit must be a string")
    if payload.get("direction") not in _DIRECTIONS:
        raise ConfigError(
            f"{source}: direction must be one of {_DIRECTIONS}, "
            f"got {payload.get('direction')!r}"
        )
    scale = payload.get("scale")
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        raise ConfigError(f"{source}: scale must be a positive number")
    if not isinstance(payload.get("sha"), str):
        raise ConfigError(f"{source}: sha must be a string")
    timestamp = payload.get("timestamp")
    if not isinstance(timestamp, (int, float)) or isinstance(timestamp, bool):
        raise ConfigError(f"{source}: timestamp must be a number")
    extra = payload.get("extra", {})
    if not isinstance(extra, dict):
        raise ConfigError(f"{source}: extra must be an object")
    return LedgerEntry(
        metric=metric,
        value=float(value),
        unit=payload["unit"],
        direction=payload["direction"],
        scale=float(scale),
        sha=payload["sha"],
        timestamp=float(timestamp),
        extra=extra,
    )


# ------------------------------------------------------------------ writing


def write_entry(
    ledger_dir: str | Path,
    metric: str,
    value: float,
    unit: str,
    direction: str = "lower",
    scale: float | None = None,
    sha: str | None = None,
    timestamp: float | None = None,
    extra: dict | None = None,
) -> Path:
    """Persist one metric atomically; returns the file written."""
    ledger_dir = Path(ledger_dir)
    entry = LedgerEntry(
        metric=metric,
        value=float(value),
        unit=unit,
        direction=direction,
        scale=current_scale() if scale is None else scale,
        sha=git_sha(ledger_dir if ledger_dir.is_dir() else None) if sha is None else sha,
        timestamp=time.time() if timestamp is None else timestamp,
        extra=extra or {},
    )
    validate_entry(entry.as_dict(), source=f"metric {metric!r}")
    ledger_dir.mkdir(parents=True, exist_ok=True)
    path = ledger_dir / f"{metric}__{time.time_ns()}.json"
    atomic_write_json(path, entry.as_dict())
    return path


# ------------------------------------------------------------------ reading


def read_ledger(ledger_dir: str | Path) -> list[LedgerEntry]:
    """Every entry in the ledger, oldest first (broken files raise)."""
    ledger_dir = Path(ledger_dir)
    if not ledger_dir.is_dir():
        raise ConfigError(f"no benchmark ledger at {ledger_dir}")
    import json

    entries: list[LedgerEntry] = []
    for path in sorted(ledger_dir.glob("*.json")):
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except json.JSONDecodeError as error:
            raise ConfigError(f"{path}: broken ledger entry ({error})") from None
        entries.append(validate_entry(payload, source=str(path)))
    entries.sort(key=lambda entry: (entry.timestamp, entry.metric))
    return entries


@dataclass(slots=True)
class MetricDiff:
    """Latest-vs-previous comparison for one metric."""

    metric: str
    unit: str
    direction: str
    previous: float
    latest: float
    change: float  # signed fraction, relative to previous
    regression: bool

    def describe(self) -> str:
        arrow = "worse" if self.regression else (
            "better" if self._improved() else "~same"
        )
        return (
            f"{self.metric:<34s} {self.previous:>12.4g} -> "
            f"{self.latest:>12.4g} {self.unit:<8s} "
            f"{self.change:+7.1%} [{arrow}]"
        )

    def _improved(self) -> bool:
        if self.direction == "lower":
            return self.change < 0
        return self.change > 0


def diff_ledger(
    entries: list[LedgerEntry], threshold: float = 0.20
) -> list[MetricDiff]:
    """Pair each metric's latest entry with the previous same-scale one.

    A change beyond ``threshold`` in the metric's worse direction is a
    regression. Metrics with fewer than two same-scale entries are
    skipped — there is nothing to diff yet.
    """
    if threshold <= 0:
        raise ConfigError("regression threshold must be positive")
    by_metric: dict[tuple[str, float], list[LedgerEntry]] = {}
    for entry in entries:
        by_metric.setdefault((entry.metric, entry.scale), []).append(entry)
    diffs: list[MetricDiff] = []
    for (_metric, _scale), history in sorted(by_metric.items()):
        if len(history) < 2:
            continue
        previous, latest = history[-2], history[-1]
        if previous.value == 0:
            change = 0.0 if latest.value == 0 else float("inf")
        else:
            change = (latest.value - previous.value) / abs(previous.value)
        if latest.direction == "lower":
            regression = change > threshold
        else:
            regression = change < -threshold
        diffs.append(
            MetricDiff(
                metric=latest.metric,
                unit=latest.unit,
                direction=latest.direction,
                previous=previous.value,
                latest=latest.value,
                change=change,
                regression=regression,
            )
        )
    return diffs


def singleton_metrics(entries: list[LedgerEntry]) -> list[tuple[str, float]]:
    """``(metric, scale)`` pairs with exactly one ledger entry.

    These are first runs at their scale: :func:`diff_ledger` skips them
    (nothing to diff), so the report surfaces them explicitly instead of
    letting a freshly-added benchmark look like it never ran.
    """
    by_metric: dict[tuple[str, float], int] = {}
    for entry in entries:
        key = (entry.metric, entry.scale)
        by_metric[key] = by_metric.get(key, 0) + 1
    return sorted(key for key, count in by_metric.items() if count == 1)


def format_report(
    diffs: list[MetricDiff],
    threshold: float,
    singletons: list[tuple[str, float]] = (),
) -> str:
    """The ``repro bench-report`` text block."""
    if not diffs:
        if singletons:
            lines = [
                "bench-report: no metric has two runs at the same scale "
                "yet — nothing to diff"
            ]
            lines.extend(
                f"  first run, skipped: {metric} (scale {scale:g})"
                for metric, scale in singletons
            )
            return "\n".join(lines)
        return (
            "bench-report: no metric has two runs at the same scale yet — "
            "run the benchmarks twice to get a diff"
        )
    lines = [
        f"bench-report: {len(diffs)} metric(s), "
        f"regression threshold {threshold:.0%}"
    ]
    lines.extend(f"  {diff.describe()}" for diff in diffs)
    lines.extend(
        f"  first run, skipped: {metric} (scale {scale:g})"
        for metric, scale in singletons
    )
    regressions = [diff for diff in diffs if diff.regression]
    if regressions:
        lines.append(
            f"  REGRESSION: {len(regressions)} metric(s) moved more than "
            f"{threshold:.0%} in the wrong direction"
        )
    else:
        lines.append("  no regressions")
    return "\n".join(lines)
