"""Performance observability: hot-path profiler, spans, benchmark ledger.

The paper's claims are throughput claims, and every scaling PR (columnar
datapath, multi-host sweeps) is judged by numbers — this package is the
instrument panel. Three independent pieces, layered *beside* the
simulator and the telemetry bus, never inside their hot loops:

:class:`HotPathProfiler` (:mod:`repro.prof.profiler`)
    A sampling profiler for the access engine. Every Nth reference runs
    through a stage-instrumented twin of the engine's access body
    (probe / remote-search / replace / writeback / account), resize
    rounds are timed exactly at the resizer, and the measured wall clock
    of the run is attributed across stages by the sampled shares — so
    the per-stage report always sums to the wall clock, and the enabled
    overhead is one instrumented access per ``sample_every``. Disabled,
    the engine code is byte-for-byte the uninstrumented one: the only
    profiler reference is a per-``access_many``/per-session check of
    ``cache.profiler`` (``tests/test_prof_zero_cost.py`` counts it).

:class:`SpanRecorder` (:mod:`repro.prof.spans`)
    Job/chunk/worker spans for campaign runs — queue-wait, execute,
    store-write, retry and timeout markers — timestamped on the one
    shared clock (:func:`repro.common.clock.tick`, comparable across
    worker processes) and exported as Chrome-tracing JSON that loads
    directly in Perfetto / ``chrome://tracing``. ``repro sweep --spans``
    records one; ``repro trace-export`` summarises or filters it.

The benchmark ledger (:mod:`repro.prof.ledger`)
    Structured JSON next to the free-text ``benchmarks/results/*.txt``:
    one entry per (metric, run) with value, unit, direction,
    ``REPRO_SCALE``, git SHA and timestamp. ``repro bench-report`` diffs
    the latest run against the previous one and fails on configurable
    regressions; CI runs it as a soft gate.
"""

from __future__ import annotations

from repro.prof.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerEntry,
    diff_ledger,
    read_ledger,
    validate_entry,
    write_entry,
)
from repro.prof.profiler import PROFILE_STAGES, HotPathProfiler
from repro.prof.spans import SpanRecorder, load_trace, summarize_trace

__all__ = [
    "HotPathProfiler",
    "LEDGER_SCHEMA_VERSION",
    "LedgerEntry",
    "PROFILE_STAGES",
    "SpanRecorder",
    "diff_ledger",
    "load_trace",
    "read_ledger",
    "summarize_trace",
    "validate_entry",
    "write_entry",
]
