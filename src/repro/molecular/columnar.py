"""Columnar (structure-of-arrays) access engine: vectorized kernels.

The batched :class:`~repro.molecular.engine.AccessEngine` removed the
per-reference *setup* cost, but its steady state is still one Python
loop iteration per reference over the molecule/region object graph. This
module removes the loop itself for the common case: references are
processed a *chunk* at a time through NumPy kernels, and Python runs
only for the references that actually change cache state.

Design
------
The object model (molecules, regions, presence dicts) remains the source
of truth — every structural operation, fault, resize and the scalar
reference path keep working unchanged. The columnar engine maintains a
*mirror* of each region's presence map as flat arrays
(:class:`RegionMirror`): an open-addressing hash table of ``int64``
block keys mapping to indices into a molecule table with a parallel
``tile_id`` column. Per (region, shared-region) pair one mirror persists
on the cache across ``access_many`` calls; validity is keyed on the
region's ``version``/``content_version`` counters so any mutation made
outside the engine (scalar accesses, faults, resizes) invalidates it
cheaply.

A chunk of same-ASID references is then processed in four phases:

1. **Probe kernel** — one vectorized hash lookup classifies every
   reference against the *start-of-chunk* snapshot (``snap[i]`` = serving
   molecule index, or -1).
2. **Worklist** — snapshot misses, in stream order, are replayed through
   a scalar event handler that replicates the batched engine's per-access
   body exactly (same RNG draws, same install/evict order, same counter
   updates). Events keep the snapshot *coherent* instead of chaining:
   an install scatters the serving slot over all the block's later
   occurrences (one ``searchsorted`` range per block against a combined
   ``(block, position)`` sort key), and an eviction scatters -1 over
   them and queues only the *first* as the one event that re-resolves
   the block. The invariant ``snap[q] >= 0`` iff the block is resident
   when position ``q`` is reached lets the worklist loop skip any
   position a later install already re-resolved — a hot block evicted
   and refetched costs two events, not one per occurrence.
3. **Replace/writeback accounting** rides inside the worklist events
   (they call ``region.install`` like the scalar path). Write-hit dirty
   marks are *lazy*: pending marks are applied at chunk end as one flat
   scatter into a (molecule, line) staging buffer, while an event that
   removes a line first *consumes* the pending marks below it — fused
   with the snapshot repair in one scan — so writeback accounting sees
   them in scalar stream order.
4. **Remote-cost kernel** — the remaining (unprocessed) references are
   hits on their snapshot molecules; because processed positions keep
   ``snap == -1``, one ``bincount`` over the final snapshot yields the
   per-slot hit histogram, which is folded over the serving tiles and
   dotted with precomputed per-tile cost tables (latency, comparator
   and probe counts from the context's Ulmo search order).

Chunks are capped so that no resize trigger can fire *inside* a chunk
(the cap is the distance to the next trigger threshold), making the
end-of-chunk trigger check equivalent to the scalar engine's per-access
check.

Scalar fallback rules
---------------------
The kernels delegate to the batched engine (which itself falls back to
``access_block`` when needed) whenever per-reference observation or
mutation hooks are live — these need the exact per-access event order:

* a telemetry bus is attached (per-access ``record_access``);
* a custom latency model or a reuse-distance advisor is installed;
* the placement policy has live hit/evict hooks (LRU-Direct recency);
* the stream (or a same-ASID run) is too short to amortize kernel setup;
* a chunk's snapshot miss rate exceeds :data:`BAILOUT_MISS_RATE` — the
  scalar worklist would dominate, so the whole chunk takes the batched
  loop (cheaper, still byte-identical);
* block numbers fall outside the packable range (negative or huge).

``force_kernels=True`` (used by the differential oracle's ``columnar``
arm) disables the two *heuristic* fallbacks (size and miss rate) so the
kernels are exercised even on tiny adversarial streams; the semantic
fallbacks above always apply.

The byte-identical contract of :mod:`repro.molecular.engine` carries
over verbatim: stats dicts, occupancy reports, resize logs, error state
and telemetry streams match the scalar reference path for any input.
``tests/test_prop_columnar.py`` and the differential oracle enforce it.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.common.errors import ConfigError, SimulationError
from repro.molecular.engine import AccessEngine

#: Multiplicative hash constant (golden-ratio, Fibonacci hashing).
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1
_EMPTY = -1
_TOMBSTONE = -2

#: Bits reserved for the in-chunk position in the combined
#: ``(block, position)`` sort key used for next-occurrence queries.
_POS_BITS = 21
#: Hard cap on chunk length (positions must fit ``_POS_BITS``).
_CHUNK_CAP = 1 << _POS_BITS
#: Blocks must fit the remaining key bits (and be non-negative).
_MAX_BLOCK = 1 << (62 - _POS_BITS)

#: Streams shorter than this take the batched loop: kernel setup
#: (snapshot arrays, sort) costs more than it saves.
MIN_KERNEL_REFS = 64
#: Same-ASID runs shorter than this inside a longer stream are batched
#: together and delegated to the batched loop in one piece.
MIN_KERNEL_RUN = 32
#: Snapshot miss-rate above which a chunk bails out to the batched loop.
BAILOUT_MISS_RATE = 0.45


class RegionMirror:
    """Flat-array mirror of one (region, shared region) presence view.

    An open-addressing (linear probing) hash table over ``int64`` arrays:
    ``keys[s]`` holds a block number (or the empty/tombstone sentinels)
    and ``vals[s]`` an index into :attr:`mols` — the molecules seen so
    far, with a parallel :attr:`tile_ids` column for the cost kernel.
    The shared region is folded in at rebuild with the exclusive region
    overriding it, mirroring the engine's region-then-shared lookup
    order (a block can only be resident in one of the two at a time).

    Validity is snapshotted from the regions' ``version`` and
    ``content_version`` counters; the engine resyncs the snapshot after
    mutations it performed (and mirrored) itself, so only *external*
    mutations force a rebuild.
    """

    __slots__ = (
        "region",
        "shared",
        "keys",
        "vals",
        "shift",
        "mask",
        "used",
        "mols",
        "mol_slot",
        "tile_ids",
        "_tile_arr",
        "region_version",
        "region_content",
        "shared_version",
        "shared_content",
        "bail_credits",
    )

    def __init__(self, region, shared) -> None:
        self.region = region
        self.shared = shared
        self.mols: list = []
        self.mol_slot: dict = {}
        self.tile_ids: list[int] = []
        self._tile_arr: np.ndarray | None = None
        #: Bail hysteresis: after a miss-rate bailout, the next chunks
        #: of a still-churning (stale) region skip the rebuild + probe
        #: and delegate directly — see :meth:`ColumnarAccessEngine._run_chunk`.
        self.bail_credits: int = 0
        self.rebuild()

    # ----------------------------------------------------------- validity

    def rebuild(self) -> None:
        """Re-derive the table from the authoritative presence maps.

        Rebuilds happen whenever a resize, fault or scalar access
        mutates a region behind the engine's back, so they sit on the
        steady-state path of any dynamically managed cache — the table
        is filled with one vectorized bulk insertion rather than one
        scalar probe loop per resident block.
        """
        region_presence = self.region.presence
        if self.shared is not None and self.shared.presence:
            # Fold the shared region in with the exclusive region
            # overriding it, mirroring the engine's lookup order.
            combined = dict(self.shared.presence)
            combined.update(region_presence)
        else:
            combined = region_presence
        live = len(combined)
        tbits = max(4, (2 * live + 8).bit_length())
        size = 1 << tbits
        self.shift = 64 - tbits
        self.mask = size - 1
        self.keys = np.full(size, _EMPTY, dtype=np.int64)
        self.vals = np.zeros(size, dtype=np.int64)
        self.used = live
        if live:
            blocks = np.fromiter(combined.keys(), dtype=np.int64, count=live)
            slot_of = self._slot_of
            values = np.fromiter(
                (slot_of(molecule) for molecule in combined.values()),
                dtype=np.int64,
                count=live,
            )
            self._bulk_insert(blocks, values)
        self.sync_versions()

    def _bulk_insert(self, blocks: np.ndarray, values: np.ndarray) -> None:
        """Linear-probing insertion of unique keys, all lanes in lockstep.

        Each round scatters every lane whose current slot is empty
        (duplicate targets resolve to one deterministic winner), then
        advances the lanes that did not land. The table is sized to
        <= 1/2 load, so the rounds shrink geometrically; any insertion
        order yields an equivalent probe structure, so lookups are
        independent of who wins a round.
        """
        keys = self.keys
        vals = self.vals
        mask = self.mask
        slots = (
            blocks.astype(np.uint64) * np.uint64(_GOLDEN)
            >> np.uint64(self.shift)
        ).astype(np.int64)
        pending = np.arange(blocks.shape[0])
        while pending.size:
            lane_slots = slots[pending]
            free = keys[lane_slots] == _EMPTY
            if free.any():
                landing = pending[free]
                target = slots[landing]
                keys[target] = blocks[landing]
                vals[target] = values[landing]
                placed = keys[slots[pending]] == blocks[pending]
                pending = pending[~placed]
                lane_slots = slots[pending]
            slots[pending] = (lane_slots + 1) & mask

    def sync_versions(self) -> None:
        """Record the regions' revision counters as the mirrored state."""
        self.region_version = self.region.version
        self.region_content = self.region.content_version
        if self.shared is not None:
            self.shared_version = self.shared.version
            self.shared_content = self.shared.content_version
        else:
            self.shared_version = self.shared_content = -1

    def fresh(self) -> bool:
        region = self.region
        if (
            region.version != self.region_version
            or region.content_version != self.region_content
        ):
            return False
        shared = self.shared
        if shared is not None and (
            shared.version != self.shared_version
            or shared.content_version != self.shared_content
        ):
            return False
        return True

    # ------------------------------------------------------- molecule table

    def _slot_of(self, molecule) -> int:
        slot = self.mol_slot.get(molecule)
        if slot is None:
            slot = len(self.mols)
            self.mol_slot[molecule] = slot
            self.mols.append(molecule)
            self.tile_ids.append(molecule.tile_id)
            self._tile_arr = None
        return slot

    def tile_array(self) -> np.ndarray:
        if self._tile_arr is None:
            self._tile_arr = np.array(self.tile_ids, dtype=np.int64)
        return self._tile_arr

    # ------------------------------------------------------------ hash table

    def _probe(self, block: int) -> tuple[int, bool]:
        """Return ``(slot, found)`` — the block's slot, or where to insert."""
        keys = self.keys
        mask = self.mask
        slot = ((block * _GOLDEN) & _MASK64) >> self.shift
        insert_at = -1
        while True:
            key = int(keys[slot])
            if key == block:
                return slot, True
            if key == _EMPTY:
                return (slot if insert_at < 0 else insert_at), False
            if key == _TOMBSTONE and insert_at < 0:
                insert_at = slot
            slot = (slot + 1) & mask

    def set(self, block: int, molecule) -> None:
        value = self._slot_of(molecule)
        slot, found = self._probe(block)
        if not found:
            if int(self.keys[slot]) == _EMPTY:
                self.used += 1
            self.keys[slot] = block
        self.vals[slot] = value
        # Keep load (live + tombstones) under 2/3 so vector lookups always
        # terminate on an empty slot within a short probe run.
        if not found and 3 * self.used > 2 * (self.mask + 1):
            self.rebuild()

    def delete(self, block: int) -> None:
        slot, found = self._probe(block)
        if found:
            self.keys[slot] = _TOMBSTONE

    def refresh(self, block: int) -> None:
        """Resync one block from the authoritative presence maps."""
        molecule = self.region.presence.get(block)
        if molecule is None and self.shared is not None:
            molecule = self.shared.presence.get(block)
        if molecule is None:
            self.delete(block)
        else:
            self.set(block, molecule)

    def lookup_many(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorized lookup: molecule-table index per block, -1 if absent.

        Linear probing runs in lockstep across all pending lanes; each
        iteration resolves every lane whose current slot holds its key
        (hit) or an empty sentinel (miss), so the loop count is the
        longest probe run in the table, not the chunk length.
        """
        slots = (
            blocks.astype(np.uint64) * np.uint64(_GOLDEN)
            >> np.uint64(self.shift)
        ).astype(np.int64)
        keys = self.keys
        vals = self.vals
        mask = self.mask
        # First probe unrolled over the full array: with the table kept
        # under 2/3 load almost every lane resolves here, so the pending
        # bookkeeping below only ever sees the short collision tail.
        found_keys = keys[slots]
        hits = found_keys == blocks
        result = np.where(hits, vals[slots], np.int64(-1))
        unresolved = ~(hits | (found_keys == _EMPTY))
        if not unresolved.any():
            return result
        pending = np.flatnonzero(unresolved)
        slots[pending] = (slots[pending] + 1) & mask
        while pending.size:
            lane_slots = slots[pending]
            found_keys = keys[lane_slots]
            hits = found_keys == blocks[pending]
            if hits.any():
                hit_lanes = pending[hits]
                result[hit_lanes] = vals[slots[hit_lanes]]
            resolved = hits | (found_keys == _EMPTY)
            pending = pending[~resolved]
            if pending.size:
                slots[pending] = (slots[pending] + 1) & mask
        return result


class _ChunkState:
    """Per-chunk coherence and write-mark bookkeeping.

    Owns the snapshot (kept *coherent* with live residency: every event
    that installs a block scatters its new molecule slot into ``snap``
    for all later occurrences, so later hits stay on the bulk path
    instead of chaining one scalar event per occurrence) and the lazy
    dirty marks (write hits are not marked as the worklist advances;
    they are applied in one grouped scatter per chunk, with evictions
    consuming any pending marks for the line they remove so writeback
    accounting still sees them in scalar order).
    """

    __slots__ = (
        "cb",
        "wr",
        "snap",
        "processed",
        "consumed",
        "heap",
        "write_pos",
        "has_writes",
        "n",
        "_keys",
    )

    def __init__(self, cb, wr, write_pos, snap) -> None:
        n = cb.shape[0]
        self.cb = cb
        self.wr = wr
        self.snap = snap
        self.n = n
        self.processed = np.zeros(n, dtype=bool)
        self.heap: list[int] = []
        self.write_pos = write_pos
        self.has_writes = write_pos is not None and write_pos.shape[0] > 0
        self.consumed = (
            np.zeros(n, dtype=bool) if self.has_writes else None
        )
        # Combined (block << _POS_BITS | position) sort keys, built
        # lazily on the first event: chunks without misses never pay.
        self._keys: np.ndarray | None = None

    def keys(self) -> np.ndarray:
        sk = self._keys
        if sk is None:
            sk = np.sort(
                (self.cb << _POS_BITS) | np.arange(self.n, dtype=np.int64)
            )
            self._keys = sk
        return sk

    def scatter(self, block: int, slot: int, position: int) -> None:
        """Record ``block``'s new residency for every later occurrence.

        Positions after ``position`` cannot have been processed yet
        (events run in ascending order), so rewriting their snapshot
        entries retargets both the bulk hit accounting and any pending
        write marks to the molecule that actually serves them.
        """
        sk = self.keys()
        base = block << _POS_BITS
        i0, i1 = np.searchsorted(
            sk, (base | position, base | (_CHUNK_CAP - 1)), side="right"
        )
        if i1 > i0:
            self.snap[sk[i0:i1] & (_CHUNK_CAP - 1)] = slot

    def consume_pending(self, block: int, position: int) -> bool:
        """Claim the block's unapplied write-hit marks before ``position``.

        Called when an event removes the block's line from its molecule:
        any unprocessed, unconsumed write occurrence below the event is a
        hit the scalar path would already have marked dirty, so the
        caller must fold the returned flag into the line's writeback
        state. Consuming stops those positions from being re-applied at
        chunk end (their snapshot entry still names the old, now
        re-occupied line). Occurrences from earlier residency periods
        were consumed at the eviction that closed them, so everything
        still pending here belongs to the line being removed now.
        """
        if position <= 0:
            return False
        sk = self.keys()
        base = block << _POS_BITS
        i0, i1 = np.searchsorted(sk, (base, base | position))
        if i1 <= i0:
            return False
        occ = sk[i0:i1] & (_CHUNK_CAP - 1)
        mask = self.wr[occ] & ~self.processed[occ] & ~self.consumed[occ]
        pending = occ[mask]
        if pending.shape[0] == 0:
            return False
        self.consumed[pending] = True
        return True

    def consume_and_retire(self, block: int, position: int, slot: int) -> bool:
        """Consume pending marks and re-point later occurrences, one scan.

        Fuses :meth:`consume_pending` with the snapshot repair for a
        block whose line an event just removed — one ``searchsorted``
        finds both the occurrences below ``position`` (pending write
        marks to consume, returned as the line's effective dirty state)
        and the ones after it. ``slot >= 0`` re-homes the later
        occurrences (a shadowed shared-region copy is re-exposed and
        serves them as bulk hits); ``slot == -1`` marks the block absent
        and queues its first later occurrence as the re-resolving event.
        """
        sk = self.keys()
        base = block << _POS_BITS
        c0, c1, c2 = np.searchsorted(
            sk,
            np.array(
                [base, base | position, base + _CHUNK_CAP], dtype=np.int64
            ),
        )
        was_dirty = False
        if c1 > c0 and self.consumed is not None:
            occ = sk[c0:c1] & (_CHUNK_CAP - 1)
            mask = self.wr[occ] & ~self.processed[occ] & ~self.consumed[occ]
            pending = occ[mask]
            if pending.shape[0]:
                self.consumed[pending] = True
                was_dirty = True
        if c2 > c1:
            occ = sk[c1:c2] & (_CHUNK_CAP - 1)
            self.snap[occ] = slot
            if slot < 0:
                heapq.heappush(self.heap, int(occ[0]))
        return was_dirty

    def flush_pending(self, mols, block: int, position: int) -> None:
        """Apply the block's pending write-hit marks below ``position``.

        Used when an install re-homes a block *without* removing the
        line that served its earlier occurrences — a unit sibling
        shadowing a still-resident shared-region copy (or already
        resident in the target). Those marks are final for the old
        line, so they are applied now, each to its occurrence's
        snapshot molecule; left pending, the chunk-end pass would
        misdirect them to the block's new home.
        """
        if position <= 0 or not self.has_writes:
            return
        sk = self.keys()
        base = block << _POS_BITS
        i0, i1 = np.searchsorted(sk, (base, base | position))
        if i1 <= i0:
            return
        occ = sk[i0:i1] & (_CHUNK_CAP - 1)
        mask = self.wr[occ] & ~self.processed[occ] & ~self.consumed[occ]
        pending = occ[mask]
        if pending.shape[0] == 0:
            return
        self.consumed[pending] = True
        snap = self.snap
        cb = self.cb
        for q in pending.tolist():
            mols[int(snap[q])].mark_dirty(int(cb[q]))

    def apply_marks(self, mols, limit: int) -> None:
        """Apply every still-pending write-hit mark below ``limit``.

        Grouped by serving molecule and applied as one fancy-index
        scatter per group. Safe without per-line validation: a position
        that is neither processed (scalar event) nor consumed (its line
        was evicted) is a hit on a line that stayed resident, and its
        coherent snapshot entry names the serving molecule.
        """
        wp = self.write_pos
        if wp is None or limit <= 0:
            return
        cut = int(np.searchsorted(wp, limit))
        if cut == 0:
            return
        sel = wp[:cut]
        keep = ~self.processed[sel]
        if self.consumed is not None:
            keep &= ~self.consumed[sel]
        sel = sel[keep]
        if sel.shape[0] == 0:
            return
        slots = self.snap[sel]
        blocks = self.cb[sel]
        # One flat scatter into a (slot, line) staging buffer, then an
        # OR per touched molecule — no argsort, no per-group slicing.
        # Marks are idempotent, so duplicate (slot, line) pairs in the
        # scatter are harmless.
        n_slots = len(mols)
        masks = np.fromiter(
            (molecule.index_mask for molecule in mols),
            dtype=np.int64,
            count=n_slots,
        )
        width = int(masks.max()) + 1
        staged = np.zeros((n_slots, width), dtype=bool)
        staged.reshape(-1)[slots * width + (blocks & masks[slots])] = True
        touched = np.flatnonzero(np.bincount(slots, minlength=n_slots))
        for s in touched.tolist():
            molecule = mols[s]
            np.logical_or(
                molecule.dirty,
                staged[s, : molecule.n_lines],
                out=molecule.dirty,
            )


def _as_column(values, n, name):
    """Normalise a column to ``(ndarray | None, scalar)``."""
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise ConfigError(f"{name} must be one-dimensional")
    elif isinstance(values, (list, tuple)):
        values = np.asarray(values)
    else:
        return None, values
    if values.shape[0] != n:
        raise ConfigError(f"{name} length {values.shape[0]} != {n} blocks")
    return values, None


class ColumnarAccessEngine(AccessEngine):
    """Chunked SoA datapath over the batched engine's context machinery.

    Inherits context building/invalidation and the batched ``stream`` as
    the semantic fallback; adds persistent region mirrors (stored on the
    cache), the vectorized probe/cost kernels and the scalar event
    worklist. See the module docstring for the full design.
    """

    __slots__ = ("force_kernels", "_cost_tables")

    def __init__(self, cache, force_kernels: bool = False) -> None:
        super().__init__(cache)
        self.force_kernels = force_kernels
        self._cost_tables: dict = {}
        if getattr(cache, "_columnar_mirrors", None) is None:
            cache._columnar_mirrors = {}

    # --------------------------------------------------------- cost tables

    def _costs(self, ctx):
        """Per-tile (hit latency, comparators, remote probes, is-remote).

        Indexed by the serving molecule's tile id; valid exactly as long
        as the context is, so the cache key is the context object itself.
        """
        cached = self._cost_tables.get(ctx.asid)
        if cached is not None and cached[0] is ctx:
            return cached[1]
        n_tiles = len(self.cache._tiles)
        hit_lat = np.full(n_tiles, ctx.hit_cycles, dtype=np.int64)
        comparisons = np.full(n_tiles, ctx.home_comparisons, dtype=np.int64)
        probes = np.zeros(n_tiles, dtype=np.int64)
        remote = np.zeros(n_tiles, dtype=np.int64)
        for tile_id, (tiles, rprobes, comps, extra) in ctx.remote_stop.items():
            hit_lat[tile_id] = (
                ctx.hit_cycles
                + ctx.dispatch_cycles
                + tiles * ctx.per_tile_cycles
                + extra
            )
            comparisons[tile_id] = comps + ctx.home_comparisons
            probes[tile_id] = rprobes
            remote[tile_id] = 1
        tables = (hit_lat, comparisons, probes, remote)
        self._cost_tables[ctx.asid] = (ctx, tables)
        return tables

    # ------------------------------------------------------------ streaming

    def stream(self, blocks, asids=0, writes=False) -> int:
        cache = self.cache
        if (
            not self.fast_latency
            or cache.telemetry is not None
            or self.advisor is not None
            or self.on_hit_live
            or self.on_evict_live
        ):
            # Semantic fallbacks: per-access observers/hooks are live.
            return super().stream(blocks, asids, writes)
        if not isinstance(blocks, np.ndarray):
            if not isinstance(blocks, (list, tuple)):
                blocks = list(blocks)
            arr = np.asarray(blocks)
            if arr.ndim != 1 or arr.dtype.kind not in "iu":
                # Non-integer or nested block input: preserve the scalar
                # path's exact handling of exotic values.
                return super().stream(blocks, asids, writes)
            blocks = arr
        elif blocks.ndim != 1:
            raise ConfigError("blocks must be one-dimensional")
        elif blocks.dtype.kind not in "iu":
            return super().stream(blocks, asids, writes)
        blocks = blocks.astype(np.int64, copy=False)
        n = blocks.shape[0]
        if n == 0:
            return 0
        asid_col, asid_scalar = _as_column(asids, n, "asids")
        write_col, write_scalar = _as_column(writes, n, "writes")
        # Delegated streams are handed to the batched loop as python
        # lists: iterating an ndarray yields numpy scalar objects whose
        # allocation and dict hashing roughly double the per-reference
        # cost of the scalar body.
        if n < MIN_KERNEL_REFS and not self.force_kernels:
            return super().stream(blocks.tolist(), asids, writes)
        if int(blocks.min()) < 0 or int(blocks.max()) >= _MAX_BLOCK:
            return super().stream(blocks.tolist(), asids, writes)

        # Same-ASID run boundaries, computed once for the whole stream.
        if asid_col is None:
            bounds = [0, n]
        else:
            change = np.flatnonzero(asid_col[1:] != asid_col[:-1]) + 1
            bounds = [0, *change.tolist(), n]

        def delegate(lo: int, hi: int) -> None:
            AccessEngine.stream(
                self,
                blocks[lo:hi].tolist(),
                asid_col[lo:hi].tolist() if asid_col is not None else asid_scalar,
                write_col[lo:hi].tolist() if write_col is not None else write_scalar,
            )

        span_start = -1  # accumulated short runs pending delegation
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi - lo < MIN_KERNEL_RUN and not self.force_kernels:
                if span_start < 0:
                    span_start = lo
                continue
            if span_start >= 0:
                delegate(span_start, lo)
                span_start = -1
            asid = asid_col[lo].item() if asid_col is not None else asid_scalar
            self._stream_run(blocks, write_col, write_scalar, asid, lo, hi)
        if span_start >= 0:
            delegate(span_start, n)
        return n

    def _stream_run(self, blocks, write_col, write_scalar, asid, lo, hi):
        """One same-ASID run, chunked so triggers only fire at chunk ends."""
        resizer = self.resizer
        stats = self.stats
        while lo < hi:
            ctx = self._context(asid)
            region = ctx.region
            if self.per_app:
                if ctx.managed:
                    cap = region.next_resize_at - region.total_accesses
                else:
                    cap = hi - lo
            else:
                cap = resizer.next_global_at - stats.total.accesses
            cap = max(1, min(cap, hi - lo, _CHUNK_CAP))
            end = lo + cap
            self._run_chunk(
                ctx,
                blocks[lo:end],
                write_col[lo:end] if write_col is not None else None,
                bool(write_scalar) if write_col is None else False,
            )
            # The chunk cap guarantees no trigger threshold was crossed
            # before its last access, so this single check is equivalent
            # to the scalar engine's per-access check. (A bailed-out
            # chunk ran the batched loop, which already fired triggers —
            # the conditions below are then simply false.)
            tot = stats.total
            if self.per_app:
                if ctx.managed and region.total_accesses >= region.next_resize_at:
                    resizer._resize_one(region, tot.accesses)
            elif tot.accesses >= resizer.next_global_at:
                resizer._resize_all(tot.accesses)
            lo = end

    def _run_chunk(self, ctx, cb, wr_col, wr_scalar):
        n = cb.shape[0]
        shared = ctx.shared_region
        key = (id(ctx.region), 0 if shared is None else id(shared))
        mirrors = self.cache._columnar_mirrors
        mirror = mirrors.get(key)
        if mirror is None:
            mirror = RegionMirror(ctx.region, shared)
            mirrors[key] = mirror
        stale = not mirror.fresh()
        if stale and mirror.bail_credits > 0 and not self.force_kernels:
            # Bail hysteresis: this region's last probed chunk was
            # miss-heavy enough to bail, so the batched loop's installs
            # left the mirror stale — probing again would mean a full
            # rebuild just to bail again. Delegate directly for a
            # geometrically growing number of chunks, re-probing when
            # the credits run out so a phase shift back to locality is
            # picked up. Purely a performance heuristic: both paths are
            # byte-identical.
            mirror.bail_credits -= 1
            AccessEngine.stream(
                self,
                cb.tolist(),
                ctx.asid,
                wr_col.tolist() if wr_col is not None else wr_scalar,
            )
            return
        if stale:
            mirror.rebuild()
        snap = mirror.lookup_many(cb)
        worklist = np.flatnonzero(snap < 0)
        if (
            worklist.shape[0] > BAILOUT_MISS_RATE * n
            and not self.force_kernels
        ):
            # Miss-heavy chunk: the scalar worklist would dominate, and
            # the batched loop handles misses with less bookkeeping.
            mirror.bail_credits = min(2 * mirror.bail_credits + 1, 15)
            AccessEngine.stream(
                self,
                cb.tolist(),
                ctx.asid,
                wr_col.tolist() if wr_col is not None else wr_scalar,
            )
            return
        mirror.bail_credits = 0

        if wr_col is not None:
            wr = wr_col.astype(bool, copy=False)
            write_pos = np.flatnonzero(wr)
        elif wr_scalar:
            wr = np.ones(n, dtype=bool)
            write_pos = np.arange(n)
        else:
            wr = None
            write_pos = None

        chunk = _ChunkState(cb, wr, write_pos, snap)
        processed = chunk.processed
        heap = chunk.heap
        wl = worklist.tolist()
        work_i = 0
        n_work = len(wl)
        event = self._event
        position = -1
        try:
            while True:
                p_list = wl[work_i] if work_i < n_work else -1
                p_heap = heap[0] if heap else -1
                if p_list < 0 and p_heap < 0:
                    break
                if p_heap < 0 or (0 <= p_list <= p_heap):
                    position = p_list
                    work_i += 1
                else:
                    position = heapq.heappop(heap)
                if processed[position]:
                    continue
                snap_slot = int(snap[position])
                if snap_slot >= 0:
                    # A later install already re-resolved this position
                    # (coherent scatter): it is a plain hit, served and
                    # accounted on the bulk path. Only still-absent
                    # blocks need the scalar event.
                    continue
                processed[position] = True
                write = bool(wr[position]) if wr is not None else False
                event(
                    ctx, mirror, int(cb[position]), write,
                    snap_slot, position, chunk,
                )
        except SimulationError:
            # Leave state exactly as the scalar path would at the failing
            # access: apply the pending write-hit marks below it (their
            # lines are still resident — evictions before this point
            # consumed theirs), then bulk-account the completed hits.
            chunk.apply_marks(mirror.mols, position)
            self._account_bulk(ctx, mirror, snap, processed, position)
            raise
        chunk.apply_marks(mirror.mols, n)
        self._account_bulk(ctx, mirror, snap, processed, n)

    # -------------------------------------------------------- scalar events

    def _event(self, ctx, mirror, block, write, snap_slot, position, chunk):
        """Replay one reference through the scalar per-access body.

        Identical, update for update, to the batched engine's loop body
        (minus the telemetry/advisor/live-hook branches, which force a
        full fallback before kernels engage). On top of that it keeps the
        mirror in sync and keeps the chunk snapshot *coherent*: installed
        blocks have their new slot scattered over all their later
        occurrences (bulk hits, no chained events), and evicted blocks
        get their next occurrence pushed as the one scalar event needed
        to re-resolve them.
        """
        stats = self.stats
        region = ctx.region
        ctx.home_tile.port_accesses += 1
        tot = stats.total
        wtot = stats.window_total
        tc = ctx.total_counters
        wc = ctx.window_counters

        molecule = ctx.region_lookup(block)
        if molecule is None and ctx.shared_lookup is not None:
            molecule = ctx.shared_lookup(block)

        if molecule is not None:
            if molecule.tile_id != ctx.home_tile_id:
                ulmo_stats = ctx.ulmo_stats
                ulmo_stats.tile_misses += 1
                ulmo_stats.remote_hits += 1
                remote_tiles, remote_probes, comparisons, remote_extra = (
                    ctx.remote_stop[molecule.tile_id]
                )
                stats.molecules_probed_remote += remote_probes
                stats.asid_comparisons += comparisons + ctx.home_comparisons
                stats.latency_cycles += (
                    ctx.hit_cycles
                    + ctx.dispatch_cycles
                    + remote_tiles * ctx.per_tile_cycles
                    + remote_extra
                )
            else:
                stats.asid_comparisons += ctx.home_comparisons
                stats.latency_cycles += ctx.hit_cycles
            stats.molecules_probed_local += ctx.local_probes
            if write:
                molecule.mark_dirty(block)
            tot.accesses += 1
            tot.hits += 1
            wtot.accesses += 1
            wtot.hits += 1
            tc.accesses += 1
            tc.hits += 1
            wc.accesses += 1
            wc.hits += 1
            region.window_accesses += 1
            region.total_accesses += 1
            region.molecule_integral += ctx.molecule_count
            # Coherence backstop: a pushed event can race a re-install
            # (evicted block pushed, then fetched back by a sibling's
            # unit fill before its turn) — the scatter already fixed the
            # snapshot, so this never fires in practice, but a stale
            # entry would silently misaccount later hits.
            if snap_slot >= 0 and mirror.mols[snap_slot] is not molecule:
                slot = mirror.mol_slot.get(molecule)
                if slot is None:
                    mirror.set(block, molecule)
                    slot = mirror.mol_slot[molecule]
                chunk.scatter(block, slot, position)
        else:
            ulmo_stats = ctx.ulmo_stats
            remote_tiles = 0
            if ctx.has_remote:
                ulmo_stats.tile_misses += 1
                remote_tiles, remote_probes, comparisons, remote_extra = (
                    ctx.remote_full
                )
                stats.molecules_probed_remote += remote_probes
                stats.asid_comparisons += comparisons + ctx.home_comparisons
            else:
                stats.asid_comparisons += ctx.home_comparisons
            ulmo_stats.global_misses += 1
            # Charged before the placement decision, like the scalar
            # reference — identical partial state if placement raises.
            stats.molecules_probed_local += ctx.local_probes

            target, row_index = self.placement.choose(
                region, block, self.lines_per_molecule, self.rng
            )
            k = ctx.line_multiplier
            has_writes = chunk.has_writes
            superseded = None
            if k > 1 and has_writes:
                # Unit siblings resident in *another* molecule are about
                # to be superseded; capture them before install mutates
                # the presence map so their pending write marks can be
                # folded into the writeback accounting below.
                base = block - (block % k)
                presence = region.presence
                superseded = [
                    ub
                    for ub in range(base, base + k)
                    if presence.get(ub) not in (None, target)
                ]
            evicted = region.install(block, target, row_index, write)
            dirty = 0
            consume = chunk.consume_pending if has_writes else None
            retire = chunk.consume_and_retire
            shared = mirror.shared
            presence = region.presence
            if k == 1:
                base = block
                unit = (block,)
            else:
                base = block - (block % k)
                unit = range(base, base + k)
            for eb, was_dirty in evicted:
                # Dirty marks are applied lazily per chunk, so the line
                # this event just removed may carry write hits the
                # molecule's dirty bit doesn't show yet — consume them
                # now, exactly the marks the scalar path would already
                # have applied in stream order. Non-unit evictions also
                # retire the block's later occurrences in the same scan:
                # re-homed to a re-exposed shared copy, or marked absent
                # with their first occurrence queued for re-resolution.
                if k > 1 and base <= eb < base + k:
                    # Superseded unit copy: the unit scatter below
                    # re-covers its occurrences.
                    if consume is not None and consume(eb, position):
                        was_dirty = True
                else:
                    home = None if shared is None else shared.presence.get(eb)
                    if home is not None and presence.get(eb) is None:
                        mirror.set(eb, home)
                        if retire(eb, position, mirror.mol_slot[home]):
                            was_dirty = True
                    else:
                        mirror.delete(eb)
                        if retire(eb, position, -1):
                            was_dirty = True
                if was_dirty:
                    dirty += 1
                stats.record_eviction(ctx.asid, was_dirty)
            if superseded:
                reported = {eb for eb, _wd in evicted}
                for ub in superseded:
                    # A clean superseded sibling is invisible in the
                    # install's eviction list; pending marks make it a
                    # dirty eviction the scalar path would have reported.
                    if ub not in reported and consume(ub, position):
                        dirty += 1
                        stats.record_eviction(ctx.asid, True)
            stats.writebacks_to_memory += dirty
            stats.lines_fetched += ctx.line_multiplier
            cycles = ctx.miss_cycles
            if remote_tiles:
                cycles += (
                    ctx.dispatch_cycles
                    + remote_tiles * ctx.per_tile_cycles
                    + remote_extra
                )
            stats.latency_cycles += cycles
            tot.accesses += 1
            wtot.accesses += 1
            tc.accesses += 1
            wc.accesses += 1
            region.window_accesses += 1
            region.window_misses += 1
            region.total_accesses += 1
            region.total_misses += 1
            region.molecule_integral += ctx.molecule_count

            # Resync the mirror and restore snapshot coherence for the
            # fetched unit (evicted blocks were retired in the loop
            # above): scattering the target's slot over the unit blocks'
            # later occurrences turns them back into bulk hits.
            if k > 1 and has_writes:
                # Siblings whose old line survives this install (a
                # shadowed shared-region copy, or already resident
                # in the target) keep that line's marks: settle
                # them before the scatter retargets the snapshot.
                for ub in unit:
                    if ub != block:
                        chunk.flush_pending(mirror.mols, ub, position)
            for ub in unit:
                mirror.set(ub, target)
            tslot = mirror.mol_slot[target]
            for ub in unit:
                chunk.scatter(ub, tslot, position)
            mirror.sync_versions()

    # ------------------------------------------------------ bulk accounting

    def _account_bulk(self, ctx, mirror, snap, processed, limit):
        """Apply stats for every unprocessed reference before ``limit``.

        Every such reference is a hit served by its snapshot molecule
        (anything else would have been chained onto the worklist), so the
        whole set reduces to a tile histogram dotted with the context's
        per-tile cost tables. The coherent snapshot makes the selection a
        single bincount: processed positions keep ``snap == -1`` (events
        fire only for still-absent blocks, and scatters cover strictly
        later positions), while every unprocessed position below
        ``limit`` holds the slot that served it.
        """
        if limit <= 0:
            return
        tile_array = mirror.tile_array()
        n_slots = tile_array.shape[0]
        slot_counts = np.bincount(snap[:limit] + 1, minlength=n_slots + 1)[1:]
        count = int(slot_counts.sum())
        if count == 0:
            return
        tile_counts = np.zeros(len(self.cache._tiles), dtype=np.int64)
        np.add.at(tile_counts, tile_array, slot_counts)
        hit_lat, comparisons, probes, remote = self._costs(ctx)
        stats = self.stats
        stats.record_hit_probes_bulk(
            count,
            ctx.local_probes,
            int(tile_counts @ probes),
            int(tile_counts @ comparisons),
            int(tile_counts @ hit_lat),
        )
        remote_hits = int(tile_counts @ remote)
        if remote_hits:
            ulmo_stats = ctx.ulmo_stats
            ulmo_stats.tile_misses += remote_hits
            ulmo_stats.remote_hits += remote_hits
        ctx.home_tile.port_accesses += count
        tot = stats.total
        wtot = stats.window_total
        tot.accesses += count
        tot.hits += count
        wtot.accesses += count
        wtot.hits += count
        tc = ctx.total_counters
        wc = ctx.window_counters
        tc.accesses += count
        tc.hits += count
        wc.accesses += count
        wc.hits += count
        region = ctx.region
        region.window_accesses += count
        region.total_accesses += count
        region.molecule_integral += count * ctx.molecule_count
