"""Tenant-to-region binding for the molecular cache.

The cache-service simulator (:mod:`repro.tenants.service`) models tenants
over an abstract block pool; this module binds the same tenant population
onto the *architectural* model instead — each tenant becomes a molecular
cache region (the paper's per-application region, ASID = tenant id), so
a tenant workload can exercise Algorithm 1's real resize engine, Randy
placement and Ulmo search.

Tenants in a churn workload arrive mid-trace, so unlike the CMP runner
(which assigns all applications up front) the binding creates regions
lazily: :meth:`TenantRegionBinding.ensure` assigns a region on a
tenant's first reference, round-robin across tiles, with a small initial
allocation so thousands of tenants can share a cache whose tile count is
tiny. Per-tenant statistics come straight from the region counters the
resize engine already maintains.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.molecular.cache import MolecularCache


class TenantRegionBinding:
    """Lazily maps tenant ids onto exclusive molecular-cache regions."""

    def __init__(
        self,
        cache: MolecularCache,
        goal: float = 0.4,
        initial_molecules: int = 1,
    ) -> None:
        if initial_molecules < 1:
            raise ConfigError("initial_molecules must be >= 1")
        self.cache = cache
        self.goal = goal
        self.initial_molecules = initial_molecules

    def ensure(self, tenant: int) -> None:
        """Create the tenant's region if this is its first reference."""
        if tenant not in self.cache.regions:
            self.cache.assign_application(
                asid=tenant,
                goal=self.goal,
                initial_molecules=self.initial_molecules,
            )

    def access(self, block: int, tenant: int, write: bool = False):
        """One reference, creating the tenant's region on demand."""
        self.ensure(tenant)
        return self.cache.access_block(block, asid=tenant, write=write)

    def run(self, trace, line_bytes: int = 64) -> dict[int, dict]:
        """Drive a trace through, returning :meth:`tenant_stats`.

        The trace is split into maximal same-tenant runs and each run is
        streamed through ``access_many`` (the columnar kernels), which is
        byte-identical to the scalar per-reference loop: a tenant's first
        reference always starts a run, so :meth:`ensure` still fires
        before it, exactly where the scalar loop would create the region.
        """
        blocks = trace.block_column(line_bytes)
        tenants = trace.asids
        writes = trace.writes
        n = len(blocks)
        if n == 0:
            return self.tenant_stats()
        bounds = np.flatnonzero(tenants[1:] != tenants[:-1]) + 1
        starts = [0, *bounds.tolist(), n]
        access_many = self.cache.access_many
        for lo, hi in zip(starts, starts[1:]):
            tenant = int(tenants[lo])
            self.ensure(tenant)
            access_many(blocks[lo:hi], tenant, writes[lo:hi])
        return self.tenant_stats()

    def tenant_stats(self) -> dict[int, dict]:
        """Per-tenant metrics from the region counters, sorted by id."""
        stats = {}
        for tenant, region in sorted(self.cache.regions.items()):
            accesses = region.total_accesses
            stats[tenant] = {
                "accesses": accesses,
                "misses": region.total_misses,
                "hit_rate": (
                    (accesses - region.total_misses) / accesses
                    if accesses
                    else 0.0
                ),
                "molecules": region.molecule_count,
                "occupancy": region.occupancy_fraction(),
            }
        return stats
